//! Cross-crate integration for the `sdm-sci` layer: containers write
//! through real SDM collective I/O under every file organization, reopen
//! from metadata alone, and the VTK path renders what SDM distributed.

use std::sync::Arc;

use sdm::core::{CachedStore, SharedStore};
use sdm::core::{OrgLevel, SdmConfig, SdmType};
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sci::netcdf::NC_UNLIMITED;
use sdm::sci::{AttrValue, NcFile, SciFile};
use sdm::sim::MachineConfig;

fn fixtures() -> (Arc<Pfs>, SharedStore) {
    let db = Arc::new(Database::new());
    (
        Pfs::new(MachineConfig::test_tiny()),
        CachedStore::shared(&db),
    )
}

/// One record variable, written by 3 ranks, read back under the same
/// decomposition — for each Level 1/2/3 organization.
#[test]
fn netcdf_records_round_trip_under_all_levels() {
    for org in OrgLevel::all() {
        let (pfs, store) = fixtures();
        let n = 3usize;
        let cells = 30u64;
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let cfg = SdmConfig {
                    org,
                    ..SdmConfig::default()
                };
                let mut nc = NcFile::create(c, &pfs, &store, "nc", cfg).unwrap();
                nc.def_dim(c, "time", NC_UNLIMITED).unwrap();
                nc.def_dim(c, "cell", cells).unwrap();
                nc.def_var(c, "u", SdmType::Double, &["time", "cell"])
                    .unwrap();
                nc.enddef(c).unwrap();
                let mine: Vec<u64> = (c.rank() as u64..cells).step_by(c.size()).collect();
                nc.set_decomposition(c, "u", &mine).unwrap();
                for t in 0..4i64 {
                    let rec: Vec<f64> =
                        mine.iter().map(|&g| g as f64 + 1000.0 * t as f64).collect();
                    nc.put_record(c, "u", t, &rec).unwrap();
                }
                let mut back = vec![0.0f64; mine.len()];
                nc.get_record(c, "u", 3, &mut back).unwrap();
                nc.close(c).unwrap();
                (mine, back)
            }
        });
        for (mine, back) in out {
            let want: Vec<f64> = mine.iter().map(|&g| g as f64 + 3000.0).collect();
            assert_eq!(back, want, "org {org:?}");
        }
        // File counts reflect the organization: Level 1 makes one file
        // per record, Level 2/3 append (one data file for the single
        // dataset/group).
        let data_files = pfs.list().len();
        match org {
            OrgLevel::Level1 => assert_eq!(data_files, 4, "level 1: a file per record"),
            _ => assert_eq!(data_files, 1, "level 2/3 append to one file"),
        }
    }
}

/// A container created by one "session" is fully reconstructible by a
/// later session — across a different rank count.
#[test]
fn container_reopen_across_different_nprocs() {
    let (pfs, store) = fixtures();
    let cells = 24u64;
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut f = SciFile::create(c, &pfs, &store, "xproc", SdmConfig::default()).unwrap();
            f.define_dim(c, "n", cells).unwrap();
            f.create_dataset(c, "/field", SdmType::Double, &["n"])
                .unwrap();
            f.set_attr(c, "/field", "step", AttrValue::Int(7)).unwrap();
            let mine: Vec<u64> = (c.rank() as u64..cells).step_by(c.size()).collect();
            f.set_view(c, "/field", &mine).unwrap();
            let vals: Vec<f64> = mine.iter().map(|&g| g as f64 * 2.5).collect();
            f.write(c, "/field", 0, &vals).unwrap();
            f.close(c).unwrap();
        }
    });
    // Reopen on 3 ranks: unlike SDM's history files (which are bound to
    // a process count), container data is just a global array + views,
    // so any decomposition can read it.
    let out = World::run(3, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut f = SciFile::open(c, &pfs, &store, "xproc", SdmConfig::default()).unwrap();
            assert_eq!(
                f.get_attr("/field", "step").unwrap(),
                Some(AttrValue::Int(7))
            );
            let mine: Vec<u64> = (c.rank() as u64..cells).step_by(c.size()).collect();
            f.set_view(c, "/field", &mine).unwrap();
            let mut back = vec![0.0f64; mine.len()];
            f.read(c, "/field", 0, &mut back).unwrap();
            f.close(c).unwrap();
            (mine, back)
        }
    });
    let mut seen = 0;
    for (mine, back) in out {
        for (&g, &v) in mine.iter().zip(&back) {
            assert_eq!(v, g as f64 * 2.5);
            seen += 1;
        }
    }
    assert_eq!(seen, cells);
}

/// Two containers coexisting in one database: their metadata stays
/// separate (different runids), including attributes with equal names.
#[test]
fn two_containers_do_not_interfere() {
    let (pfs, store) = fixtures();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut a = SciFile::create(c, &pfs, &store, "appa", SdmConfig::default()).unwrap();
            let mut b = SciFile::create(c, &pfs, &store, "appb", SdmConfig::default()).unwrap();
            a.set_attr(c, "/", "v", AttrValue::Int(1)).unwrap();
            b.set_attr(c, "/", "v", AttrValue::Int(2)).unwrap();
            a.define_dim(c, "n", 4).unwrap();
            b.define_dim(c, "n", 9).unwrap();
            assert_eq!(a.get_attr("/", "v").unwrap(), Some(AttrValue::Int(1)));
            assert_eq!(b.get_attr("/", "v").unwrap(), Some(AttrValue::Int(2)));
            assert_eq!(a.dim_len("n"), Some(4));
            assert_eq!(b.dim_len("n"), Some(9));
            a.close(c).unwrap();
            b.close(c).unwrap();
        }
    });
    // Reopening by name finds the right one.
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let a = SciFile::open(c, &pfs, &store, "appa", SdmConfig::default()).unwrap();
            assert_eq!(a.dim_len("n"), Some(4));
            a.close(c).unwrap();
        }
    });
}

/// The VTK renderer output is internally consistent with the mesh that
/// SDM's partitioning machinery works over.
#[test]
fn vtk_renders_partitioned_mesh() {
    use sdm::apps::Fun3dWorkload;
    use sdm::sci::vtk::{render_vtk, ScalarField};

    let w = Fun3dWorkload::new(120, 2, 3);
    let owner: Vec<f64> = w.partitioning_vector.iter().map(|&r| r as f64).collect();
    let body = render_vtk(
        "partition",
        &w.mesh,
        &[ScalarField::new("owner", &owner)],
        &[],
    )
    .unwrap();
    // Node count lines up between POINTS and POINT_DATA blocks.
    assert!(body.contains(&format!("POINTS {} double", w.mesh.num_nodes())));
    assert!(body.contains(&format!("POINT_DATA {}", w.mesh.num_nodes())));
    // Every owner value is a valid rank.
    let after = body.split("LOOKUP_TABLE default\n").nth(1).unwrap();
    for line in after.lines().take(w.mesh.num_nodes()) {
        let v: f64 = line.parse().unwrap();
        assert!(v == 0.0 || v == 1.0, "owner must be a rank: {v}");
    }
}
