//! Integration: history files across runs — registration, replay
//! equivalence, cross-process-count invalidation, corruption fallback,
//! and database persistence across "sessions".

use std::sync::Arc;

use sdm::apps::fun3d::{run_sdm, Fun3dOptions};
use sdm::apps::Fun3dWorkload;
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn world() -> (Fun3dWorkload, Arc<Pfs>, Arc<Database>) {
    let w = Fun3dWorkload::new(220, 3, 21);
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let db = Arc::new(Database::new());
    w.stage(&pfs);
    (w, pfs, db)
}

fn run(
    w: &Fun3dWorkload,
    pfs: &Arc<Pfs>,
    db: &Arc<Database>,
    nprocs: usize,
    opts: Fun3dOptions,
) -> Vec<sdm::apps::fun3d::Fun3dResult> {
    // Each run gets a fresh store over the shared database, exactly like
    // a separate job session re-attaching to the metadata service.
    let store = sdm::core::CachedStore::shared(db);
    World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store, w, opts) = (Arc::clone(pfs), Arc::clone(&store), w.clone(), opts);
        move |c| run_sdm(c, &pfs, &store, &w, &opts).unwrap()
    })
}

#[test]
fn replay_produces_identical_partitions_and_results() {
    let (w, pfs, db) = world();
    let fresh = run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            register_history: true,
            ..Default::default()
        },
    );
    let replay = run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            use_history: true,
            ..Default::default()
        },
    );
    for (a, b) in fresh.iter().zip(&replay) {
        assert!(!a.history_hit && b.history_hit);
        assert_eq!(a.partition, b.partition, "partitions must be identical");
        assert!(
            (a.p_checksum - b.p_checksum).abs() < 1e-9,
            "results must be identical"
        );
    }
}

#[test]
fn use_history_without_registration_falls_back() {
    let (w, pfs, db) = world();
    let out = run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            use_history: true,
            ..Default::default()
        },
    );
    assert!(
        out.iter().all(|r| !r.history_hit),
        "no registration: must run fresh"
    );
}

#[test]
fn different_process_count_misses() {
    let (w3, pfs, db) = world();
    run(
        &w3,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            register_history: true,
            ..Default::default()
        },
    );
    // Same mesh partitioned for 2 ranks.
    let w2 = Fun3dWorkload::new(220, 2, 21);
    // Note: same problem size key (edge count), different nprocs.
    assert_eq!(w2.mesh.num_edges(), w3.mesh.num_edges());
    let out = run(
        &w2,
        &pfs,
        &db,
        2,
        Fun3dOptions {
            use_history: true,
            ..Default::default()
        },
    );
    assert!(
        out.iter().all(|r| !r.history_hit),
        "2-proc run must miss a 3-proc history"
    );
}

#[test]
fn truncated_history_file_falls_back_and_deregisters() {
    let (w, pfs, db) = world();
    run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            register_history: true,
            ..Default::default()
        },
    );
    // Truncate the history file to a few bytes.
    let name = format!("fun3d.hist.{}.3", w.mesh.num_edges());
    assert!(pfs.exists(&name), "history file {name} must exist");
    let (f, _) = pfs.open(&name, 0.0).unwrap();
    let len = f.len();
    pfs.delete(&name, 0.0).unwrap();
    let (f2, _) = pfs.open_or_create(&name, 0.0).unwrap();
    pfs.write_at(&f2, 0, &vec![0u8; (len / 10) as usize], 0.0)
        .unwrap();

    let out = run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            use_history: true,
            ..Default::default()
        },
    );
    assert!(
        out.iter().all(|r| !r.history_hit),
        "corrupt history must fall back"
    );
    // The poisoned registration is gone: next run misses cleanly too.
    let again = run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            use_history: true,
            ..Default::default()
        },
    );
    assert!(again.iter().all(|r| !r.history_hit));
}

#[test]
fn metadata_persists_across_database_sessions() {
    let (w, pfs, db) = world();
    run(
        &w,
        &pfs,
        &db,
        3,
        Fun3dOptions {
            register_history: true,
            ..Default::default()
        },
    );
    // Save + reload the DB (a new "MySQL session"), keep the PFS.
    let dir = tempfile::tempdir().unwrap();
    let snap = dir.path().join("meta.json");
    db.save(&snap).unwrap();
    let db2 = Arc::new(Database::load(&snap).unwrap());
    let out = run(
        &w,
        &pfs,
        &db2,
        3,
        Fun3dOptions {
            use_history: true,
            ..Default::default()
        },
    );
    assert!(
        out.iter().all(|r| r.history_hit),
        "a reloaded metadata DB must still resolve the history file"
    );
}
