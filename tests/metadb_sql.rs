//! Property tests for the metadata database's reporting surface:
//! aggregates, GROUP BY, DISTINCT, joins, index probes, and transactions
//! agree with naive in-memory references on arbitrary data.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use sdm::metadb::{Database, Value};

fn db_with_rows(rows: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.exec("CREATE TABLE t (k INT, v INT)", &[]).unwrap();
    for &(k, v) in rows {
        db.exec(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(k), Value::Int(v)],
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GROUP BY k: COUNT/SUM/MIN/MAX per group match a HashMap fold.
    #[test]
    fn group_by_matches_reference(rows in proptest::collection::vec((0i64..6, -100i64..100), 0..60)) {
        let db = db_with_rows(&rows);
        let rs = db
            .exec(
                "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi \
                 FROM t GROUP BY k ORDER BY k",
                &[],
            )
            .unwrap();
        let mut want: HashMap<i64, (i64, i64, i64, i64)> = HashMap::new();
        for &(k, v) in &rows {
            let e = want.entry(k).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        prop_assert_eq!(rs.len(), want.len());
        for r in &rs.rows {
            let k = r[0].as_i64().unwrap();
            let (n, s, lo, hi) = want[&k];
            prop_assert_eq!(r[1].as_i64(), Some(n), "count of {}", k);
            prop_assert_eq!(r[2].as_i64(), Some(s), "sum of {}", k);
            prop_assert_eq!(r[3].as_i64(), Some(lo), "min of {}", k);
            prop_assert_eq!(r[4].as_i64(), Some(hi), "max of {}", k);
        }
        // Groups come out sorted (ORDER BY k).
        let ks: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ks, sorted);
    }

    /// DISTINCT k equals the set of keys, and an indexed equality probe
    /// returns exactly the scan answer.
    #[test]
    fn distinct_and_index_probe_match_scan(
        rows in proptest::collection::vec((0i64..8, 0i64..50), 1..80),
        probe in 0i64..8,
    ) {
        let db = db_with_rows(&rows);
        let rs = db.exec("SELECT DISTINCT k FROM t", &[]).unwrap();
        let got: HashSet<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let want: HashSet<i64> = rows.iter().map(|&(k, _)| k).collect();
        prop_assert_eq!(got, want);

        // Scan answer before creating the index...
        let scan = db
            .exec("SELECT v FROM t WHERE k = ? ORDER BY v", &[Value::Int(probe)])
            .unwrap();
        // ...index-probe answer after.
        db.exec("CREATE INDEX ik ON t (k)", &[]).unwrap();
        db.reset_stats();
        let probed = db
            .exec("SELECT v FROM t WHERE k = ? ORDER BY v", &[Value::Int(probe)])
            .unwrap();
        prop_assert_eq!(scan.rows, probed.rows);
        prop_assert_eq!(db.stats().index_scans, 1, "the probe must use the index");
    }

    /// A rolled-back batch leaves the table exactly as before, no matter
    /// what the batch inserted or deleted.
    #[test]
    fn rollback_is_exact(
        initial in proptest::collection::vec((0i64..5, 0i64..50), 0..20),
        batch in proptest::collection::vec((0i64..5, 0i64..50), 1..20),
        del_below in 0i64..50,
    ) {
        let db = db_with_rows(&initial);
        let before = db.exec("SELECT k, v FROM t ORDER BY k, v", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        for &(k, v) in &batch {
            db.exec("INSERT INTO t VALUES (?, ?)", &[Value::Int(k), Value::Int(v)]).unwrap();
        }
        db.exec("DELETE FROM t WHERE v < ?", &[Value::Int(del_below)]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        let after = db.exec("SELECT k, v FROM t ORDER BY k, v", &[]).unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }
}

/// Join over the SDM schema shape: run_table ⋈ execution_table with an
/// aggregate, as a bench-report query would issue.
#[test]
fn report_query_over_sdm_tables() {
    let db = Database::new();
    db.exec_batch(&[
        "CREATE TABLE run_table (runid INT, application TEXT)",
        "CREATE TABLE execution_table (runid INT, dataset TEXT, timestep INT)",
        "INSERT INTO run_table VALUES (1, 'fun3d'), (2, 'rt'), (3, 'fun3d')",
        "INSERT INTO execution_table VALUES
            (1, 'p', 0), (1, 'q', 0), (1, 'p', 1), (2, 'nodes', 0), (3, 'p', 0)",
    ])
    .unwrap();
    let rs = db
        .exec(
            "SELECT application, COUNT(*) AS writes FROM run_table \
             JOIN execution_table ON run_table.runid = execution_table.runid \
             GROUP BY application ORDER BY application",
            &[],
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["application", "writes"]);
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("fun3d".into()), Value::Int(4)],
            vec![Value::Text("rt".into()), Value::Int(1)],
        ]
    );
    // HAVING filters the small group out.
    let rs = db
        .exec(
            "SELECT application, COUNT(*) AS writes FROM run_table \
             JOIN execution_table ON run_table.runid = execution_table.runid \
             GROUP BY application HAVING writes > 1",
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Text("fun3d".into()));
}
