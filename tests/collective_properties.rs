//! Property tests on the MPI substrate's collectives: results must equal
//! their sequential references for arbitrary inputs, rank counts, and
//! block shapes. The alltoallv case is the direct regression test for a
//! pairwise-exchange routing bug that only appears at three or more
//! ranks (a later phase's destination slot colliding with an earlier
//! phase's source slot).

use proptest::prelude::*;
use sdm::mpi::World;
use sdm::sim::MachineConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// alltoallv transposes arbitrary variable-length byte blocks.
    #[test]
    fn alltoallv_transposes_arbitrary_blocks(
        n in 1usize..6,
        lens in proptest::collection::vec(0usize..40, 36),
        seed in 0u8..200,
    ) {
        let out = World::run(n, MachineConfig::test_tiny(), {
            let lens = lens.clone();
            move |c| {
                // blocks[d]: length lens[rank*6+d], filled with a value
                // identifying (source, dest).
                let blocks: Vec<Vec<u8>> = (0..n)
                    .map(|d| {
                        let len = lens[c.rank() * 6 + d];
                        vec![seed ^ (c.rank() * 16 + d) as u8; len]
                    })
                    .collect();
                c.alltoallv(blocks).unwrap()
            }
        });
        for (r, recv) in out.iter().enumerate() {
            for (s, block) in recv.iter().enumerate() {
                let want_len = lens[s * 6 + r];
                prop_assert_eq!(block.len(), want_len, "r={} s={}", r, s);
                let want_val = seed ^ (s * 16 + r) as u8;
                prop_assert!(
                    block.iter().all(|&b| b == want_val),
                    "r={} s={}: payload mixed with another pair's data",
                    r, s
                );
            }
        }
    }

    /// allreduce(sum) and allgatherv agree with sequential folds.
    #[test]
    fn reductions_match_reference(
        n in 1usize..5,
        vals in proptest::collection::vec(-1000i64..1000, 5),
    ) {
        let out = World::run(n, MachineConfig::test_tiny(), {
            let vals = vals.clone();
            move |c| {
                let mine = [vals[c.rank() % 5], vals[(c.rank() + 1) % 5]];
                let sum = c.allreduce_sum(&mine);
                let gathered = c.allgather_concat(&mine[..1]).unwrap();
                (sum, gathered)
            }
        });
        let mut want_sum = [0i64; 2];
        let mut want_gather = Vec::new();
        for r in 0..n {
            want_sum[0] += vals[r % 5];
            want_sum[1] += vals[(r + 1) % 5];
            want_gather.push(vals[r % 5]);
        }
        for (sum, gathered) in out {
            prop_assert_eq!(&sum[..], &want_sum[..]);
            prop_assert_eq!(&gathered, &want_gather);
        }
    }
}

/// Deterministic regression: the exact 3-rank alltoallv pattern that the
/// parked-outgoing-block bug corrupted (payloads from phase 1 being
/// forwarded in phase 2).
#[test]
fn alltoallv_three_rank_regression() {
    let n = 3;
    let out = World::run(n, MachineConfig::test_tiny(), move |c| {
        let blocks: Vec<Vec<u32>> = (0..n)
            .map(|d| vec![(c.rank() * 100 + d) as u32; 4])
            .collect();
        c.alltoallv(blocks).unwrap()
    });
    for (r, recv) in out.iter().enumerate() {
        for (s, block) in recv.iter().enumerate() {
            assert_eq!(block, &vec![(s * 100 + r) as u32; 4], "r={r} s={s}");
        }
    }
}
