//! Cross-crate integration: the full FUN3D pipeline (mesh generation →
//! staging → import → ring distribution → data imports → edge sweep →
//! checkpoint writes → read-back) produces exactly the data a sequential
//! reference computes, under every file organization and several process
//! counts.

use std::sync::Arc;

use sdm::apps::fun3d::{edge_sweep_reference, run_sdm, Fun3dOptions, RESULT_DATASETS};
use sdm::apps::Fun3dWorkload;
use sdm::core::schema::{ExecutionCol, ExecutionRow};
use sdm::core::OrgLevel;
use sdm::metadb::stmt::{param, Query, TypedColumn};
use sdm::metadb::Database;
use sdm::mpi::pod::as_bytes_mut;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn run_and_verify(nprocs: usize, org: OrgLevel) {
    let w = Fun3dWorkload::new(220, nprocs, 13);
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let db = Arc::new(Database::new());
    let store = sdm::core::CachedStore::shared(&db);
    w.stage(&pfs);
    let out = World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            run_sdm(
                c,
                &pfs,
                &store,
                &w,
                &Fun3dOptions {
                    org,
                    ..Default::default()
                },
            )
            .unwrap()
        }
    });
    assert!(out.iter().all(|r| !r.history_hit));

    // Verify the written files against the sequential reference for
    // every dataset and timestep.
    let (e1, e2) = w.mesh.indirection_arrays();
    let n = w.mesh.num_nodes();
    for t in 0..w.timesteps {
        let want = edge_sweep_reference(&e1, &e2, n, t);
        for ds in RESULT_DATASETS {
            let name = org.file_name("fun3d", 0, ds, t as i64);
            let (f, _) = pfs.open(&name, 0.0).unwrap();
            // Level 2/3 append: find the offset from the metadata table.
            let rs = db
                .exec_stmt(
                    &Query::<ExecutionRow>::filter(
                        ExecutionCol::Dataset
                            .eq(param(0))
                            .and(ExecutionCol::Timestep.eq(param(1))),
                    )
                    .select(&[ExecutionCol::FileOffset])
                    .compile(),
                    &[ds.into(), (t as i64).into()],
                )
                .unwrap();
            let offset = rs.scalar().and_then(sdm::metadb::Value::as_i64).unwrap() as u64;
            let mut vals = vec![0.0f64; n];
            pfs.read_exact_at(&f, offset, as_bytes_mut(&mut vals), 0.0)
                .unwrap();
            for (node, (&got, &exp)) in vals.iter().zip(&want).enumerate() {
                assert!(
                    (got - exp).abs() <= 1e-6 * exp.abs().max(1.0),
                    "org={org:?} t={t} ds={ds} node={node}: {got} vs {exp}"
                );
            }
        }
    }
}

#[test]
fn fun3d_level1_two_ranks() {
    run_and_verify(2, OrgLevel::Level1);
}

#[test]
fn fun3d_level2_three_ranks() {
    run_and_verify(3, OrgLevel::Level2);
}

#[test]
fn fun3d_level3_four_ranks() {
    run_and_verify(4, OrgLevel::Level3);
}

#[test]
fn fun3d_single_rank_degenerate() {
    run_and_verify(1, OrgLevel::Level2);
}

#[test]
fn file_counts_match_levels() {
    // 5 result datasets x 2 timesteps: Level1 -> 10 result files,
    // Level2 -> 5, Level3 -> 1.
    for (org, expect) in [
        (OrgLevel::Level1, 10),
        (OrgLevel::Level2, 5),
        (OrgLevel::Level3, 1),
    ] {
        let w = Fun3dWorkload::new(200, 2, 5);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let db = Arc::new(Database::new());
        let store = sdm::core::CachedStore::shared(&db);
        w.stage(&pfs);
        World::run(2, MachineConfig::test_tiny(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| {
                run_sdm(
                    c,
                    &pfs,
                    &store,
                    &w,
                    &Fun3dOptions {
                        org,
                        ..Default::default()
                    },
                )
                .unwrap();
            }
        });
        let results = pfs
            .list()
            .iter()
            .filter(|f| f.starts_with("fun3d.g0"))
            .count();
        assert_eq!(results, expect, "org {org:?}");
    }
}
