//! Property tests for the I/O core: arbitrary disjoint rank requests
//! round-trip through two-phase collective I/O; views conserve bytes;
//! history blocks survive encode/decode under arbitrary contents.

use std::sync::Arc;

use proptest::prelude::*;
use sdm::core::SdmType;
use sdm::mpi::io::MpiFile;
use sdm::mpi::pod::{as_bytes, as_bytes_mut};
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

/// Generate disjoint per-rank segment lists over a small file.
fn disjoint_segments(nprocs: usize) -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    // Random cut points over [0, 4096), assigned round-robin to ranks.
    proptest::collection::btree_set(0u64..4096, 2..40).prop_map(move |cuts| {
        let cuts: Vec<u64> = cuts.into_iter().collect();
        let mut per_rank: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nprocs];
        for (i, w) in cuts.windows(2).enumerate() {
            // Leave every third region a hole.
            if i % 3 != 2 {
                per_rank[i % nprocs].push((w[0], w[1] - w[0]));
            }
        }
        per_rank
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn twophase_write_read_round_trip(segs in disjoint_segments(3), seed in 0u64..100) {
        let nprocs = 3;
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let all = World::run(nprocs, MachineConfig::test_tiny(), {
            let (pfs, segs) = (Arc::clone(&pfs), segs.clone());
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "prop.dat", true).unwrap();
                let mine = &segs[c.rank()];
                let nbytes: usize = mine.iter().map(|&(_, l)| l as usize).sum();
                let data: Vec<u8> =
                    (0..nbytes).map(|i| (i as u64 * 31 + seed + c.rank() as u64 * 7) as u8).collect();
                f.write_all_segments(c, mine, &data).unwrap();
                let mut back = vec![0u8; nbytes];
                f.read_all_segments(c, mine, &mut back).unwrap();
                f.close(c);
                (data, back)
            }
        });
        for (rank, (data, back)) in all.into_iter().enumerate() {
            prop_assert_eq!(data, back, "rank {} round trip", rank);
        }
    }

    #[test]
    fn view_compile_conserves_and_inverts(mut map in proptest::collection::vec(0u64..500, 1..64)) {
        map.sort_unstable();
        map.dedup();
        let view = sdm::core::view::DataView::compile(&map, 500, SdmType::Double).unwrap();
        // Total bytes conserved.
        let total: u64 = view.ftype.segments.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, map.len() as u64 * 8);
        // Permutation round trip.
        let user: Vec<f64> = (0..map.len()).map(|i| i as f64 * 1.25).collect();
        let file = view.to_file_order(&user).unwrap();
        let back = view.to_user_order(&file).unwrap();
        prop_assert_eq!(back, user);
    }

    #[test]
    fn collective_read_matches_independent_read(
        content in proptest::collection::vec(any::<u8>(), 64..512),
    ) {
        let nprocs = 2;
        let pfs = Pfs::new(MachineConfig::test_tiny());
        {
            let (f, _) = pfs.open_or_create("src.dat", 0.0).unwrap();
            pfs.write_at(&f, 0, &content, 0.0).unwrap();
        }
        let len = content.len();
        let out = World::run(nprocs, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "src.dat", false).unwrap();
                // Rank r reads the r-th half collectively and independently.
                let half = len / 2;
                let (lo, n) = if c.rank() == 0 { (0u64, half) } else { (half as u64, len - half) };
                let mut coll = vec![0u8; n];
                f.read_all_segments(c, &[(lo, n as u64)], &mut coll).unwrap();
                let mut ind = vec![0u8; n];
                f.read_at(c, lo, &mut ind).unwrap();
                f.close(c);
                (coll, ind)
            }
        });
        for (coll, ind) in out {
            prop_assert_eq!(coll, ind);
        }
    }
}

#[test]
fn typed_round_trip_f64_through_segments() {
    let pfs = Pfs::new(MachineConfig::test_tiny());
    World::run(2, MachineConfig::test_tiny(), {
        let pfs = Arc::clone(&pfs);
        move |c| {
            let f = MpiFile::open_collective(c, &pfs, "t.dat", true).unwrap();
            let vals: Vec<f64> = (0..32).map(|i| (c.rank() * 100 + i) as f64 / 3.0).collect();
            let off = c.rank() as u64 * 256;
            f.write_all_segments(c, &[(off, 256)], as_bytes(&vals))
                .unwrap();
            let mut back = vec![0.0f64; 32];
            f.read_all_segments(c, &[(off, 256)], as_bytes_mut(&mut back))
                .unwrap();
            assert_eq!(back, vals);
            f.close(c);
        }
    });
}
