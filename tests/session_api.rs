//! Integration tests for the typed session API.
//!
//! * Property: `DataView::compile`'s permutation round-trips — writing
//!   through the permutation and reading back through its inverse is
//!   the identity, for arbitrary (unique, in-range, shuffled) map
//!   arrays.
//! * `TimestepScope` writes are **byte-identical** to the per-dataset
//!   legacy path at all three file-organization levels, while paying
//!   one metadata sync per timestep instead of one per dataset and
//!   landing each step's execution rows in a single store transaction.

#![allow(deprecated)] // half of the equivalence pair *is* the legacy veneer

use std::sync::Arc;

use proptest::prelude::*;
use sdm::core::schema::ExecutionRow;
use sdm::core::view::DataView;
use sdm::core::{OrgLevel, Sdm, SdmConfig, SdmType};
use sdm::metadb::stmt::Query;
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

// ---------------------------------------------------------------------
// DataView permutation round-trip (proptest)
// ---------------------------------------------------------------------

/// Deterministic Fisher-Yates so the generated map arrays are shuffled
/// (the interesting case), not sorted as `btree_set` yields them.
fn shuffle(xs: &mut [u64], mut seed: u64) {
    for i in (1..xs.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        xs.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn view_permutation_round_trips(
        picks in proptest::collection::btree_set(0u64..400, 0..48),
        seed in 0u64..10_000,
    ) {
        let mut map: Vec<u64> = picks.into_iter().collect();
        shuffle(&mut map, seed);
        let v = DataView::compile(&map, 400, SdmType::Double).unwrap();

        // The compiled permutation is a bijection over the local
        // elements and the sorted map is strictly increasing.
        let mut seen = vec![false; map.len()];
        for &p in &v.perm {
            prop_assert!(!seen[p as usize], "perm repeats index {p}");
            seen[p as usize] = true;
        }
        prop_assert!(v.sorted_map.windows(2).all(|w| w[0] < w[1]));

        // write-permute then read-inverse is the identity on values.
        let user: Vec<f64> = map.iter().map(|&g| g as f64 * 1.25 - 3.0).collect();
        let file_order = v.to_file_order(&user).unwrap();
        // In file order, values must sit at their sorted global slots.
        for (k, &g) in v.sorted_map.iter().enumerate() {
            prop_assert_eq!(file_order[k], g as f64 * 1.25 - 3.0);
        }
        let back = v.to_user_order(&file_order).unwrap();
        prop_assert_eq!(back, user);
    }
}

// ---------------------------------------------------------------------
// TimestepScope ≡ legacy per-dataset writes, at every org level
// ---------------------------------------------------------------------

const GLOBAL: u64 = 48;
const STEPS: i64 = 4;
const DATASETS: [&str; 3] = ["a", "b", "c"];

fn value(ds: usize, g: u64, t: i64) -> f64 {
    (ds as f64 + 1.0) * 1000.0 + g as f64 + t as f64 * 0.5
}

/// Run the workload and return the backing Pfs + Database.
/// `scoped` picks the TimestepScope path; otherwise the legacy veneer
/// writes each dataset separately.
fn run(org: OrgLevel, nprocs: usize, scoped: bool) -> (Arc<Pfs>, Arc<Database>, u64) {
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let db = Arc::new(Database::new());
    let store = sdm::core::CachedStore::shared(&db);
    let syncs = World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let cfg = SdmConfig {
                org,
                ..SdmConfig::default()
            };
            let mut sdm = Sdm::initialize_with(c, &pfs, &store, "eqv", cfg).unwrap();
            let mut b = sdm.group(c);
            for name in DATASETS {
                b = b.dataset::<f64>(name, GLOBAL);
            }
            let g = b.build().unwrap();
            let handles: Vec<_> = DATASETS
                .iter()
                .map(|n| g.handle::<f64>(n).unwrap())
                .collect();
            let mine: Vec<u64> = (c.rank() as u64..GLOBAL).step_by(c.size()).collect();
            for &h in &handles {
                sdm.set_view(c, h, &mine).unwrap();
            }
            let before = c.counters().get("sdm.metadata_syncs");
            for t in 0..STEPS {
                let bufs: Vec<Vec<f64>> = (0..DATASETS.len())
                    .map(|d| mine.iter().map(|&g| value(d, g, t)).collect())
                    .collect();
                if scoped {
                    let mut step = sdm.timestep(c, t);
                    for (i, &h) in handles.iter().enumerate() {
                        step.write(h, &bufs[i]).unwrap();
                    }
                    step.commit().unwrap();
                } else {
                    for (i, name) in DATASETS.iter().enumerate() {
                        sdm.write(c, g.group(), name, t, &bufs[i]).unwrap();
                    }
                }
            }
            let syncs = c.counters().get("sdm.metadata_syncs") - before;
            sdm.finalize(c).unwrap();
            syncs
        }
    });
    (pfs, db, syncs[0])
}

fn file_bytes(pfs: &Arc<Pfs>, name: &str) -> Vec<u8> {
    let len = pfs.file_len(name).unwrap();
    let (f, _) = pfs.open(name, 0.0).unwrap();
    let mut buf = vec![0u8; len as usize];
    pfs.read_exact_at(&f, 0, &mut buf, 0.0).unwrap();
    buf
}

#[test]
fn scoped_writes_byte_identical_to_legacy_at_all_levels() {
    for org in OrgLevel::all() {
        let nprocs = 3;
        let (pfs_legacy, _, _) = run(org, nprocs, false);
        let (pfs_scoped, _, _) = run(org, nprocs, true);
        let mut legacy_files = pfs_legacy.list();
        let mut scoped_files = pfs_scoped.list();
        legacy_files.sort();
        scoped_files.sort();
        assert_eq!(legacy_files, scoped_files, "org {org:?}: same file set");
        for name in &legacy_files {
            assert_eq!(
                file_bytes(&pfs_legacy, name),
                file_bytes(&pfs_scoped, name),
                "org {org:?}: {name} must be byte-identical"
            );
        }
    }
}

#[test]
fn scoped_timestep_pays_one_sync_and_one_transaction() {
    let nprocs = 2;
    // Legacy: one metadata sync per dataset per timestep (per rank).
    let (_, _, legacy_syncs) = run(OrgLevel::Level2, nprocs, false);
    assert_eq!(
        legacy_syncs,
        (nprocs * DATASETS.len()) as u64 * STEPS as u64,
        "legacy path syncs once per dataset write"
    );
    // Scoped: exactly one metadata sync per timestep (per rank)...
    let (_, db, scoped_syncs) = run(OrgLevel::Level2, nprocs, true);
    assert_eq!(
        scoped_syncs,
        nprocs as u64 * STEPS as u64,
        "scoped path must sync exactly once per timestep"
    );
    // ...and exactly one store transaction per timestep: STEPS scope
    // commits plus the one `allocate_runid` reservation at initialize.
    assert_eq!(
        db.stats().transactions,
        1 + STEPS as u64,
        "each scope commit is one BEGIN..COMMIT"
    );
    // Both paths recorded the same execution rows.
    let rs = db
        .exec_stmt(&Query::<ExecutionRow>::all().count().compile(), &[])
        .unwrap();
    assert_eq!(
        rs.scalar().and_then(sdm::metadb::Value::as_i64),
        Some(DATASETS.len() as i64 * STEPS)
    );
}
