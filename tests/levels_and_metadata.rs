//! Integration: the three file organizations store byte-identical data
//! at the offsets the `execution_table` records; reads work across
//! organizations and timesteps; RT data round-trips.

use std::sync::Arc;

use sdm::apps::rt::{node_value, run_sdm as rt_run, tri_value};
use sdm::apps::RtWorkload;
use sdm::core::schema::{ExecutionCol, ExecutionRow};
use sdm::core::{OrgLevel, Sdm, SdmConfig};
use sdm::metadb::stmt::{param, Query, Stmt, TypedColumn};
use sdm::metadb::{Database, Value};
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

/// Typed: the execution rows of a (dataset, timestep), compiled once.
fn lookup_ds_ts() -> Stmt {
    Query::<ExecutionRow>::filter(
        ExecutionCol::Dataset
            .eq(param(0))
            .and(ExecutionCol::Timestep.eq(param(1))),
    )
    .select(&[ExecutionCol::FileOffset, ExecutionCol::FileName])
    .compile()
}

#[test]
fn execution_table_offsets_are_authoritative() {
    // Write 3 timesteps of 2 datasets under Level 3 (everything in one
    // file); then recover every value going only through the metadata.
    let nprocs = 2;
    let global = 64u64;
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let db = Arc::new(Database::new());
    let store = sdm::core::CachedStore::shared(&db);
    World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let cfg = SdmConfig {
                org: OrgLevel::Level3,
                ..Default::default()
            };
            let mut sdm = Sdm::initialize_with(c, &pfs, &store, "mt", cfg).unwrap();
            let g = sdm
                .group(c)
                .dataset::<f64>("a", global)
                .dataset::<f64>("b", global)
                .build()
                .unwrap();
            let (ha, hb) = (g.handle::<f64>("a").unwrap(), g.handle::<f64>("b").unwrap());
            let mine: Vec<u64> = (c.rank() as u64..global).step_by(c.size()).collect();
            sdm.set_view(c, ha, &mine).unwrap();
            sdm.set_view(c, hb, &mine).unwrap();
            for t in 0..3i64 {
                let va: Vec<f64> = mine.iter().map(|&g| g as f64 + t as f64 * 100.0).collect();
                let vb: Vec<f64> = mine.iter().map(|&g| -(g as f64) - t as f64).collect();
                let mut step = sdm.timestep(c, t);
                step.write(ha, &va).unwrap();
                step.write(hb, &vb).unwrap();
                step.commit().unwrap();
            }
            sdm.finalize(c).unwrap();
        }
    });

    // 6 execution rows, all in one file, offsets strictly increasing.
    let rs = db
        .exec_stmt(
            &Query::<ExecutionRow>::all()
                .select(&[
                    ExecutionCol::Dataset,
                    ExecutionCol::Timestep,
                    ExecutionCol::FileOffset,
                    ExecutionCol::FileName,
                ])
                .order_by(ExecutionCol::FileOffset)
                .compile(),
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 6);
    let file = rs.rows[0][3].as_str().unwrap().to_string();
    assert!(
        rs.rows.iter().all(|r| r[3].as_str() == Some(&file)),
        "level 3: one file"
    );
    let (f, _) = pfs.open(&file, 0.0).unwrap();
    for row in &rs.rows {
        let ds = row[0].as_str().unwrap();
        let t = row[1].as_i64().unwrap();
        let off = row[2].as_i64().unwrap() as u64;
        let mut vals = vec![0.0f64; global as usize];
        pfs.read_exact_at(&f, off, sdm::mpi::pod::as_bytes_mut(&mut vals), 0.0)
            .unwrap();
        for (g, &v) in vals.iter().enumerate() {
            let want = if ds == "a" {
                g as f64 + t as f64 * 100.0
            } else {
                -(g as f64) - t as f64
            };
            assert_eq!(v, want, "ds={ds} t={t} g={g}");
        }
    }
}

#[test]
fn rt_bytes_identical_across_levels() {
    let nprocs = 3;
    let w = RtWorkload::new(250, nprocs, 9);
    let mut images: Vec<Vec<u8>> = Vec::new();
    for org in OrgLevel::all() {
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let db = Arc::new(Database::new());
        let store = sdm::core::CachedStore::shared(&db);
        World::run(nprocs, MachineConfig::test_tiny(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| {
                rt_run(c, &pfs, &store, &w, org).unwrap();
            }
        });
        // Reconstruct the node dataset at step 4 via the metadata.
        let rs = db
            .exec_stmt(&lookup_ds_ts(), &[Value::from("node_data"), Value::Int(4)])
            .unwrap();
        let off = rs.rows[0][0].as_i64().unwrap() as u64;
        let name = rs.rows[0][1].as_str().unwrap();
        let (f, _) = pfs.open(name, 0.0).unwrap();
        let mut img = vec![0u8; w.mesh.num_nodes() * 8];
        pfs.read_exact_at(&f, off, &mut img, 0.0).unwrap();
        images.push(img);
    }
    assert_eq!(images[0], images[1], "level 1 vs 2");
    assert_eq!(images[1], images[2], "level 2 vs 3");
}

#[test]
fn rt_values_match_generators() {
    let nprocs = 2;
    let w = RtWorkload::new(200, nprocs, 3);
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let db = Arc::new(Database::new());
    let store = sdm::core::CachedStore::shared(&db);
    World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            rt_run(c, &pfs, &store, &w, OrgLevel::Level2).unwrap();
        }
    });
    for t in [0usize, 4] {
        type ValueFn = fn(u64, usize) -> f64;
        let cases: [(&str, usize, ValueFn); 2] = [
            ("node_data", w.mesh.num_nodes(), |g, t| {
                node_value(g as u32, t)
            }),
            ("tri_data", w.mesh.num_cells(), tri_value),
        ];
        for (ds, n, value) in cases {
            let rs = db
                .exec_stmt(&lookup_ds_ts(), &[Value::from(ds), Value::Int(t as i64)])
                .unwrap();
            let off = rs.rows[0][0].as_i64().unwrap() as u64;
            let (f, _) = pfs.open(rs.rows[0][1].as_str().unwrap(), 0.0).unwrap();
            let mut vals = vec![0.0f64; n];
            pfs.read_exact_at(&f, off, sdm::mpi::pod::as_bytes_mut(&mut vals), 0.0)
                .unwrap();
            for (g, &v) in vals.iter().enumerate() {
                assert_eq!(v, value(g as u64, t), "{ds} t={t} g={g}");
            }
        }
    }
}
