//! Integration: SDM's parallel import + ring distribution must produce
//! byte-identical partitions and data to the original rank-0-read +
//! broadcast baseline (property checked across process counts and
//! partitioners).

use std::sync::Arc;

use proptest::prelude::*;
use sdm::apps::original::fun3d_original_import;
use sdm::apps::Fun3dWorkload;
use sdm::core::{Sdm, SdmConfig};
use sdm::mesh::Uns3dLayout;
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::partition::{partition_block, partition_random};
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn sdm_partitions(w: &Fun3dWorkload, nprocs: usize) -> Vec<sdm::core::PartitionedIndex> {
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let store = sdm::core::CachedStore::shared(&Arc::new(Database::new()));
    w.stage(&pfs);
    World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let mut sdm =
                Sdm::initialize_with(c, &pfs, &store, "eq", SdmConfig::default()).unwrap();
            let h = sdm
                .group(c)
                .dataset::<f64>("d", w.mesh.num_nodes() as u64)
                .build()
                .unwrap()
                .group();
            sdm.make_importlist(
                c,
                h,
                vec![
                    sdm::core::ImportDesc::index("edge1", &w.mesh_file),
                    sdm::core::ImportDesc::index("edge2", &w.mesh_file),
                ],
            )
            .unwrap();
            let total = w.mesh.num_edges() as u64;
            let (start, e1) = sdm
                .import_contiguous::<i32>(c, h, "edge1", w.layout.edge1_offset(), total)
                .unwrap();
            let (_, e2) = sdm
                .import_contiguous::<i32>(c, h, "edge2", w.layout.edge2_offset(), total)
                .unwrap();
            sdm.partition_index_fresh(c, &w.partitioning_vector, start, &e1, &e2)
                .unwrap()
        }
    })
}

fn original_partitions(w: &Fun3dWorkload, nprocs: usize) -> Vec<sdm::core::PartitionedIndex> {
    let pfs = Pfs::new(MachineConfig::test_tiny());
    w.stage(&pfs);
    World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, w) = (Arc::clone(&pfs), w.clone());
        move |c| fun3d_original_import(c, &pfs, &w).unwrap().1
    })
}

#[test]
fn ring_equals_broadcast_partition() {
    for nprocs in [1, 2, 3, 5] {
        let w = Fun3dWorkload::new(200, nprocs, 31);
        assert_eq!(
            sdm_partitions(&w, nprocs),
            original_partitions(&w, nprocs),
            "nprocs={nprocs}"
        );
    }
}

#[test]
fn imported_edge_data_matches_layout_values() {
    let nprocs = 3;
    let w = Fun3dWorkload::new(200, nprocs, 17);
    let pfs = Pfs::new(MachineConfig::test_tiny());
    let store = sdm::core::CachedStore::shared(&Arc::new(Database::new()));
    w.stage(&pfs);
    let ok = World::run(nprocs, MachineConfig::test_tiny(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let mut sdm =
                Sdm::initialize_with(c, &pfs, &store, "eq2", SdmConfig::default()).unwrap();
            let h = sdm
                .group(c)
                .dataset::<f64>("d", w.mesh.num_nodes() as u64)
                .build()
                .unwrap()
                .group();
            let mut imports = vec![
                sdm::core::ImportDesc::index("edge1", &w.mesh_file),
                sdm::core::ImportDesc::index("edge2", &w.mesh_file),
            ];
            for k in 0..4 {
                imports.push(sdm::core::ImportDesc::data(format!("x{k}"), &w.mesh_file));
                imports.push(sdm::core::ImportDesc::data(format!("y{k}"), &w.mesh_file));
            }
            sdm.make_importlist(c, h, imports).unwrap();
            let total_edges = w.mesh.num_edges() as u64;
            let total_nodes = w.mesh.num_nodes() as u64;
            let (start, e1) = sdm
                .import_contiguous::<i32>(c, h, "edge1", w.layout.edge1_offset(), total_edges)
                .unwrap();
            let (_, e2) = sdm
                .import_contiguous::<i32>(c, h, "edge2", w.layout.edge2_offset(), total_edges)
                .unwrap();
            let pi = sdm
                .partition_index_fresh(c, &w.partitioning_vector, start, &e1, &e2)
                .unwrap();
            // Every imported edge/node value must equal the synthetic
            // generator formula at its global index.
            for k in 0..4 {
                let x = sdm
                    .partition_data_edges(
                        c,
                        h,
                        &format!("x{k}"),
                        w.layout.edge_array_offset(k),
                        &pi,
                        total_edges,
                    )
                    .unwrap();
                for (i, &e) in pi.edge_ids.iter().enumerate() {
                    assert_eq!(x[i], Uns3dLayout::edge_value(k, e), "x{k}[{e}]");
                }
                let y = sdm
                    .partition_data_nodes(
                        c,
                        h,
                        &format!("y{k}"),
                        w.layout.node_array_offset(k),
                        &pi,
                        total_nodes,
                    )
                    .unwrap();
                for (i, &n) in pi.all_nodes().iter().enumerate() {
                    assert_eq!(y[i], Uns3dLayout::node_value(k, n as u64), "y{k}[{n}]");
                }
            }
            true
        }
    });
    assert!(ok.iter().all(|&b| b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random partitioning vectors, the ring distribution equals the
    /// sequential reference on every rank.
    #[test]
    fn ring_matches_reference_for_random_vectors(seed in 0u64..1000, nprocs in 1usize..5) {
        let w = Fun3dWorkload::new(150, nprocs, 3);
        let n = w.mesh.num_nodes();
        let pv = partition_random(n, nprocs, seed);
        let (e1, e2) = w.mesh.indirection_arrays();
        // Distributed run with the random vector.
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let store = sdm::core::CachedStore::shared(&Arc::new(Database::new()));
        w.stage(&pfs);
        let out = World::run(nprocs, MachineConfig::test_tiny(), {
            let (pfs, store, w, pv) = (Arc::clone(&pfs), Arc::clone(&store), w.clone(), pv.clone());
            move |c| {
                let mut sdm = Sdm::initialize_with(c, &pfs, &store, "pp", SdmConfig::default()).unwrap();
                let h = sdm.group(c).dataset::<f64>("d", 1).build().unwrap().group();
                sdm.make_importlist(c, h, vec![
                    sdm::core::ImportDesc::index("edge1", &w.mesh_file),
                    sdm::core::ImportDesc::index("edge2", &w.mesh_file),
                ]).unwrap();
                let total = w.mesh.num_edges() as u64;
                let (start, le1) = sdm.import_contiguous::<i32>(c, h, "edge1", w.layout.edge1_offset(), total).unwrap();
                let (_, le2) = sdm.import_contiguous::<i32>(c, h, "edge2", w.layout.edge2_offset(), total).unwrap();
                sdm.partition_index_fresh(c, &pv, start, &le1, &le2).unwrap()
            }
        });
        for (rank, pi) in out.iter().enumerate() {
            let want = Sdm::partition_index_reference(&pv, &e1, &e2, rank as u32);
            prop_assert_eq!(pi, &want);
        }
    }

    /// Block partition vectors give each rank a contiguous node range and
    /// the union of owned nodes is exactly 0..n.
    #[test]
    fn owned_nodes_partition_exactly(nprocs in 1usize..6) {
        let w = Fun3dWorkload::new(150, nprocs, 3);
        let n = w.mesh.num_nodes();
        let pv = partition_block(n, nprocs);
        let (e1, e2) = w.mesh.indirection_arrays();
        let mut seen = vec![false; n];
        for r in 0..nprocs as u32 {
            let pi = Sdm::partition_index_reference(&pv, &e1, &e2, r);
            for &node in &pi.owned_nodes {
                prop_assert!(!seen[node as usize], "node {} owned twice", node);
                seen[node as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
