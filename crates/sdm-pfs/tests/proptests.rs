//! Property tests: stripe arithmetic against a per-byte reference, and
//! arbitrary write/read sequences against an in-memory model.

use proptest::prelude::*;
use sdm_pfs::{Pfs, StripeLayout};
use sdm_sim::MachineConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bytes_per_server_matches_reference(
        stripe in 1u64..64,
        servers in 1usize..8,
        off in 0u64..500,
        len in 0u64..2000,
    ) {
        let l = StripeLayout::new(stripe, servers);
        let fast = l.bytes_per_server(off, len);
        let mut slow = vec![0u64; servers];
        for b in off..off + len {
            slow[l.server_of(b)] += 1;
        }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn write_read_sequences_match_model(
        ops in proptest::collection::vec((0u64..300, proptest::collection::vec(any::<u8>(), 1..64)), 1..20)
    ) {
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let (f, _) = pfs.open_or_create("model.dat", 0.0).unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut t = 0.0;
        for (off, data) in &ops {
            t = pfs.write_at(&f, *off, data, t).unwrap();
            let end = *off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(data);
        }
        prop_assert_eq!(f.len(), model.len() as u64);
        let mut back = vec![0u8; model.len()];
        let (n, _) = pfs.read_at(&f, 0, &mut back, t).unwrap();
        prop_assert_eq!(n, model.len());
        prop_assert_eq!(back, model);
    }

    #[test]
    fn completion_times_are_monotone_nonnegative(
        sizes in proptest::collection::vec(1usize..10_000, 1..10)
    ) {
        let pfs = Pfs::new(MachineConfig::origin2000());
        let (f, mut t) = pfs.open_or_create("mono.dat", 0.0).unwrap();
        let mut off = 0u64;
        for s in sizes {
            let t2 = pfs.write_at(&f, off, &vec![1u8; s], t).unwrap();
            prop_assert!(t2 >= t, "completion must not precede submission");
            t = t2;
            off += s as u64;
        }
    }
}
