//! Client-side block cache ("XFS buffered I/O").
//!
//! The paper notes results used XFS *buffered* I/O. This cache gives the
//! same effect for small, repeated accesses (metadata probes, header
//! reads): block-aligned LRU caching in front of a [`crate::Pfs`] handle.
//! Cache hits cost only the client copy; misses fetch the whole block.
//! Writes are write-through (the PFS image stays authoritative) but update
//! cached blocks so later reads hit.

use std::collections::HashMap;

use sdm_sim::Seconds;

use crate::error::PfsResult;
use crate::file::PfsFile;
use crate::fs::Pfs;

/// A block-aligned LRU cache over one file handle.
#[derive(Debug)]
pub struct BlockCache {
    file: PfsFile,
    block_size: usize,
    capacity_blocks: usize,
    /// block index -> (data, last-use tick)
    blocks: HashMap<u64, (Vec<u8>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Wrap `file` with a cache of `capacity_blocks` blocks of
    /// `block_size` bytes.
    pub fn new(file: PfsFile, block_size: usize, capacity_blocks: usize) -> Self {
        assert!(block_size > 0 && capacity_blocks > 0);
        Self {
            file,
            block_size,
            capacity_blocks,
            blocks: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The wrapped handle.
    pub fn file(&self) -> &PfsFile {
        &self.file
    }

    fn touch(&mut self, block: u64) {
        self.tick += 1;
        if let Some(e) = self.blocks.get_mut(&block) {
            e.1 = self.tick;
        }
    }

    fn evict_if_full(&mut self) {
        while self.blocks.len() >= self.capacity_blocks {
            let oldest = self
                .blocks
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(&b, _)| b);
            if let Some(b) = oldest {
                self.blocks.remove(&b);
            } else {
                break;
            }
        }
    }

    fn load_block(&mut self, pfs: &Pfs, block: u64, now: Seconds) -> PfsResult<Seconds> {
        if self.blocks.contains_key(&block) {
            self.hits += 1;
            self.touch(block);
            return Ok(now);
        }
        self.misses += 1;
        self.evict_if_full();
        let mut buf = vec![0u8; self.block_size];
        let (n, t) = pfs.read_at(&self.file, block * self.block_size as u64, &mut buf, now)?;
        buf.truncate(n);
        // Keep a full-size block image; bytes past EOF read as zeros.
        buf.resize(self.block_size, 0);
        self.tick += 1;
        self.blocks.insert(block, (buf, self.tick));
        Ok(t)
    }

    /// Cached read of `buf.len()` bytes at `offset`. Bytes past EOF come
    /// back as zeros (callers use `Pfs::file_len` for exact EOF logic).
    pub fn read_at(
        &mut self,
        pfs: &Pfs,
        offset: u64,
        buf: &mut [u8],
        now: Seconds,
    ) -> PfsResult<Seconds> {
        let bs = self.block_size as u64;
        let mut t = now;
        let mut cur = offset;
        let end = offset + buf.len() as u64;
        while cur < end {
            let block = cur / bs;
            t = self.load_block(pfs, block, t)?;
            let bstart = block * bs;
            let lo = (cur - bstart) as usize;
            let hi = ((end - bstart).min(bs)) as usize;
            let dst = (cur - offset) as usize;
            let data = &self.blocks[&block].0;
            buf[dst..dst + (hi - lo)].copy_from_slice(&data[lo..hi]);
            t += pfs.config().io.client_copy(hi - lo);
            cur = bstart + hi as u64;
        }
        Ok(t)
    }

    /// Write-through write: updates the PFS image and any cached blocks.
    pub fn write_at(
        &mut self,
        pfs: &Pfs,
        offset: u64,
        data: &[u8],
        now: Seconds,
    ) -> PfsResult<Seconds> {
        let t = pfs.write_at(&self.file, offset, data, now)?;
        let bs = self.block_size as u64;
        let end = offset + data.len() as u64;
        for block in offset / bs..=(end.saturating_sub(1)) / bs {
            if let Some((cached, _)) = self.blocks.get_mut(&block) {
                let bstart = block * bs;
                let lo = offset.max(bstart);
                let hi = end.min(bstart + bs);
                let src = (lo - offset) as usize;
                let dst = (lo - bstart) as usize;
                let n = (hi - lo) as usize;
                cached[dst..dst + n].copy_from_slice(&data[src..src + n]);
            }
        }
        Ok(t)
    }

    /// Drop all cached blocks.
    pub fn invalidate(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_sim::MachineConfig;

    fn setup() -> (std::sync::Arc<Pfs>, BlockCache) {
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let (f, _) = pfs.open_or_create("cache.dat", 0.0).unwrap();
        pfs.write_at(&f, 0, &(0..=255u8).collect::<Vec<_>>(), 0.0)
            .unwrap();
        let cache = BlockCache::new(f, 64, 2);
        (pfs, cache)
    }

    #[test]
    fn repeated_reads_hit() {
        let (pfs, mut c) = setup();
        let mut b = [0u8; 16];
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap();
        c.read_at(&pfs, 16, &mut b, 0.0).unwrap();
        let (hits, misses) = c.stats();
        assert_eq!(misses, 1, "same block, one miss");
        assert_eq!(hits, 1);
        assert_eq!(b[0], 16);
    }

    #[test]
    fn read_spanning_blocks() {
        let (pfs, mut c) = setup();
        let mut b = [0u8; 128];
        c.read_at(&pfs, 32, &mut b, 0.0).unwrap();
        let want: Vec<u8> = (32..160u32).map(|x| x as u8).collect();
        assert_eq!(&b[..], &want[..]);
        assert_eq!(c.stats().1, 3, "three blocks touched");
    }

    #[test]
    fn lru_evicts_oldest() {
        let (pfs, mut c) = setup();
        let mut b = [0u8; 1];
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap(); // block 0
        c.read_at(&pfs, 64, &mut b, 0.0).unwrap(); // block 1
        c.read_at(&pfs, 128, &mut b, 0.0).unwrap(); // block 2 evicts block 0
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap(); // miss again
        assert_eq!(c.stats(), (0, 4));
    }

    #[test]
    fn write_through_updates_cache_and_pfs() {
        let (pfs, mut c) = setup();
        let mut b = [0u8; 4];
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap();
        c.write_at(&pfs, 1, b"ZZ", 0.0).unwrap();
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap();
        assert_eq!(&b, &[0, b'Z', b'Z', 3]);
        // And the underlying file agrees.
        let mut raw = [0u8; 4];
        pfs.read_exact_at(c.file(), 0, &mut raw, 0.0).unwrap();
        assert_eq!(&raw, &[0, b'Z', b'Z', 3]);
    }

    #[test]
    fn reads_past_eof_are_zeros() {
        let (pfs, mut c) = setup();
        let mut b = [7u8; 8];
        c.read_at(&pfs, 300, &mut b, 0.0).unwrap();
        assert_eq!(b, [0u8; 8]);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let (pfs, mut c) = setup();
        let mut b = [0u8; 1];
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap();
        c.invalidate();
        c.read_at(&pfs, 0, &mut b, 0.0).unwrap();
        assert_eq!(c.stats(), (0, 2));
    }
}
