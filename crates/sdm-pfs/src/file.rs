//! File handles and file images.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// The stored image of one file. Bytes are real; writes past the current
/// end extend the file with zeros (holes read back as zeros, like POSIX).
#[derive(Debug)]
pub(crate) struct FileData {
    pub(crate) name: String,
    pub(crate) bytes: RwLock<Vec<u8>>,
}

impl FileData {
    pub(crate) fn new(name: String) -> Arc<Self> {
        Arc::new(Self {
            name,
            bytes: RwLock::new(Vec::new()),
        })
    }
}

/// An open handle to a PFS file. Cheap to clone; all clones refer to the
/// same file image. Operations go through [`crate::Pfs`] so that timing
/// and fault injection stay centralized.
#[derive(Debug, Clone)]
pub struct PfsFile {
    pub(crate) data: Arc<FileData>,
    closed: Arc<AtomicBool>,
}

impl PfsFile {
    pub(crate) fn new(data: Arc<FileData>) -> Self {
        Self {
            data,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The file's name in the PFS namespace.
    pub fn name(&self) -> &str {
        &self.data.name
    }

    /// Current length in bytes (ignores fault-plan truncation).
    pub fn len(&self) -> u64 {
        self.data.bytes.read().len() as u64
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this handle has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    pub(crate) fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_image_and_close_state() {
        let f = PfsFile::new(FileData::new("a".into()));
        let g = f.clone();
        f.data.bytes.write().extend_from_slice(b"hello");
        assert_eq!(g.len(), 5);
        g.mark_closed();
        assert!(f.is_closed());
    }

    #[test]
    fn new_file_is_empty_and_open() {
        let f = PfsFile::new(FileData::new("x".into()));
        assert!(f.is_empty());
        assert!(!f.is_closed());
        assert_eq!(f.name(), "x");
    }
}
