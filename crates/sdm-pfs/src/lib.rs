//! Striped parallel-file-system simulator.
//!
//! Stands in for the paper's XFS installation on the Argonne Origin2000
//! (10 Fibre Channel controllers, 110 disks). The file *contents* are real
//! — bytes written can be read back and verified — while the *time* each
//! operation takes follows the [`sdm_sim::IoModel`] cost model:
//!
//! * files are striped round-robin over `io_servers` servers in
//!   `stripe_size` units;
//! * each server serializes its requests (a `busy_until` queue), so
//!   concurrent clients contend exactly where real controllers would;
//! * opens/closes/views go through a serialized metadata service, which is
//!   what makes the paper's Level 1 / 2 / 3 file organizations diverge
//!   when the open cost is high;
//! * a fault plan can inject open failures and short reads for the
//!   fallback paths in `sdm-core`.
//!
//! Every operation takes the caller's current virtual time and returns the
//! completion time; the caller syncs its [`sdm_sim::VClock`] to that.

pub mod cache;
pub mod error;
pub mod faults;
pub mod file;
pub mod fs;
pub mod server;
pub mod stripe;

pub use error::{PfsError, PfsResult};
pub use faults::FaultPlan;
pub use file::PfsFile;
pub use fs::Pfs;
pub use stripe::StripeLayout;
