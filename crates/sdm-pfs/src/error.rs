//! PFS error type.

use std::fmt;

/// Errors surfaced by the simulated file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// Open/stat of a file that does not exist.
    NotFound(String),
    /// Create with `exclusive` of a file that already exists.
    AlreadyExists(String),
    /// Injected open failure (fault plan).
    OpenFailed(String),
    /// Read past the end of the file when `exact` semantics were requested.
    ShortRead {
        /// File name.
        name: String,
        /// Bytes requested.
        wanted: usize,
        /// Bytes available.
        got: usize,
    },
    /// Operation on a closed handle.
    Closed(String),
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::NotFound(n) => write!(f, "file not found: {n}"),
            PfsError::AlreadyExists(n) => write!(f, "file already exists: {n}"),
            PfsError::OpenFailed(n) => write!(f, "open failed (injected fault): {n}"),
            PfsError::ShortRead { name, wanted, got } => {
                write!(f, "short read on {name}: wanted {wanted} bytes, got {got}")
            }
            PfsError::Closed(n) => write!(f, "operation on closed handle: {n}"),
        }
    }
}

impl std::error::Error for PfsError {}

/// Convenience alias.
pub type PfsResult<T> = Result<T, PfsError>;
