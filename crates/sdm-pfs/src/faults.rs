//! Fault injection for resilience tests.
//!
//! `sdm-core` must fall back gracefully when a history file is missing,
//! unreadable, or truncated; these knobs let tests create those worlds.

use std::collections::HashSet;

use parking_lot::Mutex;

/// Declarative fault plan installed on a [`crate::Pfs`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Opens of these exact file names fail with `PfsError::OpenFailed`.
    fail_open: HashSet<String>,
    /// Reads of these files are truncated to this many bytes from offset 0
    /// (simulates a torn/partial history file).
    truncate_read: Mutex<Vec<(String, u64)>>,
    /// Files whose first byte is flipped on read (checksum tests).
    corrupt_first_byte: HashSet<String>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail every open of `name`.
    pub fn fail_open(mut self, name: impl Into<String>) -> Self {
        self.fail_open.insert(name.into());
        self
    }

    /// Make `name` appear truncated to `len` bytes.
    pub fn truncate(self, name: impl Into<String>, len: u64) -> Self {
        self.truncate_read.lock().push((name.into(), len));
        self
    }

    /// Flip the first byte of `name` on every read that covers offset 0.
    pub fn corrupt_first_byte(mut self, name: impl Into<String>) -> Self {
        self.corrupt_first_byte.insert(name.into());
        self
    }

    /// Should an open of `name` fail?
    pub fn open_fails(&self, name: &str) -> bool {
        self.fail_open.contains(name)
    }

    /// Effective visible length of `name` given a real length.
    pub fn visible_len(&self, name: &str, real: u64) -> u64 {
        self.truncate_read
            .lock()
            .iter()
            .filter(|(n, _)| n == name)
            .map(|&(_, l)| l)
            .min()
            .map_or(real, |l| l.min(real))
    }

    /// Should data read from `name` at `offset` be corrupted?
    pub fn corrupts(&self, name: &str, offset: u64) -> bool {
        offset == 0 && self.corrupt_first_byte.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        let p = FaultPlan::none();
        assert!(!p.open_fails("x"));
        assert_eq!(p.visible_len("x", 100), 100);
        assert!(!p.corrupts("x", 0));
    }

    #[test]
    fn open_failure_is_name_specific() {
        let p = FaultPlan::none().fail_open("bad.dat");
        assert!(p.open_fails("bad.dat"));
        assert!(!p.open_fails("good.dat"));
    }

    #[test]
    fn truncation_caps_length() {
        let p = FaultPlan::none().truncate("t.dat", 10);
        assert_eq!(p.visible_len("t.dat", 100), 10);
        assert_eq!(p.visible_len("t.dat", 5), 5);
        assert_eq!(p.visible_len("other", 100), 100);
    }

    #[test]
    fn corruption_only_at_offset_zero() {
        let p = FaultPlan::none().corrupt_first_byte("c.dat");
        assert!(p.corrupts("c.dat", 0));
        assert!(!p.corrupts("c.dat", 1));
    }
}
