//! Stripe layout arithmetic.
//!
//! Files are striped round-robin: byte `b` lives in stripe unit
//! `b / stripe_size`, which is stored on server `unit % servers`. The cost
//! model only needs, for a contiguous extent, *how many bytes land on each
//! server* and *how many distinct requests* that implies; this module
//! computes both without iterating per byte.

/// Round-robin stripe layout over a fixed server count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// Number of I/O servers.
    pub servers: usize,
}

impl StripeLayout {
    /// New layout; panics on degenerate parameters.
    pub fn new(stripe_size: u64, servers: usize) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(servers > 0, "need at least one server");
        Self {
            stripe_size,
            servers,
        }
    }

    /// Server holding the stripe unit that contains byte offset `off`.
    #[inline]
    pub fn server_of(&self, off: u64) -> usize {
        ((off / self.stripe_size) % self.servers as u64) as usize
    }

    /// For the extent `[off, off+len)`, the number of bytes stored on each
    /// server. Returns a vector of length `self.servers`.
    pub fn bytes_per_server(&self, off: u64, len: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.servers];
        if len == 0 {
            return out;
        }
        let first_unit = off / self.stripe_size;
        let last_unit = (off + len - 1) / self.stripe_size;
        let nunits = last_unit - first_unit + 1;
        if nunits as usize <= 2 * self.servers {
            // Few units: walk them directly.
            let mut cur = off;
            let end = off + len;
            while cur < end {
                let unit = cur / self.stripe_size;
                let unit_end = (unit + 1) * self.stripe_size;
                let take = unit_end.min(end) - cur;
                out[(unit % self.servers as u64) as usize] += take;
                cur += take;
            }
        } else {
            // Many units: whole cycles contribute evenly; handle the
            // ragged head and tail unit-by-unit.
            let head_end = (first_unit + self.servers as u64).min(last_unit + 1);
            let tail_start = last_unit
                .saturating_sub(self.servers as u64 - 1)
                .max(head_end);
            // Head units (first `servers` units, possibly partial first).
            let end = off + len;
            for unit in first_unit..head_end {
                let ustart = unit * self.stripe_size;
                let uend = ustart + self.stripe_size;
                let take = uend.min(end) - ustart.max(off);
                out[(unit % self.servers as u64) as usize] += take;
            }
            // Tail units (last up-to-`servers` units, possibly partial last).
            for unit in tail_start..=last_unit {
                let ustart = unit * self.stripe_size;
                let uend = ustart + self.stripe_size;
                let take = uend.min(end) - ustart.max(off);
                out[(unit % self.servers as u64) as usize] += take;
            }
            // Middle: full units in complete server cycles.
            if tail_start > head_end {
                let mid_units = tail_start - head_end;
                let full_cycles = mid_units / self.servers as u64;
                let rem = mid_units % self.servers as u64;
                for s in out.iter_mut() {
                    *s += full_cycles * self.stripe_size;
                }
                // Remaining `rem` consecutive units after the full cycles.
                let rem_start = head_end + full_cycles * self.servers as u64;
                for unit in rem_start..rem_start + rem {
                    out[(unit % self.servers as u64) as usize] += self.stripe_size;
                }
            }
        }
        out
    }

    /// Number of stripe units the extent `[off, off+len)` touches. One
    /// server request is charged per touched unit run on that server; for
    /// the linear model we approximate requests-per-server as
    /// `ceil(units_touched / servers)` — i.e. a large contiguous request
    /// is one logical request per server, regardless of unit count.
    pub fn units_touched(&self, off: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        (off + len - 1) / self.stripe_size - off / self.stripe_size + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: per-byte accumulation.
    fn bytes_per_server_ref(l: &StripeLayout, off: u64, len: u64) -> Vec<u64> {
        let mut out = vec![0u64; l.servers];
        for b in off..off + len {
            out[l.server_of(b)] += 1;
        }
        out
    }

    #[test]
    fn server_of_round_robin() {
        let l = StripeLayout::new(10, 3);
        assert_eq!(l.server_of(0), 0);
        assert_eq!(l.server_of(9), 0);
        assert_eq!(l.server_of(10), 1);
        assert_eq!(l.server_of(29), 2);
        assert_eq!(l.server_of(30), 0);
    }

    #[test]
    fn empty_extent_is_zero() {
        let l = StripeLayout::new(10, 3);
        assert_eq!(l.bytes_per_server(5, 0), vec![0, 0, 0]);
        assert_eq!(l.units_touched(5, 0), 0);
    }

    #[test]
    fn single_unit_extent() {
        let l = StripeLayout::new(10, 3);
        let b = l.bytes_per_server(12, 5);
        assert_eq!(b, vec![0, 5, 0]);
        assert_eq!(l.units_touched(12, 5), 1);
    }

    #[test]
    fn matches_reference_small() {
        let l = StripeLayout::new(7, 4);
        for off in 0..30 {
            for len in 0..60 {
                assert_eq!(
                    l.bytes_per_server(off, len),
                    bytes_per_server_ref(&l, off, len),
                    "off={off} len={len}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_large_extent() {
        let l = StripeLayout::new(64, 10);
        // Extent spanning many complete cycles with ragged ends.
        for &(off, len) in &[
            (3u64, 64 * 10 * 7 + 100),
            (64 * 3 + 5, 64 * 10 * 3),
            (0, 64 * 25),
        ] {
            assert_eq!(
                l.bytes_per_server(off, len),
                bytes_per_server_ref(&l, off, len)
            );
        }
    }

    #[test]
    fn totals_conserved() {
        let l = StripeLayout::new(13, 5);
        let b = l.bytes_per_server(100, 10_000);
        assert_eq!(b.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn units_touched_counts() {
        let l = StripeLayout::new(10, 3);
        assert_eq!(l.units_touched(0, 10), 1);
        assert_eq!(l.units_touched(0, 11), 2);
        assert_eq!(l.units_touched(9, 2), 2);
    }

    #[test]
    #[should_panic(expected = "stripe size")]
    fn zero_stripe_panics() {
        StripeLayout::new(0, 3);
    }
}
