//! The parallel file system: namespace, data path, and timing.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use sdm_sim::stats::Counters;
use sdm_sim::{MachineConfig, Seconds};

use crate::error::{PfsError, PfsResult};
use crate::faults::FaultPlan;
use crate::file::{FileData, PfsFile};
use crate::server::IoServer;
use crate::stripe::StripeLayout;

/// The striped parallel file system.
///
/// Shared by every rank thread (wrap in `Arc`). All operations take the
/// caller's current virtual time and return the operation's completion
/// time; callers `sync_to` their clock.
#[derive(Debug)]
pub struct Pfs {
    config: MachineConfig,
    layout: StripeLayout,
    servers: Vec<IoServer>,
    /// Metadata service: opens, closes, deletes serialize here.
    meta: IoServer,
    files: RwLock<HashMap<String, Arc<FileData>>>,
    faults: FaultPlan,
    counters: Counters,
}

impl Pfs {
    /// A fresh file system with the given machine parameters.
    pub fn new(config: MachineConfig) -> Arc<Self> {
        Self::with_faults(config, FaultPlan::none())
    }

    /// A fresh file system with fault injection installed.
    pub fn with_faults(config: MachineConfig, faults: FaultPlan) -> Arc<Self> {
        let layout = StripeLayout::new(config.stripe_size as u64, config.io_servers);
        let servers = (0..config.io_servers).map(|_| IoServer::new()).collect();
        Arc::new(Self {
            config,
            layout,
            servers,
            meta: IoServer::new(),
            files: RwLock::new(HashMap::new()),
            faults,
            counters: Counters::new(),
        })
    }

    /// The machine configuration in force.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Shared operation counters (bytes/ops, opens, etc.).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Open `name`, creating it if absent. Charges the open cost at the
    /// metadata service (opens from many ranks serialize, which is the
    /// Level 1 penalty when the open cost is high).
    pub fn open_or_create(&self, name: &str, now: Seconds) -> PfsResult<(PfsFile, Seconds)> {
        if self.faults.open_fails(name) {
            return Err(PfsError::OpenFailed(name.to_string()));
        }
        let data = {
            let mut files = self.files.write();
            Arc::clone(
                files
                    .entry(name.to_string())
                    .or_insert_with(|| FileData::new(name.to_string())),
            )
        };
        let t = self.meta.submit(now, self.config.io.open_cost);
        self.counters.incr("pfs.opens");
        Ok((PfsFile::new(data), t))
    }

    /// Open an existing file; `NotFound` if absent.
    pub fn open(&self, name: &str, now: Seconds) -> PfsResult<(PfsFile, Seconds)> {
        if self.faults.open_fails(name) {
            return Err(PfsError::OpenFailed(name.to_string()));
        }
        let data = self
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PfsError::NotFound(name.to_string()))?;
        let t = self.meta.submit(now, self.config.io.open_cost);
        self.counters.incr("pfs.opens");
        Ok((PfsFile::new(data), t))
    }

    /// Close a handle. Charges the close cost.
    pub fn close(&self, file: &PfsFile, now: Seconds) -> Seconds {
        file.mark_closed();
        self.counters.incr("pfs.closes");
        self.meta.submit(now, self.config.io.close_cost)
    }

    /// Charge the cost of installing a file view (`MPI_File_set_view`).
    /// Client-side work; no metadata contention.
    pub fn view_cost(&self, now: Seconds) -> Seconds {
        self.counters.incr("pfs.views");
        now + self.config.io.view_cost
    }

    /// Charge one metadata-database round trip (SDM stores offsets and
    /// history records in the DB; the *content* lives in `sdm-metadb`,
    /// only the time is charged here).
    pub fn metadata_roundtrip(&self, now: Seconds) -> Seconds {
        self.counters.incr("pfs.metadata_ops");
        self.meta.submit(now, self.config.io.metadata_cost)
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Visible length of `name` (respects fault-plan truncation), or
    /// `NotFound`.
    pub fn file_len(&self, name: &str) -> PfsResult<u64> {
        let files = self.files.read();
        let data = files
            .get(name)
            .ok_or_else(|| PfsError::NotFound(name.to_string()))?;
        let real = data.bytes.read().len() as u64;
        Ok(self.faults.visible_len(name, real))
    }

    /// Remove `name` from the namespace. Existing handles keep their image.
    pub fn delete(&self, name: &str, now: Seconds) -> PfsResult<Seconds> {
        let removed = self.files.write().remove(name);
        if removed.is_none() {
            return Err(PfsError::NotFound(name.to_string()));
        }
        self.counters.incr("pfs.deletes");
        Ok(self.meta.submit(now, self.config.io.close_cost))
    }

    /// All file names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn data_path_completion(&self, offset: u64, len: usize, arrival: Seconds) -> Seconds {
        if len == 0 {
            return arrival;
        }
        let per_server = self.layout.bytes_per_server(offset, len as u64);
        let mut done = arrival;
        for (s, &bytes) in per_server.iter().enumerate() {
            if bytes > 0 {
                let service = self.config.io.service_time(bytes as usize);
                done = done.max(self.servers[s].submit(arrival, service));
            }
        }
        done
    }

    /// Write `data` at `offset`, extending the file as needed. Returns the
    /// completion time.
    pub fn write_at(
        &self,
        file: &PfsFile,
        offset: u64,
        data: &[u8],
        now: Seconds,
    ) -> PfsResult<Seconds> {
        if file.is_closed() {
            return Err(PfsError::Closed(file.name().to_string()));
        }
        {
            let mut bytes = file.data.bytes.write();
            let end = offset as usize + data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[offset as usize..end].copy_from_slice(data);
        }
        self.counters.add("pfs.write_bytes", data.len() as u64);
        self.counters.incr("pfs.write_ops");
        let arrival = now + self.config.io.client_copy(data.len());
        Ok(self.data_path_completion(offset, data.len(), arrival))
    }

    /// Asynchronous write: the data is durable immediately, the servers
    /// are occupied in the background, but the *caller* is only charged
    /// the client-side copy. SDM uses this for history files ("the
    /// partitioned edges are asynchronously written to a history file").
    /// Returns `(caller_time, background_completion_time)`.
    pub fn write_at_async(
        &self,
        file: &PfsFile,
        offset: u64,
        data: &[u8],
        now: Seconds,
    ) -> PfsResult<(Seconds, Seconds)> {
        let done = self.write_at(file, offset, data, now)?;
        let caller = now + self.config.io.client_copy(data.len());
        Ok((caller, done))
    }

    /// Read up to `buf.len()` bytes at `offset`. Returns the byte count
    /// (short at the visible end of file) and the completion time.
    pub fn read_at(
        &self,
        file: &PfsFile,
        offset: u64,
        buf: &mut [u8],
        now: Seconds,
    ) -> PfsResult<(usize, Seconds)> {
        if file.is_closed() {
            return Err(PfsError::Closed(file.name().to_string()));
        }
        let n = {
            let bytes = file.data.bytes.read();
            let visible = self.faults.visible_len(file.name(), bytes.len() as u64);
            if offset >= visible {
                0
            } else {
                let n = ((visible - offset) as usize).min(buf.len());
                buf[..n].copy_from_slice(&bytes[offset as usize..offset as usize + n]);
                n
            }
        };
        if n > 0 && self.faults.corrupts(file.name(), offset) {
            buf[0] = !buf[0];
        }
        self.counters.add("pfs.read_bytes", n as u64);
        self.counters.incr("pfs.read_ops");
        let done = self.data_path_completion(offset, n, now);
        Ok((n, done + self.config.io.client_copy(n)))
    }

    /// Read exactly `buf.len()` bytes or fail with `ShortRead`.
    pub fn read_exact_at(
        &self,
        file: &PfsFile,
        offset: u64,
        buf: &mut [u8],
        now: Seconds,
    ) -> PfsResult<Seconds> {
        let (n, t) = self.read_at(file, offset, buf, now)?;
        if n != buf.len() {
            return Err(PfsError::ShortRead {
                name: file.name().to_string(),
                wanted: buf.len(),
                got: n,
            });
        }
        Ok(t)
    }

    /// Reset all server queues to idle and zero the counters, keeping the
    /// namespace. Used between benchmark repetitions.
    pub fn reset_timing(&self) {
        for s in &self.servers {
            s.reset();
        }
        self.meta.reset();
        self.counters.reset();
    }

    /// Drop every file. The namespace becomes empty.
    pub fn clear(&self) {
        self.files.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Arc<Pfs> {
        Pfs::new(MachineConfig::test_tiny())
    }

    #[test]
    fn write_then_read_round_trips() {
        let fs = fs();
        let (f, t) = fs.open_or_create("a.dat", 0.0).unwrap();
        let t = fs.write_at(&f, 0, b"hello world", t).unwrap();
        let mut buf = [0u8; 11];
        let (n, _) = fs.read_at(&f, 0, &mut buf, t).unwrap();
        assert_eq!(n, 11);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn sparse_write_reads_zeros_in_hole() {
        let fs = fs();
        let (f, t) = fs.open_or_create("s.dat", 0.0).unwrap();
        fs.write_at(&f, 100, b"x", t).unwrap();
        let mut buf = [1u8; 4];
        let (n, _) = fs.read_at(&f, 50, &mut buf, 0.0).unwrap();
        assert_eq!(n, 4);
        assert_eq!(buf, [0, 0, 0, 0]);
        assert_eq!(f.len(), 101);
    }

    #[test]
    fn read_past_eof_is_short() {
        let fs = fs();
        let (f, t) = fs.open_or_create("e.dat", 0.0).unwrap();
        fs.write_at(&f, 0, b"abc", t).unwrap();
        let mut buf = [0u8; 10];
        let (n, _) = fs.read_at(&f, 0, &mut buf, 0.0).unwrap();
        assert_eq!(n, 3);
        let err = fs.read_exact_at(&f, 0, &mut buf, 0.0).unwrap_err();
        assert!(matches!(
            err,
            PfsError::ShortRead {
                wanted: 10,
                got: 3,
                ..
            }
        ));
    }

    #[test]
    fn open_missing_fails_but_create_succeeds() {
        let fs = fs();
        assert!(matches!(fs.open("nope", 0.0), Err(PfsError::NotFound(_))));
        fs.open_or_create("nope", 0.0).unwrap();
        assert!(fs.open("nope", 0.0).is_ok());
        assert!(fs.exists("nope"));
    }

    #[test]
    fn closed_handle_rejected() {
        let fs = fs();
        let (f, t) = fs.open_or_create("c.dat", 0.0).unwrap();
        fs.close(&f, t);
        assert!(matches!(
            fs.write_at(&f, 0, b"x", 0.0),
            Err(PfsError::Closed(_))
        ));
        let mut b = [0u8; 1];
        assert!(matches!(
            fs.read_at(&f, 0, &mut b, 0.0),
            Err(PfsError::Closed(_))
        ));
    }

    #[test]
    fn delete_removes_from_namespace() {
        let fs = fs();
        fs.open_or_create("d.dat", 0.0).unwrap();
        fs.delete("d.dat", 0.0).unwrap();
        assert!(!fs.exists("d.dat"));
        assert!(matches!(
            fs.delete("d.dat", 0.0),
            Err(PfsError::NotFound(_))
        ));
    }

    #[test]
    fn list_is_sorted() {
        let fs = fs();
        for n in ["b", "a", "c"] {
            fs.open_or_create(n, 0.0).unwrap();
        }
        assert_eq!(fs.list(), vec!["a", "b", "c"]);
    }

    #[test]
    fn timing_advances_with_size() {
        let fs = Pfs::new(MachineConfig::origin2000());
        let (f, t) = fs.open_or_create("t.dat", 0.0).unwrap();
        let small = fs.write_at(&f, 0, &vec![0u8; 1024], t).unwrap() - t;
        fs.reset_timing();
        let big = fs.write_at(&f, 0, &vec![0u8; 16 << 20], t).unwrap() - t;
        assert!(
            big > small * 10.0,
            "16MB ({big}s) should cost much more than 1KB ({small}s)"
        );
    }

    #[test]
    fn striping_spreads_load_across_servers() {
        let cfg = MachineConfig::origin2000();
        let fs = Pfs::new(cfg.clone());
        let (f, _) = fs.open_or_create("w.dat", 0.0).unwrap();
        // One large write should finish in roughly bytes/aggregate_bw, not
        // bytes/single_server_bw (plus latency overheads).
        let bytes = 64 << 20;
        let done = fs.write_at(&f, 0, &vec![0u8; bytes], 0.0).unwrap();
        let single_server = bytes as f64 * cfg.io.server_byte_time;
        assert!(
            done < single_server / 2.0,
            "striped write {done}s should beat half the single-server time {single_server}s"
        );
    }

    #[test]
    fn contention_slows_concurrent_writers() {
        let cfg = MachineConfig::origin2000();
        let fs = Pfs::new(cfg);
        let (f, _) = fs.open_or_create("x.dat", 0.0).unwrap();
        let chunk = 8 << 20;
        // Two writers to disjoint halves at t=0: second completion should
        // exceed a single writer's because the stripe sets overlap.
        let t1 = fs.write_at(&f, 0, &vec![0u8; chunk], 0.0).unwrap();
        let t2 = fs
            .write_at(&f, chunk as u64, &vec![1u8; chunk], 0.0)
            .unwrap();
        assert!(
            t2 > t1 * 1.5,
            "queued write t2={t2} should be well after t1={t1}"
        );
    }

    #[test]
    fn open_failure_injection() {
        let fs = Pfs::with_faults(
            MachineConfig::test_tiny(),
            FaultPlan::none().fail_open("h.dat"),
        );
        assert!(matches!(
            fs.open_or_create("h.dat", 0.0),
            Err(PfsError::OpenFailed(_))
        ));
        assert!(fs.open_or_create("ok.dat", 0.0).is_ok());
    }

    #[test]
    fn truncation_injection_shortens_reads() {
        let fs = Pfs::with_faults(
            MachineConfig::test_tiny(),
            FaultPlan::none().truncate("t.dat", 2),
        );
        let (f, t) = fs.open_or_create("t.dat", 0.0).unwrap();
        fs.write_at(&f, 0, b"abcdef", t).unwrap();
        let mut buf = [0u8; 6];
        let (n, _) = fs.read_at(&f, 0, &mut buf, 0.0).unwrap();
        assert_eq!(n, 2);
        assert_eq!(fs.file_len("t.dat").unwrap(), 2);
    }

    #[test]
    fn corruption_injection_flips_first_byte() {
        let fs = Pfs::with_faults(
            MachineConfig::test_tiny(),
            FaultPlan::none().corrupt_first_byte("c.dat"),
        );
        let (f, t) = fs.open_or_create("c.dat", 0.0).unwrap();
        fs.write_at(&f, 0, b"abc", t).unwrap();
        let mut buf = [0u8; 3];
        fs.read_exact_at(&f, 0, &mut buf, 0.0).unwrap();
        assert_eq!(buf[0], !b'a');
        assert_eq!(&buf[1..], b"bc");
    }

    #[test]
    fn async_write_returns_early_to_caller() {
        let fs = Pfs::new(MachineConfig::origin2000());
        let (f, _) = fs.open_or_create("h.dat", 0.0).unwrap();
        let (caller, done) = fs.write_at_async(&f, 0, &vec![0u8; 32 << 20], 0.0).unwrap();
        assert!(
            caller < done,
            "caller time {caller} should precede background completion {done}"
        );
        // Data is still durable.
        let mut b = [9u8; 1];
        let (n, _) = fs.read_at(&f, 0, &mut b, 0.0).unwrap();
        assert_eq!((n, b[0]), (1, 0));
    }

    #[test]
    fn counters_track_traffic() {
        let fs = fs();
        let (f, t) = fs.open_or_create("k.dat", 0.0).unwrap();
        fs.write_at(&f, 0, b"12345", t).unwrap();
        let mut b = [0u8; 5];
        fs.read_at(&f, 0, &mut b, 0.0).unwrap();
        assert_eq!(fs.counters().get("pfs.write_bytes"), 5);
        assert_eq!(fs.counters().get("pfs.read_bytes"), 5);
        assert_eq!(fs.counters().get("pfs.opens"), 1);
    }

    #[test]
    fn serialized_opens_queue_at_metadata_service() {
        let cfg = MachineConfig::high_open_cost();
        let open_cost = cfg.io.open_cost;
        let fs = Pfs::new(cfg);
        let (_, t1) = fs.open_or_create("f1", 0.0).unwrap();
        let (_, t2) = fs.open_or_create("f2", 0.0).unwrap();
        assert!((t1 - open_cost).abs() < 1e-9);
        assert!(
            (t2 - 2.0 * open_cost).abs() < 1e-9,
            "second open must queue: {t2}"
        );
    }
}
