//! I/O servers with FIFO virtual-time queues.

use parking_lot::Mutex;
use sdm_sim::Seconds;

/// One I/O server (a controller+disk group on the Origin2000).
///
/// Requests arriving while the server is busy queue behind the in-flight
/// work: `completion = max(busy_until, arrival) + service`. This is what
/// creates contention when many ranks hit the same stripe set, and the
/// bandwidth collapse the paper observes when per-process buffers shrink.
#[derive(Debug, Default)]
pub struct IoServer {
    busy_until: Mutex<Seconds>,
}

impl IoServer {
    /// A new idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a request arriving at `arrival` requiring `service` seconds;
    /// returns its completion time.
    pub fn submit(&self, arrival: Seconds, service: Seconds) -> Seconds {
        debug_assert!(service >= 0.0);
        let mut busy = self.busy_until.lock();
        let start = busy.max(arrival);
        let done = start + service;
        *busy = done;
        done
    }

    /// Earliest time a new request could start service.
    pub fn busy_until(&self) -> Seconds {
        *self.busy_until.lock()
    }

    /// Reset the queue to idle (bench repetitions).
    pub fn reset(&self) {
        *self.busy_until.lock() = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let s = IoServer::new();
        assert_eq!(s.submit(5.0, 2.0), 7.0);
    }

    #[test]
    fn requests_queue_fifo() {
        let s = IoServer::new();
        assert_eq!(s.submit(0.0, 3.0), 3.0);
        // Arrives at t=1 while busy until 3: starts at 3.
        assert_eq!(s.submit(1.0, 2.0), 5.0);
        // Arrives after the queue drains: starts immediately.
        assert_eq!(s.submit(10.0, 1.0), 11.0);
    }

    #[test]
    fn contention_from_many_clients() {
        let s = IoServer::new();
        // Four clients all arrive at t=0 with 1s of work: total 4s.
        let mut last = 0.0f64;
        for _ in 0..4 {
            last = last.max(s.submit(0.0, 1.0));
        }
        assert_eq!(last, 4.0);
    }

    #[test]
    fn reset_clears_queue() {
        let s = IoServer::new();
        s.submit(0.0, 100.0);
        s.reset();
        assert_eq!(s.submit(0.0, 1.0), 1.0);
    }
}
