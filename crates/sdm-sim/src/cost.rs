//! Linear cost models for the interconnect and the parallel file system.
//!
//! Both models are deliberately simple — latency plus byte time — because
//! the paper's conclusions rest on *relative* costs (one reader vs many,
//! file-open cost vs data volume, per-process buffer size), not on
//! absolute hardware numbers. Parameters are plain public fields so the
//! ablation harnesses can sweep them.

use serde::{Deserialize, Serialize};

use crate::time::Seconds;

/// Cost model for point-to-point message transfers (LogGP-flavoured).
///
/// A message of `n` bytes from A to B:
/// * occupies the sender for `overhead + n * inject_byte_time`,
/// * arrives at the receiver `latency + n * byte_time` after it departs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way wire latency per message (the LogGP `L`), seconds.
    pub latency: Seconds,
    /// Sender/receiver CPU overhead per message (the LogGP `o`), seconds.
    pub overhead: Seconds,
    /// Seconds per byte across the wire (inverse bandwidth, LogGP `G`).
    pub byte_time: Seconds,
    /// Seconds per byte to inject into the NIC from the sender
    /// (models memory-copy cost; usually `<= byte_time`).
    pub inject_byte_time: Seconds,
}

impl NetworkModel {
    /// Time the sender is busy transmitting `bytes`.
    #[inline]
    pub fn send_busy(&self, bytes: usize) -> Seconds {
        self.overhead + bytes as Seconds * self.inject_byte_time
    }

    /// Time from departure until the last byte is available at the receiver.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> Seconds {
        self.latency + bytes as Seconds * self.byte_time
    }

    /// Receiver CPU overhead to complete a matched receive.
    #[inline]
    pub fn recv_overhead(&self) -> Seconds {
        self.overhead
    }

    fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("latency", self.latency),
            ("overhead", self.overhead),
            ("byte_time", self.byte_time),
            ("inject_byte_time", self.inject_byte_time),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "NetworkModel.{name} must be finite and >= 0, got {v}"
                ));
            }
        }
        Ok(())
    }
}

/// Cost model for the striped parallel file system.
///
/// Servers model controller+disk pairs. Requests to a server queue behind
/// each other (`busy_until` in the PFS crate); this model prices a single
/// request once it reaches the head of the queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoModel {
    /// Cost of a file open (metadata round trip + allocation), seconds.
    pub open_cost: Seconds,
    /// Cost of a file close, seconds.
    pub close_cost: Seconds,
    /// Cost of installing a file view (MPI_File_set_view), seconds.
    pub view_cost: Seconds,
    /// Fixed per-request latency at a server (seek + controller), seconds.
    pub request_latency: Seconds,
    /// Seconds per byte at one server (inverse per-server bandwidth).
    pub server_byte_time: Seconds,
    /// Client-side seconds per byte for memory copies through I/O buffers.
    pub client_byte_time: Seconds,
    /// Cost of a metadata-database round trip (the paper stores offsets
    /// and history metadata in MySQL), seconds.
    pub metadata_cost: Seconds,
}

impl IoModel {
    /// Service time for a contiguous request of `bytes` at one server,
    /// excluding queueing.
    #[inline]
    pub fn service_time(&self, bytes: usize) -> Seconds {
        self.request_latency + bytes as Seconds * self.server_byte_time
    }

    /// Client-side copy cost for staging `bytes` through a buffer.
    #[inline]
    pub fn client_copy(&self, bytes: usize) -> Seconds {
        bytes as Seconds * self.client_byte_time
    }

    fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("open_cost", self.open_cost),
            ("close_cost", self.close_cost),
            ("view_cost", self.view_cost),
            ("request_latency", self.request_latency),
            ("server_byte_time", self.server_byte_time),
            ("client_byte_time", self.client_byte_time),
            ("metadata_cost", self.metadata_cost),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("IoModel.{name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }
}

/// Validate a pair of models, returning a description of the first
/// offending field. Used by `MachineConfig` constructors.
pub fn validate(net: &NetworkModel, io: &IoModel) -> Result<(), String> {
    net.validate()?;
    io.validate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel {
            latency: 10e-6,
            overhead: 1e-6,
            byte_time: 1.0 / 300e6,
            inject_byte_time: 1.0 / 600e6,
        }
    }

    fn io() -> IoModel {
        IoModel {
            open_cost: 1e-3,
            close_cost: 0.5e-3,
            view_cost: 0.2e-3,
            request_latency: 5e-3,
            server_byte_time: 1.0 / 30e6,
            client_byte_time: 1.0 / 400e6,
            metadata_cost: 2e-3,
        }
    }

    #[test]
    fn wire_time_scales_linearly() {
        let m = net();
        let t1 = m.wire_time(1_000_000);
        let t2 = m.wire_time(2_000_000);
        assert!(t2 > t1);
        // subtracting latency, should be exactly 2x
        assert!(((t2 - m.latency) / (t1 - m.latency) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_still_costs_latency() {
        let m = net();
        assert!(m.wire_time(0) >= m.latency);
        assert!(m.send_busy(0) >= m.overhead);
    }

    #[test]
    fn service_time_includes_seek() {
        let m = io();
        assert!(m.service_time(0) >= m.request_latency);
        let big = m.service_time(30_000_000);
        assert!(
            big > 1.0,
            "30MB at 30MB/s should take about a second, got {big}"
        );
    }

    #[test]
    fn validation_rejects_negative() {
        let mut m = io();
        m.open_cost = -1.0;
        assert!(validate(&net(), &m).is_err());
        let mut n = net();
        n.latency = f64::INFINITY;
        assert!(validate(&n, &io()).is_err());
    }

    #[test]
    fn validation_accepts_reasonable() {
        assert!(validate(&net(), &io()).is_ok());
    }
}
