//! Small deterministic PRNGs.
//!
//! Workload generators and the partitioner need reproducible randomness
//! that is cheap to seed per rank without threading a central generator
//! through every substrate. SplitMix64 is the standard tiny generator for
//! this (also used to seed larger generators).

/// SplitMix64: 64-bit state, passes BigCrush, one multiply-shift per draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Distinct seeds give independent-looking streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive a child generator (e.g. one per rank) whose stream is
    /// decorrelated from the parent's.
    pub fn child(&mut self, salt: u64) -> Self {
        Self::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. Uses Lemire's multiply-shift reduction;
    /// the modulo bias is negligible for the bounds used here.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues mod 8 should appear");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move something"
        );
    }

    #[test]
    fn children_are_decorrelated() {
        let mut parent = SplitMix64::new(11);
        let mut c1 = parent.child(0);
        let mut c2 = parent.child(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
