//! Machine presets bundling network + I/O cost models.

use serde::{Deserialize, Serialize};

use crate::cost::{validate, IoModel, NetworkModel};

/// A complete simulated-machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable preset name (shows up in bench reports).
    pub name: String,
    /// Interconnect model.
    pub network: NetworkModel,
    /// File-system request model.
    pub io: IoModel,
    /// Number of I/O servers (controller+disk groups) in the PFS.
    pub io_servers: usize,
    /// Stripe unit in bytes.
    pub stripe_size: usize,
}

impl MachineConfig {
    /// Build a validated config; panics on non-finite/negative parameters
    /// or a degenerate topology. Presets use this internally.
    pub fn new(
        name: impl Into<String>,
        network: NetworkModel,
        io: IoModel,
        io_servers: usize,
        stripe_size: usize,
    ) -> Self {
        validate(&network, &io).unwrap_or_else(|e| panic!("invalid MachineConfig: {e}"));
        assert!(io_servers > 0, "need at least one I/O server");
        assert!(stripe_size > 0, "stripe size must be positive");
        Self {
            name: name.into(),
            network,
            io,
            io_servers,
            stripe_size,
        }
    }

    /// Approximation of the paper's platform: SGI Origin2000 at Argonne,
    /// 10 Fibre Channel controllers over 110 disks running XFS.
    ///
    /// Parameters are chosen to match the paper's *observed* aggregate
    /// figures, not vendor datasheets: aggregate read/write bandwidth in
    /// the 100-150 MB/s range across 10 servers (Figure 6), low file-open
    /// and file-view costs (the paper's explanation for Levels 1-3
    /// performing similarly), and a fast NUMA interconnect.
    pub fn origin2000() -> Self {
        Self::new(
            "origin2000",
            NetworkModel {
                latency: 5e-6,
                overhead: 1e-6,
                byte_time: 1.0 / 200e6,        // ~200 MB/s per link
                inject_byte_time: 1.0 / 400e6, // fast local copy
            },
            IoModel {
                open_cost: 0.8e-3, // "the file-open cost is small"
                close_cost: 0.4e-3,
                view_cost: 0.3e-3,
                // Per-request turnaround at a controller group. XFS
                // buffered I/O with readahead on 11-disk FC groups makes
                // large sequential requests cheap; a full random seek
                // would be ~4 ms, but the collective-I/O windows the
                // paper's workloads issue are mostly sequential.
                request_latency: 0.7e-3,
                server_byte_time: 1.0 / 16e6, // ~16 MB/s per controller group
                client_byte_time: 1.0 / 300e6,
                metadata_cost: 1.5e-3, // MySQL round trip on same machine
            },
            10,
            65536,
        )
    }

    /// Variant with expensive open/view operations. Used by the A5
    /// ablation to show when the Level 1/2/3 distinction matters — the
    /// paper: "if a file system has high file-open and file-close costs
    /// ... SDM can generate a very small number of files".
    pub fn high_open_cost() -> Self {
        let mut c = Self::origin2000();
        c.name = "high-open-cost".into();
        c.io.open_cost = 0.5;
        c.io.close_cost = 0.25;
        c.io.view_cost = 0.1;
        c
    }

    /// Tiny, fast config for unit tests: negligible latencies so tests
    /// exercise data paths without accumulating meaningful virtual time.
    pub fn test_tiny() -> Self {
        Self::new(
            "test-tiny",
            NetworkModel {
                latency: 1e-9,
                overhead: 1e-9,
                byte_time: 1e-12,
                inject_byte_time: 1e-12,
            },
            IoModel {
                open_cost: 1e-9,
                close_cost: 1e-9,
                view_cost: 1e-9,
                request_latency: 1e-9,
                server_byte_time: 1e-12,
                client_byte_time: 1e-12,
                metadata_cost: 1e-9,
            },
            4,
            4096,
        )
    }

    /// Per-server bandwidth in bytes/second.
    pub fn server_bandwidth(&self) -> f64 {
        1.0 / self.io.server_byte_time
    }

    /// Peak aggregate PFS bandwidth in bytes/second (all servers busy).
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.server_bandwidth() * self.io_servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin2000_matches_paper_scale() {
        let c = MachineConfig::origin2000();
        let agg = c.aggregate_bandwidth() / 1e6;
        // Figure 6 reports 100-150 MB/s aggregate.
        assert!(
            (100.0..=250.0).contains(&agg),
            "aggregate {agg} MB/s out of paper range"
        );
        assert_eq!(c.io_servers, 10, "paper: 10 Fibre Channel controllers");
        assert!(c.io.open_cost < 10e-3, "paper: low open cost on XFS");
    }

    #[test]
    fn high_open_cost_is_higher() {
        assert!(
            MachineConfig::high_open_cost().io.open_cost
                > MachineConfig::origin2000().io.open_cost * 100.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one I/O server")]
    fn zero_servers_rejected() {
        let c = MachineConfig::origin2000();
        MachineConfig::new("bad", c.network, c.io, 0, 65536);
    }

    #[test]
    #[should_panic(expected = "stripe size")]
    fn zero_stripe_rejected() {
        let c = MachineConfig::origin2000();
        MachineConfig::new("bad", c.network, c.io, 4, 0);
    }

    #[test]
    fn serde_round_trip() {
        let c = MachineConfig::origin2000();
        let s = serde_json::to_string(&c).unwrap();
        let back: MachineConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
