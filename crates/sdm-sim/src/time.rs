//! Per-rank virtual clocks.
//!
//! Each simulated process (rank) owns a [`VClock`]. Operations that cost
//! time — computation, message transfers, file-system requests — advance
//! the clock via the cost models in [`crate::cost`]. Synchronizing
//! operations (barriers, collective completions, message receives) move a
//! clock *forward* to an externally determined instant but never backward.

use serde::{Deserialize, Serialize};

/// Virtual time in seconds since the start of the simulated run.
pub type Seconds = f64;

/// A monotone virtual clock owned by a single simulated rank.
///
/// The clock is deliberately not shared: cross-rank time relationships are
/// established only through explicit synchronization (message timestamps,
/// barrier maxima, server queues), mirroring how distributed wall clocks
/// interact on a real machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VClock {
    now: Seconds,
}

impl VClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// A clock starting at the given instant.
    pub fn starting_at(t: Seconds) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "clock must start at finite t >= 0"
        );
        Self { now: t }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advance by a non-negative duration and return the new time.
    #[inline]
    pub fn advance(&mut self, dt: Seconds) -> Seconds {
        debug_assert!(
            dt.is_finite() && dt >= 0.0,
            "advance must be finite and >= 0, got {dt}"
        );
        self.now += dt.max(0.0);
        self.now
    }

    /// Move forward to `t` if `t` is later than the current time
    /// (synchronization point). Returns the new time.
    #[inline]
    pub fn sync_to(&mut self, t: Seconds) -> Seconds {
        if t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Reset to zero. Used between repetitions in benchmarks.
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

/// A span of virtual time attributed to a named phase, as reported by the
/// figure harnesses (e.g. the paper's `index distri.` vs `import` bars).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase label, e.g. `"import"` or `"index-distribution"`.
    pub phase: String,
    /// Start of the span.
    pub start: Seconds,
    /// End of the span (`end >= start`).
    pub end: Seconds,
}

impl PhaseSpan {
    /// Duration of the span.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// Stopwatch over a [`VClock`] for attributing virtual time to phases.
#[derive(Debug)]
pub struct PhaseTimer {
    spans: Vec<PhaseSpan>,
    open: Option<(String, Seconds)>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// An empty timer.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            open: None,
        }
    }

    /// Begin a phase at the clock's current time, ending any open phase.
    pub fn begin(&mut self, clock: &VClock, phase: impl Into<String>) {
        self.end(clock);
        self.open = Some((phase.into(), clock.now()));
    }

    /// End the open phase (if any) at the clock's current time.
    pub fn end(&mut self, clock: &VClock) {
        if let Some((phase, start)) = self.open.take() {
            self.spans.push(PhaseSpan {
                phase,
                start,
                end: clock.now(),
            });
        }
    }

    /// All completed spans in order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Total duration attributed to a phase label across all spans.
    pub fn total(&self, phase: &str) -> Seconds {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(PhaseSpan::duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(VClock::new().now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VClock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn zero_advance_is_identity() {
        let mut c = VClock::starting_at(2.0);
        c.advance(0.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let mut c = VClock::starting_at(5.0);
        c.sync_to(3.0);
        assert_eq!(c.now(), 5.0);
        c.sync_to(7.0);
        assert_eq!(c.now(), 7.0);
    }

    #[test]
    fn starting_at_rejects_nan() {
        assert!(std::panic::catch_unwind(|| VClock::starting_at(f64::NAN)).is_err());
    }

    #[test]
    fn phase_timer_attributes_time() {
        let mut c = VClock::new();
        let mut t = PhaseTimer::new();
        t.begin(&c, "import");
        c.advance(2.0);
        t.begin(&c, "index-distribution"); // implicitly ends "import"
        c.advance(3.0);
        t.end(&c);
        assert!((t.total("import") - 2.0).abs() < 1e-12);
        assert!((t.total("index-distribution") - 3.0).abs() < 1e-12);
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn phase_timer_end_without_begin_is_noop() {
        let c = VClock::new();
        let mut t = PhaseTimer::new();
        t.end(&c);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn phase_timer_same_label_accumulates() {
        let mut c = VClock::new();
        let mut t = PhaseTimer::new();
        for _ in 0..3 {
            t.begin(&c, "io");
            c.advance(1.0);
            t.end(&c);
        }
        assert!((t.total("io") - 3.0).abs() < 1e-12);
    }
}
