//! Optional event tracing.
//!
//! The figure harnesses attribute virtual time to phases per rank; tests
//! use traces to assert ordering properties (e.g. the history file is
//! written after the distribution completes).

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::time::Seconds;

/// Category of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Message send posted.
    Send,
    /// Message receive completed.
    Recv,
    /// Collective operation completed.
    Collective,
    /// File-system operation completed.
    Io,
    /// Metadata-database operation completed.
    Metadata,
    /// Application-defined marker.
    Marker,
}

/// One traced event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time at which the event completed.
    pub t: Seconds,
    /// Rank that recorded it.
    pub rank: usize,
    /// Category.
    pub kind: EventKind,
    /// Free-form label, e.g. `"write_all:result.p"`.
    pub label: String,
}

/// A shared, append-only event trace. Cloning shares the buffer.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Arc<Mutex<Vec<Event>>>,
    enabled: bool,
}

impl Trace {
    /// An enabled trace.
    pub fn enabled() -> Self {
        Self {
            events: Arc::default(),
            enabled: true,
        }
    }

    /// A disabled trace: `record` is a no-op. This is the default, so the
    /// hot paths pay only a branch.
    pub fn disabled() -> Self {
        Self {
            events: Arc::default(),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, t: Seconds, rank: usize, kind: EventKind, label: impl Into<String>) {
        if self.enabled {
            self.events.lock().push(Event {
                t,
                rank,
                kind,
                label: label.into(),
            });
        }
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Events matching a predicate.
    pub fn filter(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }

    /// Clear all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.record(1.0, 0, EventKind::Io, "open");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let t = Trace::enabled();
        t.record(1.0, 0, EventKind::Send, "a");
        t.record(2.0, 1, EventKind::Recv, "b");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].label, "a");
        assert_eq!(evs[1].rank, 1);
    }

    #[test]
    fn clones_share_buffer() {
        let t = Trace::enabled();
        let t2 = t.clone();
        t2.record(0.5, 3, EventKind::Marker, "x");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn filter_selects() {
        let t = Trace::enabled();
        t.record(1.0, 0, EventKind::Io, "open");
        t.record(2.0, 0, EventKind::Send, "msg");
        let ios = t.filter(|e| e.kind == EventKind::Io);
        assert_eq!(ios.len(), 1);
        assert_eq!(ios[0].label, "open");
    }

    #[test]
    fn clear_empties() {
        let t = Trace::enabled();
        t.record(1.0, 0, EventKind::Marker, "m");
        t.clear();
        assert!(t.events().is_empty());
    }
}
