//! Virtual-time simulation foundation for the SDM reproduction.
//!
//! The original SDM paper ran on a 128-processor SGI Origin2000 with XFS
//! over 10 Fibre Channel controllers. This crate provides the machinery
//! that lets the rest of the workspace reproduce the *shape* of those
//! results on a single machine:
//!
//! * [`VClock`] — a per-rank virtual clock. Every simulated rank carries
//!   one; message passing and file I/O advance it according to the cost
//!   models instead of wall time.
//! * [`NetworkModel`] / [`IoModel`] — linear (LogGP-flavoured) cost models
//!   for interconnect transfers and parallel-file-system requests.
//! * [`MachineConfig`] — bundles of the two, with presets approximating
//!   the paper's Origin2000 and stress variants (e.g. high file-open cost)
//!   used by the ablation benchmarks.
//! * [`stats`] — lightweight counters shared across rank threads.
//! * [`rng`] — small deterministic PRNGs so workloads are reproducible
//!   without threading `rand` state through every substrate.
//! * [`trace`] — an optional event trace used by tests and the figure
//!   harnesses to attribute virtual time to phases.
//!
//! Data movement in the workspace is always real (bytes are copied and can
//! be read back and verified); only *time* is virtual.

pub mod config;
pub mod cost;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use config::MachineConfig;
pub use cost::{IoModel, NetworkModel};
pub use time::{Seconds, VClock};
