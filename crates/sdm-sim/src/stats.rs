//! Shared counters and simple summaries.
//!
//! Rank threads increment counters concurrently (bytes written, messages
//! sent, history hits...); harnesses snapshot them to build report rows.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A registry of named monotonically increasing counters, shareable across
/// rank threads.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    inner: Arc<RwLock<BTreeMap<String, Arc<AtomicU64>>>>,
}

impl Counters {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn handle(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.inner.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.inner.write();
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, n: u64) {
        self.handle(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Increment counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .read()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Reset every counter to zero (bench repetitions).
    pub fn reset(&self) {
        for c in self.inner.read().values() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Summary statistics over a sample of f64s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum (0 if empty).
    pub min: f64,
    /// Maximum (0 if empty).
    pub max: f64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Sample standard deviation (0 if n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary of `xs`.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                n: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                stddev: 0.0,
            };
        }
        let n = xs.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        let mean = sum / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        };
        Self {
            n,
            min,
            max,
            mean,
            stddev: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.add("bytes", 10);
        c.add("bytes", 5);
        c.incr("msgs");
        assert_eq!(c.get("bytes"), 15);
        assert_eq!(c.get("msgs"), 1);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Counters::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr("hits");
                    }
                });
            }
        });
        assert_eq!(c.get("hits"), 8000);
    }

    #[test]
    fn snapshot_and_reset() {
        let c = Counters::new();
        c.add("a", 1);
        c.add("b", 2);
        let snap = c.snapshot();
        assert_eq!(snap["a"], 1);
        assert_eq!(snap["b"], 2);
        c.reset();
        assert_eq!(c.get("a"), 0);
        assert_eq!(c.get("b"), 0);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample_no_stddev() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 7.0);
    }
}
