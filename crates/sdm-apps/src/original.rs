//! The "original application" baselines.
//!
//! Figure 5: "The original version of the application — without using
//! SDM — performs all the I/O operations by a single process (process 0),
//! which then broadcasts data to other processes" and "reads the edges in
//! two steps: one step to determine the amount of memory to store the
//! partitioned edges and the other step to actually read the edges."
//!
//! Figure 7: "In the original application, the write operation is
//! performed sequentially. After seeking the starting position in a
//! file, processes write their local portion of data one by one."

use std::sync::Arc;

use sdm_core::{PartitionedIndex, SdmConfig, SdmResult};
use sdm_mpi::envelope::tags;
use sdm_mpi::io::MpiFile;
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::report::PhaseReport;
use crate::workload::Fun3dWorkload;

/// FUN3D import + index distribution the original way. Returns the phase
/// report and the rank's partition (for equivalence checks against SDM).
pub fn fun3d_original_import(
    comm: &mut Comm,
    pfs: &Arc<Pfs>,
    w: &Fun3dWorkload,
) -> SdmResult<(PhaseReport, PartitionedIndex)> {
    let cfg = SdmConfig::default();
    let total_edges = w.mesh.num_edges() as u64;
    let total_nodes = w.mesh.num_nodes() as u64;
    let mut report = PhaseReport::new();
    comm.barrier();

    // ---- Import: rank 0 reads everything, then broadcasts ----
    let t0 = comm.now();
    let (e1, e2) = if comm.rank() == 0 {
        let f = MpiFile::open_independent(comm, pfs, &w.mesh_file, false)?;
        let mut e1 = vec![0i32; total_edges as usize];
        let mut e2 = vec![0i32; total_edges as usize];
        f.read_at(comm, w.layout.edge1_offset(), &mut e1)?;
        f.read_at(comm, w.layout.edge2_offset(), &mut e2)?;
        f.close_independent(comm);
        (e1, e2)
    } else {
        (vec![], vec![])
    };
    let e1 = comm.bcast(0, &e1)?;
    let e2 = comm.bcast(0, &e2)?;

    // The eight data arrays, also rank-0 read + broadcast.
    let mut edge_arrays: Vec<Vec<f64>> = Vec::new();
    let mut node_arrays: Vec<Vec<f64>> = Vec::new();
    {
        let f = if comm.rank() == 0 {
            Some(MpiFile::open_independent(comm, pfs, &w.mesh_file, false)?)
        } else {
            None
        };
        for k in 0..w.layout.n_edge_arrays {
            let buf = if let Some(f) = &f {
                let mut b = vec![0.0f64; total_edges as usize];
                f.read_at(comm, w.layout.edge_array_offset(k), &mut b)?;
                b
            } else {
                vec![]
            };
            edge_arrays.push(comm.bcast(0, &buf)?);
        }
        for k in 0..w.layout.n_node_arrays {
            let buf = if let Some(f) = &f {
                let mut b = vec![0.0f64; total_nodes as usize];
                f.read_at(comm, w.layout.node_array_offset(k), &mut b)?;
                b
            } else {
                vec![]
            };
            node_arrays.push(comm.bcast(0, &buf)?);
        }
        if let Some(f) = f {
            f.close_independent(comm);
        }
    }
    report.add("import", comm.now() - t0);
    report.add_bytes("import", w.import_bytes());

    // ---- Index distribution: two-pass scan over the full edge list ----
    let t0 = comm.now();
    // Pass 1: count ("determine the amount of memory").
    let me = comm.rank() as u32;
    let mut count = 0usize;
    for k in 0..e1.len() {
        let (a, b) = (e1[k] as usize, e2[k] as usize);
        if w.partitioning_vector[a] == me || w.partitioning_vector[b] == me {
            count += 1;
        }
    }
    comm.compute(e1.len() as f64 * cfg.per_edge_scan_cost);
    // Pass 2: store into the exactly-sized allocation.
    let mut edge_ids = Vec::with_capacity(count);
    let mut edge_nodes = Vec::with_capacity(count);
    for k in 0..e1.len() {
        let (a, b) = (e1[k] as usize, e2[k] as usize);
        if w.partitioning_vector[a] == me || w.partitioning_vector[b] == me {
            edge_ids.push(k as u64);
            edge_nodes.push((e1[k] as u32, e2[k] as u32));
        }
    }
    comm.compute(e1.len() as f64 * cfg.per_edge_scan_cost);

    let owned_nodes: Vec<u32> = w
        .partitioning_vector
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p == me)
        .map(|(n, _)| n as u32)
        .collect();
    comm.compute(w.partitioning_vector.len() as f64 * cfg.per_edge_scan_cost * 0.25);
    let mut ghost: Vec<u32> = edge_nodes
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .filter(|&n| w.partitioning_vector[n as usize] != me)
        .collect();
    ghost.sort_unstable();
    ghost.dedup();
    report.add("index-distribution", comm.now() - t0);

    comm.barrier();
    let pi = PartitionedIndex {
        edge_ids,
        edge_nodes,
        owned_nodes,
        ghost_nodes: ghost,
    };
    Ok((report, pi))
}

/// RT-style sequential write: ranks write their blocks one by one,
/// serialized by a ring token. `node_vals`/`tri_vals` are this rank's
/// portions; offsets are element offsets into the two global datasets.
#[allow(clippy::too_many_arguments)]
pub fn serialized_write(
    comm: &mut Comm,
    pfs: &Arc<Pfs>,
    file_name: &str,
    node_vals: &[f64],
    node_elem_offset: u64,
    tri_vals: &[f64],
    tri_elem_offset: u64,
    tri_base_bytes: u64,
) -> SdmResult<f64> {
    let t0 = comm.now();
    // Only rank 0 creates; others wait for the token before opening, so
    // opens serialize too.
    if comm.rank() > 0 {
        let _token: Vec<u8> = comm.recv_bytes(comm.rank() - 1, tags::SDM_RING)?;
    }
    let f = MpiFile::open_independent(comm, pfs, file_name, comm.rank() == 0)?;
    f.write_at(comm, node_elem_offset * 8, node_vals)?;
    f.write_at(comm, tri_base_bytes + tri_elem_offset * 8, tri_vals)?;
    f.close_independent(comm);
    if comm.rank() + 1 < comm.size() {
        comm.send_bytes(comm.rank() + 1, tags::SDM_RING, &[])?;
    }
    comm.barrier();
    Ok(comm.now() - t0)
}

/// Token-serialized write of scattered node runs plus one contiguous
/// triangle block — the paper's original RT path with a partitioned
/// node set: each run is its own seek+write, and ranks take turns.
/// Returns this rank's elapsed virtual time across the whole
/// (serialized) operation.
#[allow(clippy::too_many_arguments)]
pub fn serialized_write_runs(
    comm: &mut Comm,
    pfs: &Arc<Pfs>,
    file_name: &str,
    node_runs: &[(u64, Vec<f64>)],
    tri_vals: &[f64],
    tri_elem_offset: u64,
    tri_base_bytes: u64,
) -> SdmResult<f64> {
    let t0 = comm.now();
    if comm.rank() > 0 {
        let _token: Vec<u8> = comm.recv_bytes(comm.rank() - 1, tags::SDM_RING)?;
    }
    let f = MpiFile::open_independent(comm, pfs, file_name, comm.rank() == 0)?;
    for (start_elem, vals) in node_runs {
        f.write_at(comm, start_elem * 8, vals)?;
    }
    f.write_at(comm, tri_base_bytes + tri_elem_offset * 8, tri_vals)?;
    f.close_independent(comm);
    if comm.rank() + 1 < comm.size() {
        comm.send_bytes(comm.rank() + 1, tags::SDM_RING, &[])?;
    }
    comm.barrier();
    Ok(comm.now() - t0)
}

/// Equivalence check helper: the original import must produce exactly the
/// partition SDM's ring produces.
pub fn partitions_agree(a: &PartitionedIndex, b: &PartitionedIndex) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_core::Sdm;
    use sdm_mpi::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn original_matches_reference_partition() {
        let n = 3;
        let w = Fun3dWorkload::new(150, n, 7);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        w.stage(&pfs);
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, w) = (Arc::clone(&pfs), w.clone());
            move |c| fun3d_original_import(c, &pfs, &w).unwrap().1
        });
        let (e1, e2) = w.mesh.indirection_arrays();
        for (rank, pi) in out.iter().enumerate() {
            let want =
                Sdm::partition_index_reference(&w.partitioning_vector, &e1, &e2, rank as u32);
            assert!(partitions_agree(pi, &want), "rank {rank} diverged");
        }
    }

    #[test]
    fn original_import_is_slower_than_parallel_at_scale() {
        // Virtual-time sanity: rank0+bcast import must cost more than
        // SDM's parallel import on the realistic machine model. The mesh
        // must be large enough that byte transfer dominates per-request
        // latency — below that crossover the original's few large
        // contiguous reads genuinely win (Figure 5 is measured at 807 MB,
        // far above it).
        let n = 8;
        let w = Fun3dWorkload::new(60_000, n, 3);
        let cfg = MachineConfig::origin2000();
        let pfs = Pfs::new(cfg.clone());
        w.stage(&pfs);
        let orig = World::run(n, cfg.clone(), {
            let (pfs, w) = (Arc::clone(&pfs), w.clone());
            move |c| fun3d_original_import(c, &pfs, &w).unwrap().0.get("import")
        })
        .into_iter()
        .fold(0.0f64, f64::max);

        let pfs2 = Pfs::new(cfg.clone());
        let store = sdm_core::CachedStore::shared(&Arc::new(sdm_metadb::Database::new()));
        w.stage(&pfs2);
        let sdm = World::run(n, cfg, {
            let (pfs2, store, w) = (Arc::clone(&pfs2), Arc::clone(&store), w.clone());
            move |c| {
                crate::fun3d::run_sdm(c, &pfs2, &store, &w, &crate::fun3d::Fun3dOptions::default())
                    .unwrap()
                    .report
                    .get("import")
            }
        })
        .into_iter()
        .fold(0.0f64, f64::max);
        assert!(
            orig > sdm * 1.5,
            "original import ({orig}s) should clearly exceed SDM import ({sdm}s)"
        );
    }

    #[test]
    fn serialized_write_round_trips() {
        let n = 3;
        let pfs = Pfs::new(MachineConfig::test_tiny());
        World::run(n, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let vals = vec![c.rank() as f64; 4];
                let tri = vec![100.0 + c.rank() as f64; 2];
                serialized_write(
                    c,
                    &pfs,
                    "rt0.dat",
                    &vals,
                    c.rank() as u64 * 4,
                    &tri,
                    c.rank() as u64 * 2,
                    3 * 4 * 8,
                )
                .unwrap();
            }
        });
        let (f, _) = pfs.open("rt0.dat", 0.0).unwrap();
        let mut node = vec![0.0f64; 12];
        pfs.read_exact_at(&f, 0, sdm_mpi::pod::as_bytes_mut(&mut node), 0.0)
            .unwrap();
        assert_eq!(node[0], 0.0);
        assert_eq!(node[4], 1.0);
        assert_eq!(node[8], 2.0);
        let mut tri = vec![0.0f64; 6];
        pfs.read_exact_at(&f, 96, sdm_mpi::pod::as_bytes_mut(&mut tri), 0.0)
            .unwrap();
        assert_eq!(tri[0], 100.0);
        assert_eq!(tri[2], 101.0);
        assert_eq!(tri[4], 102.0);
    }
}
