//! Application templates from the paper's evaluation.
//!
//! * [`workload`] — workload descriptions scaled from the paper's sizes
//!   (FUN3D: 18M edges / 2.2M nodes / 807 MB import; RT: 36 MB node +
//!   74 MB triangle datasets per step, 5 steps).
//! * [`fun3d`] — the tetrahedral vertex-centered unstructured-grid
//!   template (W. K. Anderson's FUN3D): import, index distribution,
//!   edge-sweep compute, checkpoint writes through SDM.
//! * [`rt`] — the Rayleigh-Taylor instability template: node + triangle
//!   datasets written at each time step.
//! * [`original`] — the "original application" baselines the paper
//!   compares against: rank-0 read + broadcast import with a two-pass
//!   count-then-read edge scan, and token-serialized writes.

pub mod fun3d;
pub mod original;
pub mod report;
pub mod rt;
pub mod workload;

pub use report::PhaseReport;
pub use workload::{Fun3dWorkload, RtWorkload};
