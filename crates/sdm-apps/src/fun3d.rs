//! The FUN3D template: import, index distribution, edge sweep,
//! checkpoint writes — the paper's first benchmark (Figures 5 and 6).

use std::sync::Arc;

use sdm_core::dataset::ImportDesc;
use sdm_core::{DatasetHandle, OrgLevel, PartitionedIndex, Sdm, SdmConfig, SdmResult, SharedStore};
use sdm_mesh::Uns3dLayout;
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::report::PhaseReport;
use crate::workload::Fun3dWorkload;

/// Options for one FUN3D run.
#[derive(Debug, Clone)]
pub struct Fun3dOptions {
    /// File organization for the result datasets.
    pub org: OrgLevel,
    /// Consult the history tables before distributing indices.
    pub use_history: bool,
    /// Register the distribution in a history file afterwards
    /// (`SDM_index_registry` — optional per the paper).
    pub register_history: bool,
}

impl Default for Fun3dOptions {
    fn default() -> Self {
        Self {
            org: OrgLevel::Level2,
            use_history: false,
            register_history: false,
        }
    }
}

/// Outcome of a FUN3D run.
#[derive(Debug)]
pub struct Fun3dResult {
    /// Phase timings: `"import"`, `"index-distribution"`, `"write"`,
    /// `"read"`, `"compute"`.
    pub report: PhaseReport,
    /// Whether the index distribution came from a history file.
    pub history_hit: bool,
    /// Local partition stats (edges, owned nodes, ghosts).
    pub partition: (usize, usize, usize),
    /// Checksum over this rank's final `p` values (for cross-run
    /// equality checks).
    pub p_checksum: f64,
}

/// Names of the five result datasets (paper: four ~21 MB sets and one
/// ~105 MB set per checkpoint).
pub const RESULT_DATASETS: [&str; 4] = ["p", "q", "r", "s"];
/// The large fifth dataset (5× the node count).
pub const BIG_DATASET: &str = "res";

fn local_index_of(sorted: &[u32], node: u32) -> usize {
    sorted.binary_search(&node).expect("node must be local")
}

/// The edge-sweep kernel: for every owned node, accumulate flux
/// contributions from all incident edges (ghost edges are local by
/// construction, so owned-node sums are complete without communication).
pub fn edge_sweep(
    pi: &PartitionedIndex,
    all_nodes: &[u32],
    x: &[f64],
    y: &[f64],
    step: usize,
) -> Vec<f64> {
    let mut out = vec![0.0f64; pi.owned_nodes.len()];
    let scale = (step + 1) as f64;
    for (k, &(a, b)) in pi.edge_nodes.iter().enumerate() {
        let xa = x[k] * scale;
        let ya = y[local_index_of(all_nodes, a)];
        let yb = y[local_index_of(all_nodes, b)];
        let flux = xa * (ya + yb);
        if let Ok(i) = pi.owned_nodes.binary_search(&a) {
            out[i] += flux;
        }
        if let Ok(i) = pi.owned_nodes.binary_search(&b) {
            out[i] -= flux;
        }
    }
    out
}

/// Sequential reference of [`edge_sweep`] over the whole mesh (tests and
/// verification): `out[n]` for every global node.
pub fn edge_sweep_reference(e1: &[i32], e2: &[i32], total_nodes: usize, step: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; total_nodes];
    let scale = (step + 1) as f64;
    for k in 0..e1.len() {
        let (a, b) = (e1[k] as usize, e2[k] as usize);
        let x = Uns3dLayout::edge_value(0, k as u64) * scale;
        let flux =
            x * (Uns3dLayout::node_value(0, a as u64) + Uns3dLayout::node_value(0, b as u64));
        out[a] += flux;
        out[b] -= flux;
    }
    out
}

/// Run the FUN3D template through SDM. Returns per-rank results; phase
/// maxima across ranks give the paper's bars.
pub fn run_sdm(
    comm: &mut Comm,
    pfs: &Arc<Pfs>,
    store: &SharedStore,
    w: &Fun3dWorkload,
    opts: &Fun3dOptions,
) -> SdmResult<Fun3dResult> {
    let total_nodes = w.mesh.num_nodes() as u64;
    let total_edges = w.mesh.num_edges() as u64;
    let mut report = PhaseReport::new();

    let cfg = SdmConfig {
        org: opts.org,
        ..SdmConfig::default()
    };
    let mut sdm = Sdm::initialize_with(comm, pfs, store, "fun3d", cfg)?;

    // Result datasets: p, q, r, s over nodes plus the big one (5x) —
    // one group, registered in one collective through the builder.
    let mut b = sdm.group(comm);
    for name in RESULT_DATASETS {
        b = b.dataset::<f64>(name, total_nodes);
    }
    let reg = b.dataset::<f64>(BIG_DATASET, 5 * total_nodes).build()?;
    let h = reg.group();
    // Typed handles: resolved once, no name lookup per write.
    let small: Vec<DatasetHandle<f64>> = RESULT_DATASETS
        .iter()
        .map(|n| reg.handle::<f64>(n))
        .collect::<Result<_, _>>()?;
    let big_h: DatasetHandle<f64> = reg.handle(BIG_DATASET)?;

    // Import list: edge1, edge2, x0..x3, y0..y3 from the mesh file.
    let mut imports = vec![
        ImportDesc::index("edge1", &w.mesh_file),
        ImportDesc::index("edge2", &w.mesh_file),
    ];
    for k in 0..w.layout.n_edge_arrays {
        imports.push(ImportDesc::data(format!("x{k}"), &w.mesh_file));
    }
    for k in 0..w.layout.n_node_arrays {
        imports.push(ImportDesc::data(format!("y{k}"), &w.mesh_file));
    }
    sdm.make_importlist(comm, h, imports)?;

    // ---- Index distribution (with optional history) + edge import ----
    comm.barrier();
    let mut history_hit = false;
    let pi: PartitionedIndex;
    if opts.use_history {
        let t0 = comm.now();
        let replay = sdm.partition_index_from_history(comm, total_edges)?;
        match replay {
            Some(found) => {
                history_hit = true;
                pi = found;
                report.add("index-distribution", comm.now() - t0);
            }
            None => {
                report.add("index-distribution", comm.now() - t0);
                pi = import_and_distribute(comm, &mut sdm, h, w, &mut report)?;
            }
        }
    } else {
        pi = import_and_distribute(comm, &mut sdm, h, w, &mut report)?;
    }

    // ---- Import the eight data arrays through the partitioned maps ----
    let t0 = comm.now();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    for k in 0..w.layout.n_edge_arrays {
        xs.push(sdm.partition_data_edges(
            comm,
            h,
            &format!("x{k}"),
            w.layout.edge_array_offset(k),
            &pi,
            total_edges,
        )?);
    }
    let mut ys: Vec<Vec<f64>> = Vec::new();
    for k in 0..w.layout.n_node_arrays {
        ys.push(sdm.partition_data_nodes(
            comm,
            h,
            &format!("y{k}"),
            w.layout.node_array_offset(k),
            &pi,
            total_nodes,
        )?);
    }
    report.add("import", comm.now() - t0);
    report.add_bytes(
        "import",
        w.layout.n_edge_arrays as u64 * total_edges * 8
            + w.layout.n_node_arrays as u64 * total_nodes * 8
            + if history_hit { 0 } else { 2 * total_edges * 4 },
    );

    // ---- Optional history registration ----
    if opts.register_history && !history_hit {
        let t0 = comm.now();
        sdm.index_registry(comm, &pi, total_edges)?;
        report.add("index-registry", comm.now() - t0);
    }
    sdm.release_importlist(comm, h)?;

    // ---- Views for the results ----
    let owned = pi.owned_nodes_u64();
    for &dh in &small {
        sdm.set_view(comm, dh, &owned)?;
    }
    let big_map: Vec<u64> = pi
        .owned_nodes
        .iter()
        .flat_map(|&n| (0..5).map(move |j| n as u64 * 5 + j))
        .collect();
    sdm.set_view(comm, big_h, &big_map)?;

    // ---- Time steps: compute + checkpoint writes ----
    let all_nodes = pi.all_nodes();
    let mut p_checksum = 0.0;
    for t in 0..w.timesteps {
        let t0 = comm.now();
        let p = edge_sweep(&pi, &all_nodes, &xs[0], &ys[0], t);
        // Model the flops: two passes over local edges per dataset.
        comm.compute(pi.edge_ids.len() as f64 * sdm.config().per_edge_scan_cost * 2.0);
        report.add("compute", comm.now() - t0);

        let t0 = comm.now();
        // All five checkpoint datasets land through one timestep scope:
        // one collective burst, one metadata sync for the whole step.
        let big: Vec<f64> = p.iter().flat_map(|&v| [v; 5]).collect();
        let mut step = sdm.timestep(comm, t as i64);
        for &dh in &small {
            step.write(dh, &p)?;
        }
        step.write(big_h, &big)?;
        step.commit()?;
        report.add("write", comm.now() - t0);
        report.add_bytes("write", w.checkpoint_bytes());

        p_checksum = p.iter().sum();
    }

    // ---- Read everything back (Figure 6's read bars) ----
    let t0 = comm.now();
    let mut back = vec![0.0f64; owned.len()];
    for t in 0..w.timesteps {
        for &dh in &small {
            sdm.read_handle(comm, dh, t as i64, &mut back)?;
        }
        let mut big_back = vec![0.0f64; big_map.len()];
        sdm.read_handle(comm, big_h, t as i64, &mut big_back)?;
    }
    report.add("read", comm.now() - t0);
    report.add_bytes("read", w.checkpoint_bytes() * w.timesteps as u64);

    let partition = (
        pi.edge_ids.len(),
        pi.owned_nodes.len(),
        pi.ghost_nodes.len(),
    );
    sdm.finalize(comm)?;
    Ok(Fun3dResult {
        report,
        history_hit,
        partition,
        p_checksum,
    })
}

/// Import the edge arrays and run the ring distribution, optionally
/// charging the paper's phases into `report`.
fn import_and_distribute(
    comm: &mut Comm,
    sdm: &mut Sdm,
    h: sdm_core::GroupHandle,
    w: &Fun3dWorkload,
    report: &mut PhaseReport,
) -> SdmResult<PartitionedIndex> {
    let total_edges = w.mesh.num_edges() as u64;
    // Import edges ("the cost of reading the edges" belongs to `import`).
    let t0 = comm.now();
    let (start_id, e1) =
        sdm.import_contiguous::<i32>(comm, h, "edge1", w.layout.edge1_offset(), total_edges)?;
    let (_, e2) =
        sdm.import_contiguous::<i32>(comm, h, "edge2", w.layout.edge2_offset(), total_edges)?;
    report.add("import", comm.now() - t0);

    // Ring distribution ("communication and computation costs to
    // partition the edges after importing them").
    let t0 = comm.now();
    let pi = sdm.partition_index_fresh(comm, &w.partitioning_vector, start_id, &e1, &e2)?;
    report.add("index-distribution", comm.now() - t0);
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_mpi::World;
    use sdm_sim::MachineConfig;

    fn small_world(n: usize, opts: Fun3dOptions) -> (Vec<Fun3dResult>, Arc<Pfs>, SharedStore) {
        let w = Fun3dWorkload::new(150, n, 7);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let db = Arc::new(sdm_metadb::Database::new());
        let store = sdm_core::CachedStore::shared(&db);
        w.stage(&pfs);
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store, w, opts) = (
                Arc::clone(&pfs),
                Arc::clone(&store),
                w.clone(),
                opts.clone(),
            );
            move |c| run_sdm(c, &pfs, &store, &w, &opts).unwrap()
        });
        (out, pfs, store)
    }

    #[test]
    fn partition_covers_everything() {
        let (out, _, _) = small_world(3, Fun3dOptions::default());
        let total_owned: usize = out.iter().map(|r| r.partition.1).sum();
        // Owned nodes partition exactly.
        let w = Fun3dWorkload::new(150, 3, 7);
        assert_eq!(total_owned, w.mesh.num_nodes());
        // Edges: each at least once, shared ones more.
        let total_edges: usize = out.iter().map(|r| r.partition.0).sum();
        assert!(total_edges >= w.mesh.num_edges());
    }

    #[test]
    fn sweep_matches_reference() {
        let n = 3;
        let w = Fun3dWorkload::new(120, n, 9);
        let (e1, e2) = w.mesh.indirection_arrays();
        let reference = edge_sweep_reference(&e1, &e2, w.mesh.num_nodes(), 0);
        // Build per-rank partitions directly and check the distributed sweep.
        for rank in 0..n as u32 {
            let pi = Sdm::partition_index_reference(&w.partitioning_vector, &e1, &e2, rank);
            let all = pi.all_nodes();
            let x: Vec<f64> = pi
                .edge_ids
                .iter()
                .map(|&e| Uns3dLayout::edge_value(0, e))
                .collect();
            let y: Vec<f64> = all
                .iter()
                .map(|&nn| Uns3dLayout::node_value(0, nn as u64))
                .collect();
            let p = edge_sweep(&pi, &all, &x, &y, 0);
            for (i, &node) in pi.owned_nodes.iter().enumerate() {
                let want = reference[node as usize];
                assert!(
                    (p[i] - want).abs() <= 1e-6 * want.abs().max(1.0),
                    "rank {rank} node {node}: {} vs {want}",
                    p[i]
                );
            }
        }
    }

    #[test]
    fn history_registration_then_hit() {
        let n = 3;
        let w = Fun3dWorkload::new(150, n, 7);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let db = Arc::new(sdm_metadb::Database::new());
        let store = sdm_core::CachedStore::shared(&db);
        w.stage(&pfs);
        // First run registers.
        let first = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| {
                let opts = Fun3dOptions {
                    register_history: true,
                    ..Default::default()
                };
                run_sdm(c, &pfs, &store, &w, &opts).unwrap()
            }
        });
        assert!(first.iter().all(|r| !r.history_hit));
        // Second run replays through a fresh store over the same
        // database, exactly like a later job re-attaching.
        let second = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store, w) = (
                Arc::clone(&pfs),
                sdm_core::CachedStore::shared(&db),
                w.clone(),
            );
            move |c| {
                let opts = Fun3dOptions {
                    use_history: true,
                    ..Default::default()
                };
                run_sdm(c, &pfs, &store, &w, &opts).unwrap()
            }
        });
        assert!(
            second.iter().all(|r| r.history_hit),
            "history must hit on the second run"
        );
        // Identical partitions => identical results.
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.partition, b.partition);
            assert!((a.p_checksum - b.p_checksum).abs() < 1e-9);
        }
    }

    #[test]
    fn all_org_levels_produce_same_data() {
        let mut sums = Vec::new();
        for org in OrgLevel::all() {
            let (out, _, _) = small_world(
                2,
                Fun3dOptions {
                    org,
                    ..Default::default()
                },
            );
            sums.push(out.iter().map(|r| r.p_checksum).sum::<f64>());
        }
        assert!((sums[0] - sums[1]).abs() < 1e-9);
        assert!((sums[1] - sums[2]).abs() < 1e-9);
    }
}
