//! The Rayleigh-Taylor template (Figure 7).
//!
//! Each step writes two datasets: a node dataset "according to the global
//! node number of the partitioned nodes" (irregular view) and a triangle
//! dataset "contiguously" (block ranges). Under Level 1 each step's
//! datasets go to fresh files; under Level 2/3 they append (the paper
//! notes Level 2 and 3 coincide here because the two datasets already
//! have separate files... in our grouping Level 3 shares one file).

use std::sync::Arc;

use sdm_core::{OrgLevel, Sdm, SdmConfig, SdmResult, SharedStore};
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::report::PhaseReport;
use crate::workload::RtWorkload;

/// Deterministic node value for step `t` (tests verify file contents).
pub fn node_value(node: u32, t: usize) -> f64 {
    node as f64 * 1.5 + t as f64 * 1000.0
}

/// Deterministic triangle value for step `t`.
pub fn tri_value(tri: u64, t: usize) -> f64 {
    -(tri as f64) - t as f64 * 500.0
}

/// Run the RT template through SDM; returns this rank's phase report
/// (phases: `"write"` with bytes for bandwidth).
pub fn run_sdm(
    comm: &mut Comm,
    pfs: &Arc<Pfs>,
    store: &SharedStore,
    w: &RtWorkload,
    org: OrgLevel,
) -> SdmResult<PhaseReport> {
    let total_nodes = w.mesh.num_nodes() as u64;
    let total_tris = w.mesh.num_cells() as u64;
    let mut report = PhaseReport::new();

    let cfg = SdmConfig {
        org,
        ..SdmConfig::default()
    };
    let mut sdm = Sdm::initialize_with(comm, pfs, store, "rt", cfg)?;
    let reg = sdm
        .group(comm)
        .dataset::<f64>("node_data", total_nodes)
        .dataset::<f64>("tri_data", total_tris)
        .build()?;
    let node_h = reg.handle::<f64>("node_data")?;
    let tri_h = reg.handle::<f64>("tri_data")?;

    // Node view: owned nodes by global number.
    let me = comm.rank() as u32;
    let owned: Vec<u64> = w
        .partitioning_vector
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p == me)
        .map(|(n, _)| n as u64)
        .collect();
    sdm.set_view(comm, node_h, &owned)?;

    // Triangle view: contiguous block per rank.
    let chunk = total_tris.div_ceil(comm.size() as u64);
    let tlo = (me as u64 * chunk).min(total_tris);
    let thi = ((me as u64 + 1) * chunk).min(total_tris);
    let tri_map: Vec<u64> = (tlo..thi).collect();
    sdm.set_view(comm, tri_h, &tri_map)?;

    comm.barrier();
    for t in 0..w.timesteps {
        let node_vals: Vec<f64> = owned.iter().map(|&n| node_value(n as u32, t)).collect();
        let tri_vals: Vec<f64> = tri_map.iter().map(|&k| tri_value(k, t)).collect();
        let t0 = comm.now();
        // Both datasets of the step land through one timestep scope:
        // one collective burst, one metadata sync.
        let mut step = sdm.timestep(comm, t as i64);
        step.write(node_h, &node_vals)?;
        step.write(tri_h, &tri_vals)?;
        step.commit()?;
        report.add("write", comm.now() - t0);
    }
    report.add_bytes("write", w.total_bytes());

    // Read-back (not part of Figure 7 but used by tests).
    let t0 = comm.now();
    let mut node_back = vec![0.0f64; owned.len()];
    sdm.read_handle(comm, node_h, (w.timesteps - 1) as i64, &mut node_back)?;
    report.add("read", comm.now() - t0);
    for (i, &n) in owned.iter().enumerate() {
        debug_assert!((node_back[i] - node_value(n as u32, w.timesteps - 1)).abs() < 1e-9);
    }

    sdm.finalize(comm)?;
    Ok(report)
}

/// Run the original (token-serialized) RT write path; one file per step.
///
/// Faithful to the paper's baseline: "after seeking the starting
/// position in a file, processes write their local portion of data one
/// by one". Each process holds its *partitioned* nodes — scattered
/// global numbers — so its "local portion" of the node dataset is many
/// small runs at scattered file positions, each its own seek+write.
/// SDM's win in Figure 7 is precisely turning this into one collective
/// reordered write.
pub fn run_original(comm: &mut Comm, pfs: &Arc<Pfs>, w: &RtWorkload) -> SdmResult<PhaseReport> {
    let total_nodes = w.mesh.num_nodes() as u64;
    let total_tris = w.mesh.num_cells() as u64;
    let mut report = PhaseReport::new();

    // The same partitioned node ownership SDM gets from the partitioning
    // vector, coalesced into maximal contiguous runs of global numbers.
    let me = comm.rank() as u32;
    let owned: Vec<u64> = w
        .partitioning_vector
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p == me)
        .map(|(n, _)| n as u64)
        .collect();
    let mut node_runs: Vec<(u64, Vec<f64>)> = Vec::new(); // (start elem, values at t=0 placeholder)
                                                          // Run boundaries depend only on ownership; values are per-step.
    let mut run_bounds: Vec<(u64, u64)> = Vec::new(); // (start, len)
    for &n in &owned {
        match run_bounds.last_mut() {
            Some((s, l)) if *s + *l == n => *l += 1,
            _ => run_bounds.push((n, 1)),
        }
    }
    // Triangles are written contiguously by rank blocks in both versions.
    let size = comm.size() as u64;
    let tchunk = total_tris.div_ceil(size);
    let (tlo, thi) = (
        (me as u64 * tchunk).min(total_tris),
        ((me as u64 + 1) * tchunk).min(total_tris),
    );

    comm.barrier();
    for t in 0..w.timesteps {
        node_runs.clear();
        for &(start, len) in &run_bounds {
            let vals: Vec<f64> = (start..start + len)
                .map(|n| node_value(n as u32, t))
                .collect();
            node_runs.push((start, vals));
        }
        let tri_vals: Vec<f64> = (tlo..thi).map(|k| tri_value(k, t)).collect();
        let dt = crate::original::serialized_write_runs(
            comm,
            pfs,
            &format!("rt_orig.t{t}.dat"),
            &node_runs,
            &tri_vals,
            tlo,
            total_nodes * 8,
        )?;
        report.add("write", dt);
    }
    report.add_bytes("write", w.total_bytes());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_mpi::World;
    use sdm_sim::MachineConfig;

    fn run(org: OrgLevel, n: usize) -> (Arc<Pfs>, Vec<PhaseReport>) {
        let w = RtWorkload::new(300, n, 5);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let store = sdm_core::CachedStore::shared(&Arc::new(sdm_metadb::Database::new()));
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| run_sdm(c, &pfs, &store, &w, org).unwrap()
        });
        (pfs, out)
    }

    #[test]
    fn level1_creates_more_files_than_level3() {
        let (pfs1, _) = run(OrgLevel::Level1, 2);
        let files1 = pfs1.list().len();
        let (pfs3, _) = run(OrgLevel::Level3, 2);
        let files3 = pfs3.list().len();
        // 2 datasets x 5 steps vs 1 group file.
        assert_eq!(files1, 10);
        assert_eq!(files3, 1);
        assert!(files1 > files3);
    }

    #[test]
    fn node_data_lands_at_global_positions() {
        let n = 3;
        let w = RtWorkload::new(300, n, 5);
        let (pfs, _) = run(OrgLevel::Level1, n);
        // Step 2's node file holds node_value(node, 2) at position node.
        let name = OrgLevel::Level1.file_name("rt", 0, "node_data", 2);
        let (f, _) = pfs.open(&name, 0.0).unwrap();
        let mut vals = vec![0.0f64; w.mesh.num_nodes()];
        pfs.read_exact_at(&f, 0, sdm_mpi::pod::as_bytes_mut(&mut vals), 0.0)
            .unwrap();
        for (node, &v) in vals.iter().enumerate() {
            assert_eq!(v, node_value(node as u32, 2), "node {node}");
        }
    }

    #[test]
    fn original_produces_identical_bytes() {
        let n = 2;
        let w = RtWorkload::new(200, n, 1);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        World::run(n, MachineConfig::test_tiny(), {
            let (pfs, w) = (Arc::clone(&pfs), w.clone());
            move |c| run_original(c, &pfs, &w).unwrap()
        });
        let (f, _) = pfs.open("rt_orig.t0.dat", 0.0).unwrap();
        let mut vals = vec![0.0f64; w.mesh.num_nodes()];
        pfs.read_exact_at(&f, 0, sdm_mpi::pod::as_bytes_mut(&mut vals), 0.0)
            .unwrap();
        for (node, &v) in vals.iter().enumerate() {
            assert_eq!(v, node_value(node as u32, 0));
        }
        let mut tris = vec![0.0f64; w.mesh.num_cells()];
        pfs.read_exact_at(
            &f,
            w.mesh.num_nodes() as u64 * 8,
            sdm_mpi::pod::as_bytes_mut(&mut tris),
            0.0,
        )
        .unwrap();
        for (k, &v) in tris.iter().enumerate() {
            assert_eq!(v, tri_value(k as u64, 0));
        }
    }

    #[test]
    fn sdm_write_beats_original_on_origin2000() {
        let n = 4;
        let w = RtWorkload::new(20_000, n, 5);
        let cfg = MachineConfig::origin2000();
        let pfs = Pfs::new(cfg.clone());
        let store = sdm_core::CachedStore::shared(&Arc::new(sdm_metadb::Database::new()));
        let sdm_t = World::run(n, cfg.clone(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| {
                run_sdm(c, &pfs, &store, &w, OrgLevel::Level2)
                    .unwrap()
                    .get("write")
            }
        })
        .into_iter()
        .fold(0.0f64, f64::max);
        let pfs2 = Pfs::new(cfg.clone());
        let orig_t = World::run(n, cfg, {
            let (pfs2, w) = (Arc::clone(&pfs2), w.clone());
            move |c| run_original(c, &pfs2, &w).unwrap().get("write")
        })
        .into_iter()
        .fold(0.0f64, f64::max);
        assert!(
            sdm_t < orig_t,
            "SDM collective writes ({sdm_t}s) must beat serialized writes ({orig_t}s)"
        );
    }
}
