//! Phase-time reports shared by the templates and figure harnesses.

use std::collections::BTreeMap;

use sdm_mpi::Comm;

/// Named phase durations (virtual seconds, max over ranks) plus counters.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    phases: BTreeMap<String, f64>,
    /// Bytes moved per phase (for bandwidth rows).
    bytes: BTreeMap<String, u64>,
}

impl PhaseReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a phase duration (adds to any existing total).
    pub fn add(&mut self, phase: &str, seconds: f64) {
        *self.phases.entry(phase.to_string()).or_insert(0.0) += seconds;
    }

    /// Record bytes moved in a phase.
    pub fn add_bytes(&mut self, phase: &str, bytes: u64) {
        *self.bytes.entry(phase.to_string()).or_insert(0) += bytes;
    }

    /// Duration of a phase (0 if absent).
    pub fn get(&self, phase: &str) -> f64 {
        self.phases.get(phase).copied().unwrap_or(0.0)
    }

    /// Bytes of a phase.
    pub fn get_bytes(&self, phase: &str) -> u64 {
        self.bytes.get(phase).copied().unwrap_or(0)
    }

    /// Bandwidth of a phase in MB/s (0 if no time recorded).
    pub fn bandwidth_mbs(&self, phase: &str) -> f64 {
        let t = self.get(phase);
        if t <= 0.0 {
            0.0
        } else {
            self.get_bytes(phase) as f64 / 1e6 / t
        }
    }

    /// Sum of all phase durations.
    pub fn total(&self) -> f64 {
        self.phases.values().sum()
    }

    /// All phases, sorted by name.
    pub fn phases(&self) -> impl Iterator<Item = (&str, f64)> {
        self.phases.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Reduce per-rank reports into one: per-phase max duration (the
    /// collective finishes when the slowest rank does) and max bytes
    /// (bytes are recorded as global totals on every rank).
    pub fn reduce_max(reports: &[PhaseReport]) -> PhaseReport {
        let mut out = PhaseReport::new();
        for r in reports {
            for (k, &v) in &r.phases {
                let e = out.phases.entry(k.clone()).or_insert(0.0);
                *e = e.max(v);
            }
            for (k, &v) in &r.bytes {
                let e = out.bytes.entry(k.clone()).or_insert(0);
                *e = (*e).max(v);
            }
        }
        out
    }
}

/// Time a closure in virtual seconds on this rank.
pub fn timed<T>(comm: &mut Comm, f: impl FnOnce(&mut Comm) -> T) -> (T, f64) {
    let t0 = comm.now();
    let v = f(comm);
    (v, comm.now() - t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut r = PhaseReport::new();
        r.add("import", 2.0);
        r.add("import", 1.0);
        r.add_bytes("import", 100_000_000);
        assert_eq!(r.get("import"), 3.0);
        assert!((r.bandwidth_mbs("import") - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.get("missing"), 0.0);
        assert_eq!(r.total(), 3.0);
    }

    #[test]
    fn reduce_takes_max() {
        let mut a = PhaseReport::new();
        a.add("x", 1.0);
        a.add_bytes("x", 10);
        let mut b = PhaseReport::new();
        b.add("x", 3.0);
        b.add("y", 0.5);
        let m = PhaseReport::reduce_max(&[a, b]);
        assert_eq!(m.get("x"), 3.0);
        assert_eq!(m.get("y"), 0.5);
        assert_eq!(m.get_bytes("x"), 10);
    }

    #[test]
    fn zero_time_bandwidth_is_zero() {
        let mut r = PhaseReport::new();
        r.add_bytes("w", 5);
        assert_eq!(r.bandwidth_mbs("w"), 0.0);
    }
}
