//! Workload descriptions scaled from the paper.

use std::sync::Arc;

use sdm_mesh::gen::{rt_interface_mesh, tet_box};
use sdm_mesh::{CsrGraph, Uns3dLayout, UnstructuredMesh};
use sdm_partition::{partition, Method, PartitionVector};
use sdm_pfs::Pfs;

/// The FUN3D benchmark workload.
///
/// Paper scale: ~18M edges, ~2.2M nodes, 807 MB imported (2 index
/// arrays, 4 edge data arrays, 4 node data arrays), results of 4 × 21 MB
/// plus one 105 MB dataset per checkpoint, 64 processors, 2 time steps.
#[derive(Debug, Clone)]
pub struct Fun3dWorkload {
    /// The synthetic mesh.
    pub mesh: Arc<UnstructuredMesh>,
    /// Import-file layout (4 edge + 4 node arrays, FUN3D shape).
    pub layout: Uns3dLayout,
    /// The replicated partitioning vector ("generated from MeTis").
    pub partitioning_vector: Arc<PartitionVector>,
    /// Time steps to run.
    pub timesteps: usize,
    /// Name of the mesh file in the PFS.
    pub mesh_file: String,
}

impl Fun3dWorkload {
    /// Build a workload with roughly `target_nodes` mesh nodes for
    /// `nprocs` ranks. The paper's full size is `target_nodes ≈ 2.2M`;
    /// the default harness scale is 1/32 of that.
    pub fn new(target_nodes: usize, nprocs: usize, seed: u64) -> Self {
        let (nx, ny, nz) = sdm_mesh::gen::tet::dims_for_nodes(target_nodes);
        let mesh = tet_box(nx, ny, nz, 0.25, seed);
        let graph = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
        let pv = partition(&graph, Some(&mesh.coords), nprocs, Method::Multilevel, seed);
        let layout = Uns3dLayout::fun3d(mesh.num_edges() as u64, mesh.num_nodes() as u64);
        Self {
            mesh: Arc::new(mesh),
            layout,
            partitioning_vector: Arc::new(pv),
            timesteps: 2,
            mesh_file: "uns3d.msh".to_string(),
        }
    }

    /// Total bytes the import phase moves (the paper's ~807 MB at full
    /// scale).
    pub fn import_bytes(&self) -> u64 {
        self.layout.file_len()
    }

    /// Bytes written per checkpoint: 4 node datasets + 1 large dataset
    /// (modeled as 5× the node data, matching the paper's 4 × 21 MB +
    /// 105 MB ≈ 5 : 1 : 1 : 1 : 1 ratio).
    pub fn checkpoint_bytes(&self) -> u64 {
        let node_ds = self.mesh.num_nodes() as u64 * 8;
        4 * node_ds + 5 * node_ds
    }

    /// Stage the mesh file into the PFS (untimed test-fixture setup; the
    /// paper's mesh pre-existed on disk).
    pub fn stage(&self, pfs: &Arc<Pfs>) {
        let img = self.layout.build_image(&self.mesh);
        let (f, _) = pfs
            .open_or_create(&self.mesh_file, 0.0)
            .expect("stage mesh file");
        pfs.write_at(&f, 0, &img, 0.0).expect("stage mesh bytes");
        pfs.reset_timing();
    }
}

/// The Rayleigh-Taylor benchmark workload.
///
/// Paper scale: ~36 MB node dataset + ~74 MB triangle dataset per step,
/// 5 steps, ~550 MB total, run at 32 and 64 processors.
#[derive(Debug, Clone)]
pub struct RtWorkload {
    /// The interface mesh.
    pub mesh: Arc<UnstructuredMesh>,
    /// The replicated node partitioning vector.
    pub partitioning_vector: Arc<PartitionVector>,
    /// Time steps (paper: 5).
    pub timesteps: usize,
}

impl RtWorkload {
    /// Build an RT workload with roughly `target_nodes` mesh nodes.
    /// Paper scale is ~4.5M nodes (36 MB of f64 per step).
    pub fn new(target_nodes: usize, nprocs: usize, seed: u64) -> Self {
        let side = (target_nodes as f64).sqrt().ceil().max(3.0) as usize;
        let mesh = rt_interface_mesh(side, side, 0.35, 4);
        let graph = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
        let pv = partition(&graph, Some(&mesh.coords), nprocs, Method::Multilevel, seed);
        Self {
            mesh: Arc::new(mesh),
            partitioning_vector: Arc::new(pv),
            timesteps: 5,
        }
    }

    /// Bytes written per step (node + triangle datasets).
    pub fn step_bytes(&self) -> u64 {
        (self.mesh.num_nodes() as u64 + self.mesh.num_cells() as u64) * 8
    }

    /// Total bytes over all steps (paper: ~550 MB).
    pub fn total_bytes(&self) -> u64 {
        self.step_bytes() * self.timesteps as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_sim::MachineConfig;

    #[test]
    fn fun3d_workload_scales() {
        let w = Fun3dWorkload::new(600, 4, 1);
        assert!(w.mesh.num_nodes() >= 300);
        assert!(w.mesh.num_edges() > w.mesh.num_nodes());
        assert_eq!(w.partitioning_vector.len(), w.mesh.num_nodes());
        // Import dominated by the 4+4 f64 arrays.
        assert!(w.import_bytes() > w.mesh.num_edges() as u64 * 8 * 4);
    }

    #[test]
    fn fun3d_ratio_matches_paper() {
        // At paper scale the import is ~807 MB for 18M edges; check the
        // formula reproduces that within ~15%.
        let layout = Uns3dLayout::fun3d(18_000_000, 2_200_000);
        let gb = layout.file_len() as f64 / 1e6;
        assert!(
            (650.0..950.0).contains(&gb),
            "paper-scale import = {gb} MB, expected ~807"
        );
    }

    #[test]
    fn rt_workload_ratio() {
        let w = RtWorkload::new(2_000, 4, 2);
        // Paper: triangle bytes ≈ 2× node bytes.
        let nodes = w.mesh.num_nodes() as f64;
        let tris = w.mesh.num_cells() as f64;
        assert!((1.5..2.5).contains(&(tris / nodes)));
        assert_eq!(w.timesteps, 5);
        assert_eq!(w.total_bytes(), w.step_bytes() * 5);
    }

    #[test]
    fn staging_writes_mesh_file() {
        let w = Fun3dWorkload::new(200, 2, 3);
        let pfs = Pfs::new(MachineConfig::test_tiny());
        w.stage(&pfs);
        assert_eq!(pfs.file_len("uns3d.msh").unwrap(), w.layout.file_len());
        // Staging must not pollute the timing counters.
        assert_eq!(pfs.counters().get("pfs.write_bytes"), 0);
    }
}
