//! API-contract tests for the SDM surface: call-order errors, size
//! mismatches, metadata registration, and multi-group behaviour.

use std::sync::Arc;

use sdm_core::dataset::{make_datalist, DatasetDesc, ImportDesc};
use sdm_core::{CachedStore, OrgLevel, Sdm, SdmConfig, SdmError, SdmType, SharedStore};
use sdm_metadb::{Database, Value};
use sdm_mpi::World;
use sdm_pfs::Pfs;
use sdm_sim::MachineConfig;

fn setup() -> (Arc<Pfs>, Arc<Database>, SharedStore) {
    let db = Arc::new(Database::new());
    let store = CachedStore::shared(&db);
    (Pfs::new(MachineConfig::test_tiny()), db, store)
}

#[test]
fn initialize_creates_tables_and_unique_runids() {
    let (pfs, db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let s1 = Sdm::initialize(c, &pfs, &store, "app1").unwrap();
            let s2 = Sdm::initialize(c, &pfs, &store, "app2").unwrap();
            assert_ne!(
                s1.runid(),
                s2.runid(),
                "allocation reserves ids: two initializers never collide"
            );
            (s1.runid(), s2.runid())
        }
    });
    for t in [
        "run_table",
        "access_pattern_table",
        "execution_table",
        "import_table",
        "index_table",
        "index_history_table",
    ] {
        assert!(db.has_table(t), "missing {t}");
    }
}

#[test]
fn set_attributes_registers_run_and_datasets() {
    let (pfs, db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "meta").unwrap();
            let h = s
                .set_attributes(c, make_datalist(&["p", "q"], SdmType::Double, 100))
                .unwrap();
            let _ = h;
            s.finalize(c).unwrap();
        }
    });
    let rs = db.exec("SELECT application FROM run_table", &[]).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0].as_str(), Some("meta"));
    let rs = db
        .exec(
            "SELECT dataset FROM access_pattern_table ORDER BY dataset",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::from("p")], vec![Value::from("q")]]
    );
}

#[test]
fn write_without_view_is_error() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e1").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 10)])
                .unwrap();
            let err = s.write(c, h, "p", 0, &[1.0f64]).unwrap_err();
            assert!(matches!(err, SdmError::NoView(_)), "got {err}");
        }
    });
}

#[test]
fn read_unwritten_timestep_is_error() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e2").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            s.data_view(c, h, "p", &[0, 1, 2, 3]).unwrap();
            let mut buf = vec![0.0f64; 4];
            let err = s.read(c, h, "p", 5, &mut buf).unwrap_err();
            assert!(
                matches!(err, SdmError::NotWritten { timestep: 5, .. }),
                "got {err}"
            );
        }
    });
}

#[test]
fn unknown_dataset_and_bad_sizes_are_errors() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e3").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            assert!(matches!(
                s.data_view(c, h, "nope", &[0]),
                Err(SdmError::NoSuchDataset(_))
            ));
            // Wrong element type (4-byte vs DOUBLE).
            s.data_view(c, h, "p", &[0, 1]).unwrap();
            assert!(matches!(
                s.write(c, h, "p", 0, &[1i32, 2]),
                Err(SdmError::Usage(_))
            ));
            // Wrong buffer length.
            assert!(matches!(
                s.write(c, h, "p", 0, &[1.0f64]),
                Err(SdmError::Usage(_))
            ));
            // Map index out of range.
            assert!(matches!(
                s.data_view(c, h, "p", &[99]),
                Err(SdmError::Usage(_))
            ));
            // Empty data group.
            assert!(matches!(
                s.set_attributes(c, vec![]),
                Err(SdmError::Usage(_))
            ));
        }
    });
}

#[test]
fn import_type_mismatch_is_error() {
    let (pfs, _db, store) = setup();
    // Stage a tiny file.
    {
        let (f, _) = pfs.open_or_create("m.msh", 0.0).unwrap();
        pfs.write_at(&f, 0, &[0u8; 64], 0.0).unwrap();
    }
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e4").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            s.make_importlist(c, h, vec![ImportDesc::index("edge1", "m.msh")])
                .unwrap();
            // edge1 is declared INTEGER (4 bytes); importing f64 must fail.
            let err = s.import_contiguous::<f64>(c, h, "edge1", 0, 8).unwrap_err();
            assert!(matches!(err, SdmError::Usage(_)));
            // Unknown import name.
            let err = s.import_contiguous::<i32>(c, h, "edgeX", 0, 8).unwrap_err();
            assert!(matches!(err, SdmError::NoSuchDataset(_)));
        }
    });
}

#[test]
fn two_groups_are_independent() {
    let (pfs, _db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let cfg = SdmConfig {
                org: OrgLevel::Level3,
                ..Default::default()
            };
            let mut s = Sdm::initialize_with(c, &pfs, &store, "two", cfg).unwrap();
            let g1 = s
                .set_attributes(c, vec![DatasetDesc::doubles("a", 8)])
                .unwrap();
            let g2 = s
                .set_attributes(c, vec![DatasetDesc::doubles("b", 8)])
                .unwrap();
            let mine: Vec<u64> = (c.rank() as u64..8).step_by(c.size()).collect();
            s.data_view(c, g1, "a", &mine).unwrap();
            s.data_view(c, g2, "b", &mine).unwrap();
            let va: Vec<f64> = mine.iter().map(|&g| g as f64).collect();
            let vb: Vec<f64> = mine.iter().map(|&g| -(g as f64)).collect();
            s.write(c, g1, "a", 0, &va).unwrap();
            s.write(c, g2, "b", 0, &vb).unwrap();
            // Level 3: one file per *group*.
            let mut ba = vec![0.0f64; mine.len()];
            s.read(c, g1, "a", 0, &mut ba).unwrap();
            assert_eq!(ba, va);
            let mut bb = vec![0.0f64; mine.len()];
            s.read(c, g2, "b", 0, &mut bb).unwrap();
            assert_eq!(bb, vb);
            // Dataset "a" is not visible through group 2.
            assert!(s.data_view(c, g2, "a", &mine).is_err());
            s.finalize(c).unwrap();
        }
    });
    assert!(pfs.exists("two.g0.dat") && pfs.exists("two.g1.dat"));
}

#[test]
fn level2_appends_across_timesteps() {
    let (pfs, db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let cfg = SdmConfig {
                org: OrgLevel::Level2,
                ..Default::default()
            };
            let mut s = Sdm::initialize_with(c, &pfs, &store, "app", cfg).unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            s.data_view(c, h, "p", &[0, 1, 2, 3]).unwrap();
            for t in 0..3i64 {
                let v = vec![t as f64; 4];
                s.write(c, h, "p", t, &v).unwrap();
            }
            // Read back the middle timestep.
            let mut buf = vec![0.0f64; 4];
            s.read(c, h, "p", 1, &mut buf).unwrap();
            assert_eq!(buf, vec![1.0; 4]);
            s.finalize(c).unwrap();
        }
    });
    // One file, three regions.
    assert_eq!(pfs.file_len("app.g0.p.dat").unwrap(), 3 * 4 * 8);
    let rs = db
        .exec(
            "SELECT file_offset FROM execution_table ORDER BY file_offset",
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows[2][0].as_i64(), Some(64));
}
