//! API-contract tests for the SDM surface: call-order errors, size
//! mismatches, metadata registration, and multi-group behaviour.
//!
//! The first half deliberately exercises the deprecated paper-shaped
//! veneer (`set_attributes` / `data_view` / `write` / `read`) so the
//! compat layer over the typed session API stays contract-true; the
//! second half covers the session API itself (builder validation, typed
//! handle resolution, scopes, `attach` verification).
#![allow(deprecated)]

use std::sync::Arc;

use sdm_core::dataset::{make_datalist, DatasetDesc, ImportDesc};
use sdm_core::schema::{AccessPatternCol, AccessPatternRow, ExecutionCol, ExecutionRow, RunRow};
use sdm_core::{
    AccessPattern, CachedStore, OrgLevel, Sdm, SdmConfig, SdmError, SdmType, SharedStore,
    StorageOrder,
};
use sdm_metadb::stmt::Query;
use sdm_metadb::{Database, Value};
use sdm_mpi::World;
use sdm_pfs::Pfs;
use sdm_sim::MachineConfig;

fn setup() -> (Arc<Pfs>, Arc<Database>, SharedStore) {
    let db = Arc::new(Database::new());
    let store = CachedStore::shared(&db);
    (Pfs::new(MachineConfig::test_tiny()), db, store)
}

#[test]
fn initialize_creates_tables_and_unique_runids() {
    let (pfs, db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let s1 = Sdm::initialize(c, &pfs, &store, "app1").unwrap();
            let s2 = Sdm::initialize(c, &pfs, &store, "app2").unwrap();
            assert_ne!(
                s1.runid(),
                s2.runid(),
                "allocation reserves ids: two initializers never collide"
            );
            (s1.runid(), s2.runid())
        }
    });
    for t in [
        "run_table",
        "access_pattern_table",
        "execution_table",
        "import_table",
        "index_table",
        "index_history_table",
    ] {
        assert!(db.has_table(t), "missing {t}");
    }
}

#[test]
fn set_attributes_registers_run_and_datasets() {
    let (pfs, db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "meta").unwrap();
            let h = s
                .set_attributes(c, make_datalist(&["p", "q"], SdmType::Double, 100))
                .unwrap();
            let _ = h;
            s.finalize(c).unwrap();
        }
    });
    let rs = db
        .exec_stmt(
            &Query::<RunRow>::all()
                .select(&[sdm_core::schema::RunCol::Application])
                .compile(),
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0].as_str(), Some("meta"));
    let rs = db
        .exec_stmt(
            &Query::<AccessPatternRow>::all()
                .select(&[AccessPatternCol::Dataset])
                .order_by(AccessPatternCol::Dataset)
                .compile(),
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::from("p")], vec![Value::from("q")]]
    );
}

#[test]
fn write_without_view_is_error() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e1").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 10)])
                .unwrap();
            let err = s.write(c, h, "p", 0, &[1.0f64]).unwrap_err();
            assert!(matches!(err, SdmError::NoView(_)), "got {err}");
        }
    });
}

#[test]
fn read_unwritten_timestep_is_error() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e2").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            s.data_view(c, h, "p", &[0, 1, 2, 3]).unwrap();
            let mut buf = vec![0.0f64; 4];
            let err = s.read(c, h, "p", 5, &mut buf).unwrap_err();
            assert!(
                matches!(err, SdmError::NotWritten { timestep: 5, .. }),
                "got {err}"
            );
        }
    });
}

#[test]
fn unknown_dataset_and_bad_sizes_are_errors() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e3").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            assert!(matches!(
                s.data_view(c, h, "nope", &[0]),
                Err(SdmError::NoSuchDataset(_))
            ));
            // Wrong element type (4-byte vs DOUBLE).
            s.data_view(c, h, "p", &[0, 1]).unwrap();
            assert!(matches!(
                s.write(c, h, "p", 0, &[1i32, 2]),
                Err(SdmError::Usage(_))
            ));
            // Wrong buffer length.
            assert!(matches!(
                s.write(c, h, "p", 0, &[1.0f64]),
                Err(SdmError::Usage(_))
            ));
            // Map index out of range.
            assert!(matches!(
                s.data_view(c, h, "p", &[99]),
                Err(SdmError::Usage(_))
            ));
            // Empty data group.
            assert!(matches!(
                s.set_attributes(c, vec![]),
                Err(SdmError::Usage(_))
            ));
        }
    });
}

#[test]
fn import_type_mismatch_is_error() {
    let (pfs, _db, store) = setup();
    // Stage a tiny file.
    {
        let (f, _) = pfs.open_or_create("m.msh", 0.0).unwrap();
        pfs.write_at(&f, 0, &[0u8; 64], 0.0).unwrap();
    }
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "e4").unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            s.make_importlist(c, h, vec![ImportDesc::index("edge1", "m.msh")])
                .unwrap();
            // edge1 is declared INTEGER (4 bytes); importing f64 must fail.
            let err = s.import_contiguous::<f64>(c, h, "edge1", 0, 8).unwrap_err();
            assert!(matches!(err, SdmError::Usage(_)));
            // Unknown import name.
            let err = s.import_contiguous::<i32>(c, h, "edgeX", 0, 8).unwrap_err();
            assert!(matches!(err, SdmError::NoSuchDataset(_)));
        }
    });
}

#[test]
fn two_groups_are_independent() {
    let (pfs, _db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let cfg = SdmConfig {
                org: OrgLevel::Level3,
                ..Default::default()
            };
            let mut s = Sdm::initialize_with(c, &pfs, &store, "two", cfg).unwrap();
            let g1 = s
                .set_attributes(c, vec![DatasetDesc::doubles("a", 8)])
                .unwrap();
            let g2 = s
                .set_attributes(c, vec![DatasetDesc::doubles("b", 8)])
                .unwrap();
            let mine: Vec<u64> = (c.rank() as u64..8).step_by(c.size()).collect();
            s.data_view(c, g1, "a", &mine).unwrap();
            s.data_view(c, g2, "b", &mine).unwrap();
            let va: Vec<f64> = mine.iter().map(|&g| g as f64).collect();
            let vb: Vec<f64> = mine.iter().map(|&g| -(g as f64)).collect();
            s.write(c, g1, "a", 0, &va).unwrap();
            s.write(c, g2, "b", 0, &vb).unwrap();
            // Level 3: one file per *group*.
            let mut ba = vec![0.0f64; mine.len()];
            s.read(c, g1, "a", 0, &mut ba).unwrap();
            assert_eq!(ba, va);
            let mut bb = vec![0.0f64; mine.len()];
            s.read(c, g2, "b", 0, &mut bb).unwrap();
            assert_eq!(bb, vb);
            // Dataset "a" is not visible through group 2.
            assert!(s.data_view(c, g2, "a", &mine).is_err());
            s.finalize(c).unwrap();
        }
    });
    assert!(pfs.exists("two.g0.dat") && pfs.exists("two.g1.dat"));
}

// ---------------------------------------------------------------------
// Typed session API
// ---------------------------------------------------------------------

#[test]
fn builder_registers_attributes_and_resolves_typed_handles() {
    let (pfs, db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "typed").unwrap();
            let g = s
                .group(c)
                .dataset::<f64>("p", 64)
                .access(AccessPattern::Irregular)
                .dataset::<i32>("flags", 64)
                .order(StorageOrder::RowMajor)
                .build()
                .unwrap();
            assert_eq!(g.len(), 2);
            assert_eq!(g.names().collect::<Vec<_>>(), vec!["p", "flags"]);
            let hp = g.handle::<f64>("p").unwrap();
            let hf = g.handle::<i32>("flags").unwrap();
            // A handle of the wrong element type is rejected at
            // resolution, not at write time.
            assert!(matches!(
                g.handle::<i32>("p"),
                Err(SdmError::TypeMismatch { .. })
            ));
            assert!(matches!(
                g.handle::<f64>("nope"),
                Err(SdmError::NoSuchDataset(_))
            ));
            // Same checks through the late-resolution path on Sdm.
            let hp2 = s.resolve_typed::<f64>(g.group(), "p").unwrap();
            assert_eq!(hp.slot(), hp2.slot());
            assert!(matches!(
                s.resolve_typed::<i64>(g.group(), "p"),
                Err(SdmError::TypeMismatch { .. })
            ));

            let mine: Vec<u64> = (c.rank() as u64..64).step_by(c.size()).collect();
            s.set_view(c, hp, &mine).unwrap();
            s.set_view(c, hf, &mine).unwrap();
            let p: Vec<f64> = mine.iter().map(|&g| g as f64).collect();
            let flags: Vec<i32> = mine.iter().map(|&g| g as i32 % 7).collect();
            let mut step = s.timestep(c, 0);
            step.write(hp, &p).unwrap();
            step.write(hf, &flags).unwrap();
            assert_eq!(step.staged_len(), 2);
            step.commit().unwrap();
            let mut back_p = vec![0.0f64; mine.len()];
            let mut back_f = vec![0i32; mine.len()];
            s.read_handle(c, hp, 0, &mut back_p).unwrap();
            s.read_handle(c, hf, 0, &mut back_f).unwrap();
            assert_eq!(back_p, p);
            assert_eq!(back_f, flags);
            s.finalize(c).unwrap();
        }
    });
    // The builder registered the run row and one access-pattern row per
    // dataset, exactly like the legacy surface.
    let rs = db
        .exec_stmt(
            &Query::<AccessPatternRow>::all()
                .select(&[AccessPatternCol::Dataset, AccessPatternCol::DataType])
                .order_by(AccessPatternCol::Dataset)
                .compile(),
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[0][0].as_str(), Some("flags"));
    assert_eq!(rs.rows[0][1].as_str(), Some("INTEGER"));
    assert_eq!(rs.rows[1][1].as_str(), Some("DOUBLE"));
}

#[test]
fn builder_rejects_empty_and_duplicate_groups() {
    let (pfs, _db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "bad").unwrap();
            assert!(matches!(s.group(c).build(), Err(SdmError::Usage(_))));
            assert!(matches!(
                s.group(c)
                    .dataset::<f64>("p", 4)
                    .dataset::<f64>("p", 4)
                    .build(),
                Err(SdmError::Usage(_))
            ));
            // Fluent modifiers before any dataset() are misuse, not a
            // silent no-op.
            assert!(matches!(
                s.group(c)
                    .access(AccessPattern::Regular)
                    .dataset::<f64>("p", 4)
                    .build(),
                Err(SdmError::Usage(_))
            ));
        }
    });
}

#[test]
fn scope_write_without_view_is_error_and_empty_scope_is_free() {
    let (pfs, db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "scope").unwrap();
            let g = s.group(c).dataset::<f64>("p", 8).build().unwrap();
            let hp = g.handle::<f64>("p").unwrap();
            {
                let mut step = s.timestep(c, 0);
                // Staging checks the view immediately; the failure
                // poisons the scope, so committing it is refused.
                assert!(matches!(step.write(hp, &[1.0]), Err(SdmError::NoView(_))));
                assert!(matches!(step.commit(), Err(SdmError::Usage(_))));
            }
            // Wrong buffer length surfaces at staging too.
            s.set_view(c, hp, &[0, 1]).unwrap();
            {
                let mut step = s.timestep(c, 0);
                assert!(matches!(step.write(hp, &[1.0]), Err(SdmError::Usage(_))));
                assert!(matches!(step.commit(), Err(SdmError::Usage(_))));
            }
            // An empty, healthy scope commits as a no-op.
            s.timestep(c, 0).commit().unwrap();
            s.finalize(c).unwrap();
        }
    });
    let rs = db
        .exec_stmt(&Query::<ExecutionRow>::all().count().compile(), &[])
        .unwrap();
    assert_eq!(rs.scalar().and_then(Value::as_i64), Some(0));
}

#[test]
fn poisoned_scope_abandons_staged_writes_on_drop() {
    let (pfs, db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "poison").unwrap();
            let g = s
                .group(c)
                .dataset::<f64>("good", 4)
                .dataset::<f64>("bad", 4)
                .build()
                .unwrap();
            let hg = g.handle::<f64>("good").unwrap();
            let hb = g.handle::<f64>("bad").unwrap();
            s.set_view(c, hg, &[0, 1, 2, 3]).unwrap();
            // No view for "bad": staging it fails after "good" staged.
            {
                let mut step = s.timestep(c, 0);
                step.write(hg, &[1.0, 2.0, 3.0, 4.0]).unwrap();
                assert!(step.write(hb, &[9.0; 4]).is_err());
                // Dropped poisoned: the half-staged step must NOT land.
            }
            // Explicit abandon discards staged writes too.
            {
                let mut step = s.timestep(c, 1);
                step.write(hg, &[5.0; 4]).unwrap();
                step.abandon();
            }
            s.finalize(c).unwrap();
        }
    });
    let rs = db
        .exec_stmt(&Query::<ExecutionRow>::all().count().compile(), &[])
        .unwrap();
    assert_eq!(
        rs.scalar().and_then(Value::as_i64),
        Some(0),
        "neither the poisoned nor the abandoned step may record rows"
    );
    assert!(
        pfs.list().is_empty(),
        "no data files from abandoned steps: {:?}",
        pfs.list()
    );
}

#[test]
fn scope_closes_on_drop() {
    let (pfs, _db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let mut s = Sdm::initialize(c, &pfs, &store, "raii").unwrap();
            let g = s.group(c).dataset::<f64>("p", 16).build().unwrap();
            let hp = g.handle::<f64>("p").unwrap();
            let mine: Vec<u64> = (c.rank() as u64..16).step_by(c.size()).collect();
            s.set_view(c, hp, &mine).unwrap();
            let p: Vec<f64> = mine.iter().map(|&g| g as f64 + 0.5).collect();
            {
                let mut step = s.timestep(c, 3);
                step.write(hp, &p).unwrap();
                // No commit: the drop flushes collectively.
            }
            let mut back = vec![0.0f64; mine.len()];
            s.read_handle(c, hp, 3, &mut back).unwrap();
            assert_eq!(back, p);
            s.finalize(c).unwrap();
        }
    });
}

#[test]
fn attach_to_unknown_run_is_error() {
    let (pfs, _db, store) = setup();
    World::run(2, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            // Nothing recorded yet: attaching to runid 7 must fail on
            // every rank.
            match Sdm::attach(c, &pfs, &store, "ghost", 7, SdmConfig::default()) {
                Err(SdmError::NoSuchRun(7)) => {}
                Err(e) => panic!("wrong error: {e}"),
                Ok(_) => panic!("attach to an unknown run must fail"),
            }
            // A recorded run attaches fine.
            let mut s = Sdm::initialize(c, &pfs, &store, "real").unwrap();
            s.record_run(c, 10).unwrap();
            let id = s.runid();
            s.finalize(c).unwrap();
            let s2 = Sdm::attach(c, &pfs, &store, "real", id, SdmConfig::default()).unwrap();
            assert_eq!(s2.runid(), id);
            s2.finalize(c).unwrap();
        }
    });
}

#[test]
fn level2_appends_across_timesteps() {
    let (pfs, db, store) = setup();
    World::run(1, MachineConfig::test_tiny(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |c| {
            let cfg = SdmConfig {
                org: OrgLevel::Level2,
                ..Default::default()
            };
            let mut s = Sdm::initialize_with(c, &pfs, &store, "app", cfg).unwrap();
            let h = s
                .set_attributes(c, vec![DatasetDesc::doubles("p", 4)])
                .unwrap();
            s.data_view(c, h, "p", &[0, 1, 2, 3]).unwrap();
            for t in 0..3i64 {
                let v = vec![t as f64; 4];
                s.write(c, h, "p", t, &v).unwrap();
            }
            // Read back the middle timestep.
            let mut buf = vec![0.0f64; 4];
            s.read(c, h, "p", 1, &mut buf).unwrap();
            assert_eq!(buf, vec![1.0; 4]);
            s.finalize(c).unwrap();
        }
    });
    // One file, three regions.
    assert_eq!(pfs.file_len("app.g0.p.dat").unwrap(), 3 * 4 * 8);
    let rs = db
        .exec_stmt(
            &Query::<ExecutionRow>::all()
                .select(&[ExecutionCol::FileOffset])
                .order_by(ExecutionCol::FileOffset)
                .compile(),
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows[2][0].as_i64(), Some(64));
}
