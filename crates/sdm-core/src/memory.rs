//! Dynamically doubled buffers.
//!
//! The paper: "a certain amount of memory space is initially allocated to
//! each process. When the entire memory space is occupied by the
//! partitioned data, it is automatically doubled... This prevents the
//! system from looking through the entire data in two steps" — i.e. the
//! original FUN3D counted first, then read; SDM reads once, growing with
//! `realloc`. This type reproduces that behaviour (and exposes the
//! realloc count so the A3 ablation can price the difference).

/// A growable buffer with explicit doubling semantics.
#[derive(Debug, Clone)]
pub struct DoublingBuf<T> {
    data: Vec<T>,
    initial_capacity: usize,
    reallocs: usize,
}

impl<T> DoublingBuf<T> {
    /// A buffer with the given initial capacity (the paper's "certain
    /// amount of memory space").
    pub fn with_initial_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            data: Vec::with_capacity(cap),
            initial_capacity: cap,
            reallocs: 0,
        }
    }

    /// Append, doubling the allocation when full (one `realloc`).
    pub fn push(&mut self, v: T) {
        if self.data.len() == self.data.capacity() {
            self.data.reserve_exact(self.data.capacity());
            self.reallocs += 1;
        }
        self.data.push(v);
    }

    /// Number of times the buffer doubled.
    pub fn reallocs(&self) -> usize {
        self.reallocs
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume into a `Vec`.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// The configured initial capacity.
    pub fn initial_capacity(&self) -> usize {
        self.initial_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_by_doubling() {
        let mut b = DoublingBuf::with_initial_capacity(4);
        for i in 0..4 {
            b.push(i);
        }
        assert_eq!(b.reallocs(), 0);
        b.push(4); // 4 -> 8
        assert_eq!(b.reallocs(), 1);
        for i in 5..8 {
            b.push(i);
        }
        assert_eq!(b.reallocs(), 1);
        b.push(8); // 8 -> 16
        assert_eq!(b.reallocs(), 2);
        assert_eq!(b.len(), 9);
        assert_eq!(b.as_slice()[8], 8);
    }

    #[test]
    fn realloc_count_is_logarithmic() {
        let mut b = DoublingBuf::with_initial_capacity(8);
        for i in 0..10_000 {
            b.push(i);
        }
        // ceil(log2(10000/8)) = 11 doublings.
        assert_eq!(b.reallocs(), 11);
        assert_eq!(b.into_vec().len(), 10_000);
    }

    #[test]
    fn zero_capacity_clamped() {
        let mut b = DoublingBuf::with_initial_capacity(0);
        b.push(1u8);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert_eq!(b.initial_capacity(), 1);
    }
}
