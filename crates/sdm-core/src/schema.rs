//! The six Figure-4 tables as typed [`Relation`]s.
//!
//! Every table of SDM's metadata control plane is described exactly
//! once, as a static descriptor: name, columns, and the secondary
//! indexes its hot lookups need. DDL is *generated* from the
//! descriptors ([`FIGURE4_TABLES`] drives
//! [`crate::store::MetadataStore::ensure_schema`]), inserts encode
//! through [`Relation::into_row`], and queries are built fluently over
//! the column enums — no SQL text anywhere above `sdm-metadb`:
//!
//! ```
//! use sdm_core::schema::{ExecutionCol, ExecutionRow};
//! use sdm_metadb::stmt::{param, Query, TypedColumn};
//!
//! // "Where did the last k timesteps of this run's dataset land?"
//! let stmt = Query::<ExecutionRow>::filter(
//!     ExecutionCol::Runid.eq(param(0)).and(ExecutionCol::Dataset.eq(param(1))),
//! )
//! .order_by_desc(ExecutionCol::Timestep)
//! .limit(8)
//! .compile();
//! assert_eq!(stmt.table(), Some("execution_table"));
//! ```

use sdm_metadb::relation;
use sdm_metadb::stmt::{Relation, TableDesc};

relation! {
    /// One `run_table` row: the registration record of a simulation run
    /// (`SDM_initialize` reserves it, [`crate::store::RunRecord`]
    /// completes it).
    pub struct RunRow in "run_table" as RunCol {
        /// Run id (allocated by `MetadataStore::allocate_runid`).
        pub runid: i64 => Runid,
        /// Application name.
        pub application: String => Application,
        /// Spatial dimension.
        pub dimension: i64 => Dimension,
        /// Problem size (nodes/elements; application-defined).
        pub problem_size: i64 => ProblemSize,
        /// Declared timestep count (0 when open-ended).
        pub num_timesteps: i64 => NumTimesteps,
        /// Run date: year.
        pub year: i64 => Year,
        /// Run date: month.
        pub month: i64 => Month,
        /// Run date: day.
        pub day: i64 => Day,
        /// Run time: hour.
        pub hour: i64 => Hour,
        /// Run time: minute.
        pub min: i64 => Min,
    }
    // Both run_table indexes are ordered so the two hot aggregates
    // become index-edge peeks: `MAX(runid)` reads the last key of
    // `(runid)`, and "latest run of this application" reads the last
    // key of the `(application, runid)` bucket for that application —
    // neither visits a row.
    ordered {
        "run_table_runid" on (runid),
        "run_table_app_runid" on (application, runid),
    }
}

relation! {
    /// One `access_pattern_table` row: a dataset's declared attributes
    /// (the `SDM_set_attributes` step).
    pub struct AccessPatternRow in "access_pattern_table" as AccessPatternCol {
        /// Owning run.
        pub runid: i64 => Runid,
        /// Dataset name.
        pub dataset: String => Dataset,
        /// Basic access pattern class.
        pub basic_pattern: String => BasicPattern,
        /// Element type name.
        pub data_type: String => DataType,
        /// Storage order.
        pub storage_order: String => StorageOrder,
        /// Full access pattern.
        pub access_pattern: String => AccessPattern,
        /// Global element count.
        pub global_size: i64 => GlobalSize,
    }
    indexes { "access_pattern_runid" on runid }
}

relation! {
    /// One `execution_table` row: where a (dataset, timestep) landed —
    /// "the file offset for each data set is stored in the execution
    /// table by process 0".
    pub struct ExecutionRow in "execution_table" as ExecutionCol {
        /// Owning run.
        pub runid: i64 => Runid,
        /// Dataset name.
        pub dataset: String => Dataset,
        /// Timestep index.
        pub timestep: i64 => Timestep,
        /// Byte offset within the file.
        pub file_offset: i64 => FileOffset,
        /// File the burst landed in.
        pub file_name: String => FileName,
    }
    // The hot `(runid, dataset, timestep)` point lookup pins both
    // composite key columns, so it resolves to one exact bucket of the
    // ordered index; timestep-window queries (`runid = ? AND timestep
    // BETWEEN ? AND ?`) walk the same index as an equality-prefix +
    // range probe, and per-run top-k-by-timestep streams it backwards
    // with no sort. The hash timestep index keeps the transaction
    // section's DELETE/UPDATE-by-timestep probes O(1).
    indexes { "execution_timestep" on timestep }
    ordered { "execution_runid_timestep" on (runid, timestep) }
}

relation! {
    /// One `import_table` row: an imported array's metadata
    /// (`SDM_make_importlist`).
    pub struct ImportRow in "import_table" as ImportCol {
        /// Owning run.
        pub runid: i64 => Runid,
        /// Name the array is imported as.
        pub imported_name: String => ImportedName,
        /// Source file.
        pub file_name: String => FileName,
        /// Element type name.
        pub data_type: String => DataType,
        /// Storage order.
        pub storage_order: String => StorageOrder,
        /// Partitioning of the imported data.
        pub partition: String => Partition,
        /// What the file holds (e.g. `INDEX`).
        pub file_content: String => FileContent,
    }
    indexes { "import_runid" on runid }
}

relation! {
    /// One `index_table` row: a registered history file
    /// (`SDM_index_registry`), keyed by (problem size, process count).
    pub struct IndexRow in "index_table" as IndexCol {
        /// Problem size the history was partitioned for.
        pub problem_size: i64 => ProblemSize,
        /// Process count the history was partitioned for.
        pub num_procs: i64 => NumProcs,
        /// Spatial dimension.
        pub dimension: i64 => Dimension,
        /// The history file.
        pub registered_file_name: String => RegisteredFileName,
    }
    // Registry lookups key on (problem_size, num_procs): the composite
    // ordered index answers the exact pair as a point probe and a
    // problem-size-only query as a prefix walk.
    ordered { "index_table_psize_procs" on (problem_size, num_procs) }
}

relation! {
    /// One `index_history_table` row: one rank's block of a history
    /// file ([`crate::store::HistoryBlock`]).
    pub struct IndexHistoryRow in "index_history_table" as IndexHistoryCol {
        /// Problem size key.
        pub problem_size: i64 => ProblemSize,
        /// Process-count key.
        pub num_procs: i64 => NumProcs,
        /// Rank the block belongs to.
        pub rank: i64 => Rank,
        /// Partitioned edge count.
        pub edge_count: i64 => EdgeCount,
        /// Owned node count.
        pub node_count: i64 => NodeCount,
        /// Ghost node count.
        pub ghost_count: i64 => GhostCount,
        /// Byte offset of the block in the history file.
        pub file_offset: i64 => FileOffset,
        /// Byte length of the block.
        pub byte_len: i64 => ByteLen,
    }
    ordered { "index_history_psize_procs" on (problem_size, num_procs) }
}

/// The six tables of the paper's Figure 4, in creation order. Schema
/// setup iterates this; a future sharded store routes by these
/// descriptors.
pub const FIGURE4_TABLES: [&TableDesc; 6] = [
    &RunRow::TABLE,
    &AccessPatternRow::TABLE,
    &ExecutionRow::TABLE,
    &ImportRow::TABLE,
    &IndexRow::TABLE,
    &IndexHistoryRow::TABLE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_match_figure4_shapes() {
        assert_eq!(RunRow::TABLE.arity(), 10);
        assert_eq!(AccessPatternRow::TABLE.arity(), 7);
        assert_eq!(ExecutionRow::TABLE.arity(), 5);
        assert_eq!(ImportRow::TABLE.arity(), 7);
        assert_eq!(IndexRow::TABLE.arity(), 4);
        assert_eq!(IndexHistoryRow::TABLE.arity(), 8);
        let names: Vec<&str> = FIGURE4_TABLES.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            [
                "run_table",
                "access_pattern_table",
                "execution_table",
                "import_table",
                "index_table",
                "index_history_table"
            ]
        );
    }

    #[test]
    fn rows_round_trip() {
        let row = ExecutionRow {
            runid: 3,
            dataset: "p".into(),
            timestep: 9,
            file_offset: 4096,
            file_name: "f.dat".into(),
        };
        let cells = row.clone().into_row();
        assert_eq!(ExecutionRow::from_row(&cells).unwrap(), row);
    }

    #[test]
    fn hot_lookup_columns_are_indexed() {
        // Leading index columns serve equality and prefix probes.
        assert!(ExecutionRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.columns[0] == "runid"));
        assert!(RunRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.columns[0] == "application"));
        assert!(IndexRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.columns[0] == "problem_size"));
    }

    #[test]
    fn hot_probe_shapes_have_ordered_composites() {
        // (runid, timestep) lookups and timestep windows ride one
        // ordered composite on execution_table.
        assert!(ExecutionRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.ordered && ix.columns == ["runid", "timestep"]));
        // MAX(runid) and latest-run-of-application are index-edge peeks.
        assert!(RunRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.ordered && ix.columns == ["runid"]));
        assert!(RunRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.ordered && ix.columns == ["application", "runid"]));
        assert!(IndexHistoryRow::TABLE
            .indexes
            .iter()
            .any(|ix| ix.ordered && ix.columns == ["problem_size", "num_procs"]));
    }
}
