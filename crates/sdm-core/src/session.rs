//! The typed session API: dataset handles, the group builder, and RAII
//! timestep scopes.
//!
//! The paper's `SDM_*` surface is stringly typed: every `SDM_write`
//! resolves a dataset name and re-checks the element size. This module
//! replaces that with *resolve-once* constructs:
//!
//! * [`DatasetSlot`] / [`DatasetHandle`] — a dataset's resolved address
//!   (group index + slot). The typed form carries the element type, so
//!   buffer/dataset agreement is a compile-time property and the write
//!   hot path performs no string lookup and no size check.
//! * [`GroupBuilder`] — a fluent builder over [`Sdm::group`] replacing
//!   hand-assembled `Vec<DatasetDesc>`; one collective registers the
//!   whole group and the returned [`GroupRegistration`] resolves typed
//!   handles.
//! * [`TimestepScope`] — an RAII guard from [`Sdm::timestep`] that
//!   stages a step's dataset writes and lands them at scope close as
//!   one collective I/O burst, one `CachedStore` transaction, and
//!   exactly one metadata round-trip + sync (the paper's per-dataset
//!   cadence pays one of each per dataset).

use std::marker::PhantomData;

use sdm_mpi::pod::Pod;
use sdm_mpi::Comm;

use crate::dataset::DatasetDesc;
use crate::error::{SdmError, SdmResult};
use crate::sdm::{GroupHandle, Sdm};
use crate::types::{AccessPattern, SdmElem, SdmType, StorageOrder};

/// Untyped resolved address of one dataset: the group's index and the
/// dataset's slot within it. Copyable; valid for the lifetime of the
/// `Sdm` that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSlot {
    group: u32,
    slot: u32,
}

impl DatasetSlot {
    pub(crate) fn new(group: usize, slot: usize) -> Self {
        Self {
            group: group as u32,
            slot: slot as u32,
        }
    }

    /// The group this dataset belongs to.
    pub fn group_handle(&self) -> GroupHandle {
        GroupHandle(self.group as usize)
    }

    /// The dataset's slot within its group (registration order).
    pub fn index(&self) -> usize {
        self.slot as usize
    }
}

/// Typed, copyable dataset handle: a [`DatasetSlot`] whose element type
/// was checked against the dataset's declared [`SdmType`] at
/// resolution, so `write`/`read` through it need no per-call checks.
pub struct DatasetHandle<T: SdmElem> {
    slot: DatasetSlot,
    _elem: PhantomData<fn() -> T>,
}

impl<T: SdmElem> DatasetHandle<T> {
    pub(crate) fn new(slot: DatasetSlot) -> Self {
        Self {
            slot,
            _elem: PhantomData,
        }
    }

    /// The untyped address this handle wraps.
    pub fn slot(&self) -> DatasetSlot {
        self.slot
    }
}

impl<T: SdmElem> Clone for DatasetHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: SdmElem> Copy for DatasetHandle<T> {}

impl<T: SdmElem> std::fmt::Debug for DatasetHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetHandle")
            .field("group", &self.slot.group)
            .field("slot", &self.slot.slot)
            .field("type", &T::SDM_TYPE)
            .finish()
    }
}

impl<T: SdmElem> From<DatasetHandle<T>> for DatasetSlot {
    fn from(h: DatasetHandle<T>) -> Self {
        h.slot
    }
}

/// Fluent builder for a data group, from [`Sdm::group`].
///
/// Datasets are added with [`GroupBuilder::dataset`] (element type as a
/// type parameter) and modified in place by [`GroupBuilder::access`] /
/// [`GroupBuilder::order`], which apply to the most recently added
/// dataset. [`GroupBuilder::build`] registers the group's attributes in
/// one collective; [`GroupBuilder::attach`] re-registers a group a
/// previous run already recorded (no metadata rows written).
pub struct GroupBuilder<'a> {
    sdm: &'a mut Sdm,
    comm: &'a mut Comm,
    datasets: Vec<DatasetDesc>,
    /// First fluent-call misuse (e.g. `access()` before any
    /// `dataset()`), reported by `build()`/`attach()`.
    misuse: Option<String>,
}

impl<'a> GroupBuilder<'a> {
    pub(crate) fn new(sdm: &'a mut Sdm, comm: &'a mut Comm) -> Self {
        Self {
            sdm,
            comm,
            datasets: Vec::new(),
            misuse: None,
        }
    }

    /// Add a dataset of element type `T` with `global_size` elements
    /// (row-major, irregular access — the paper's common case; adjust
    /// with [`GroupBuilder::access`] / [`GroupBuilder::order`]).
    pub fn dataset<T: SdmElem>(self, name: impl Into<String>, global_size: u64) -> Self {
        self.dataset_desc(DatasetDesc {
            name: name.into(),
            data_type: T::SDM_TYPE,
            storage_order: StorageOrder::RowMajor,
            access_pattern: AccessPattern::Irregular,
            global_size,
        })
    }

    /// Add a dataset from an explicit descriptor (for element types
    /// only known at run time, e.g. the `sdm-sci` container layer).
    pub fn dataset_desc(mut self, desc: DatasetDesc) -> Self {
        self.datasets.push(desc);
        self
    }

    /// Set the access pattern of the most recently added dataset.
    pub fn access(mut self, pattern: AccessPattern) -> Self {
        match self.datasets.last_mut() {
            Some(d) => d.access_pattern = pattern,
            None => self.note_misuse("access() called before any dataset()"),
        }
        self
    }

    /// Set the storage order of the most recently added dataset.
    pub fn order(mut self, order: StorageOrder) -> Self {
        match self.datasets.last_mut() {
            Some(d) => d.storage_order = order,
            None => self.note_misuse("order() called before any dataset()"),
        }
        self
    }

    fn note_misuse(&mut self, what: &str) {
        if self.misuse.is_none() {
            self.misuse = Some(what.to_string());
        }
    }

    fn validate(&self) -> SdmResult<()> {
        if let Some(m) = &self.misuse {
            return Err(SdmError::Usage(m.clone()));
        }
        for (i, d) in self.datasets.iter().enumerate() {
            if self.datasets[..i].iter().any(|e| e.name == d.name) {
                return Err(SdmError::Usage(format!(
                    "duplicate dataset name {:?} in group",
                    d.name
                )));
            }
        }
        Ok(())
    }

    fn slots_of(datasets: &[DatasetDesc]) -> Vec<(String, SdmType)> {
        datasets
            .iter()
            .map(|d| (d.name.clone(), d.data_type))
            .collect()
    }

    /// Register the group: rank 0 stores the run row (first group only)
    /// and one `access_pattern_table` row per dataset, in one metadata
    /// sync. Collective.
    pub fn build(self) -> SdmResult<GroupRegistration> {
        self.validate()?;
        let GroupBuilder {
            sdm,
            comm,
            datasets,
            ..
        } = self;
        let slots = Self::slots_of(&datasets);
        let group = sdm.register_group(comm, datasets)?;
        Ok(GroupRegistration { group, slots })
    }

    /// Re-register a group whose metadata a previous run already
    /// recorded — no new rows are written. Groups must be re-attached
    /// in the original creation order for Level 3 file names to
    /// resolve. Collective.
    pub fn attach(self) -> SdmResult<GroupRegistration> {
        self.validate()?;
        let GroupBuilder {
            sdm,
            comm,
            datasets,
            ..
        } = self;
        let slots = Self::slots_of(&datasets);
        let group = sdm.reattach_group(comm, datasets)?;
        Ok(GroupRegistration { group, slots })
    }
}

/// The result of registering a data group: the group handle plus the
/// name/type table needed to resolve typed handles without touching the
/// `Sdm` again.
pub struct GroupRegistration {
    group: GroupHandle,
    slots: Vec<(String, SdmType)>,
}

impl GroupRegistration {
    /// The registered group's handle (Level 2/3 file names embed its
    /// index; the import path takes it).
    pub fn group(&self) -> GroupHandle {
        self.group
    }

    /// Number of datasets in the group.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the group has no datasets (never true for a built group).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Dataset names in slot order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|(n, _)| n.as_str())
    }

    /// Resolve a dataset name to its untyped slot.
    pub fn slot(&self, name: &str) -> SdmResult<DatasetSlot> {
        self.slots
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| DatasetSlot::new(self.group.0, i))
            .ok_or_else(|| SdmError::NoSuchDataset(name.to_string()))
    }

    /// Resolve a dataset name to a typed handle, checking `T` against
    /// the declared element type once.
    pub fn handle<T: SdmElem>(&self, name: &str) -> SdmResult<DatasetHandle<T>> {
        let s = self.slot(name)?;
        let declared = self.slots[s.index()].1;
        if declared != T::SDM_TYPE {
            return Err(SdmError::TypeMismatch {
                dataset: name.to_string(),
                declared,
                requested: T::SDM_TYPE,
            });
        }
        Ok(DatasetHandle::new(s))
    }
}

/// One staged dataset write inside a [`TimestepScope`]: the buffer is
/// already permuted to file order and viewed as raw bytes.
struct Staged {
    slot: DatasetSlot,
    bytes: Vec<u8>,
}

/// RAII scope for one timestep's writes, from [`Sdm::timestep`].
///
/// [`TimestepScope::write`] stages data (applying the dataset's view
/// permutation immediately, so errors surface at the call site); the
/// staged writes are issued when the scope closes — explicitly through
/// [`TimestepScope::commit`] (which reports errors) or implicitly on
/// drop (best-effort). Closing performs, in order:
///
/// 1. one collective I/O burst: every staged region is appended and
///    written back-to-back through the two-phase collective path;
/// 2. one `execution_table` insert per dataset on rank 0, flushed as a
///    **single store transaction**;
/// 3. exactly **one** metadata round-trip + clock sync and one barrier
///    — instead of one per dataset as on the legacy path.
///
/// All ranks of the communicator must stage the same datasets in the
/// same order (the writes are collective).
///
/// If any staging call failed, the scope is **poisoned**: dropping it
/// abandons everything staged so far instead of committing a partial
/// step (when every rank sees the same error, nothing lands anywhere
/// and the world stays collectively consistent).
pub struct TimestepScope<'a> {
    sdm: &'a mut Sdm,
    comm: &'a mut Comm,
    timestep: i64,
    staged: Vec<Staged>,
    closed: bool,
    poisoned: bool,
}

impl<'a> TimestepScope<'a> {
    pub(crate) fn new(sdm: &'a mut Sdm, comm: &'a mut Comm, timestep: i64) -> Self {
        Self {
            sdm,
            comm,
            timestep,
            staged: Vec::new(),
            closed: false,
            poisoned: false,
        }
    }

    /// The timestep this scope writes.
    pub fn timestep(&self) -> i64 {
        self.timestep
    }

    /// Number of writes staged so far.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Stage a typed write: `buf` (in the caller's local element order)
    /// is permuted to file order now and issued at scope close. No name
    /// lookup, no element-size check.
    pub fn write<T: SdmElem>(&mut self, h: DatasetHandle<T>, buf: &[T]) -> SdmResult<()> {
        self.stage(h.slot(), buf)
    }

    /// Stage a write through an untyped slot (element size checked at
    /// run time) — for layers whose dataset types are only known
    /// dynamically.
    pub fn write_slot<T: Pod>(&mut self, ds: impl Into<DatasetSlot>, buf: &[T]) -> SdmResult<()> {
        let s = ds.into();
        if let Err(e) = self.sdm.check_elem_size::<T>(s) {
            self.poisoned = true;
            return Err(e);
        }
        self.stage(s, buf)
    }

    fn stage<T: Pod>(&mut self, slot: DatasetSlot, buf: &[T]) -> SdmResult<()> {
        let staged = (|| {
            let view = self.sdm.slot_view(slot)?;
            Ok(Staged {
                slot,
                // One pass, one allocation: permute straight into the
                // staged byte buffer.
                bytes: view.to_file_order_bytes(buf)?,
            })
        })();
        match staged {
            Ok(s) => {
                self.staged.push(s);
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Close the scope, issuing the staged writes and reporting any
    /// error. Prefer this over dropping (drop closes best-effort, only
    /// when no staging call failed, and swallows errors). Committing a
    /// **poisoned** scope (one where a staging call failed) is refused:
    /// the partial step is discarded and the caller must retry the
    /// whole timestep with a fresh scope.
    pub fn commit(mut self) -> SdmResult<()> {
        self.closed = true;
        let staged = std::mem::take(&mut self.staged);
        if self.poisoned {
            return Err(SdmError::Usage(format!(
                "timestep scope {} is poisoned by an earlier staging error; \
                 retry the step with a fresh scope",
                self.timestep
            )));
        }
        Self::issue(self.sdm, self.comm, self.timestep, staged)
    }

    /// Close the scope without writing anything, discarding the staged
    /// data (e.g. after a mid-step application error).
    pub fn abandon(mut self) {
        self.closed = true;
        self.staged.clear();
    }

    /// Issue a batch of staged writes: the collective I/O burst, the
    /// single-transaction metadata landing, and the single sync.
    fn issue(sdm: &mut Sdm, comm: &mut Comm, timestep: i64, staged: Vec<Staged>) -> SdmResult<()> {
        if staged.is_empty() {
            return Ok(());
        }
        // ---- One collective I/O burst over all staged regions ----
        // Each dataset's execution row is recorded (rank 0) right after
        // its region lands, as on the legacy path, so a mid-burst error
        // leaves at most the failing dataset without metadata. The rows
        // only buffer in `CachedStore` here — the single transaction
        // and the single sync still happen once, below.
        let mut written: Vec<(DatasetSlot, String)> = Vec::with_capacity(staged.len());
        let burst = (|| {
            for w in &staged {
                let (file_name, base) = sdm.alloc_region(w.slot, timestep)?;
                sdm.open_cached(comm, w.slot.group_handle(), &file_name)?;
                let ftype = sdm.slot_view(w.slot)?.ftype.clone();
                {
                    let g = sdm.group_at_mut(w.slot.group_handle())?;
                    // analyze:allow(unwrap: open_cached inserted this key and the map is untouched since)
                    let f = g.open_files.get_mut(&file_name).expect("cached above");
                    f.set_view(comm, base, ftype)?;
                    f.write_all(comm, 0, &w.bytes)?;
                }
                if comm.rank() == 0 {
                    let name = &sdm.slot_desc(w.slot)?.name;
                    sdm.store.record_execution(
                        sdm.runid,
                        name,
                        timestep,
                        base as i64,
                        &file_name,
                    )?;
                }
                written.push((w.slot, file_name));
                comm.counters().incr("sdm.writes");
            }
            Ok(())
        })();
        if let Err(e) = burst {
            // The rows buffered so far describe regions that *did*
            // land; push them down now (best effort) so they cannot
            // leak into a later step's transaction and the written
            // data stays reachable through the metadata.
            if comm.rank() == 0 {
                let _ = sdm.store.flush();
            }
            return Err(e);
        }
        // ---- One store transaction for the step's execution rows ----
        if comm.rank() == 0 {
            // `CachedStore` lands the buffered batch in one
            // BEGIN…COMMIT; unbuffered stores already wrote row by row.
            sdm.store.flush()?;
        }
        // ---- Exactly one metadata round-trip + sync for the step ----
        Sdm::sync_metadata(&sdm.pfs, comm);
        comm.barrier();
        if sdm.cfg.org.opens_per_timestep() {
            // Level 1: dedicated per-(dataset, timestep) files, close
            // them now that the step is done.
            for (slot, file_name) in &written {
                if let Some(f) = sdm
                    .group_at_mut(slot.group_handle())?
                    .open_files
                    .remove(file_name)
                {
                    f.close(comm);
                }
            }
        }
        Ok(())
    }
}

impl Drop for TimestepScope<'_> {
    fn drop(&mut self) {
        if !self.closed && !self.poisoned && !std::thread::panicking() {
            let staged = std::mem::take(&mut self.staged);
            let _ = Self::issue(self.sdm, self.comm, self.timestep, staged);
        }
        // A poisoned scope — or one dropped during unwinding — abandons
        // its staged writes: committing a partial step after an error
        // would record a checkpoint the application believes was
        // aborted, and issuing collective I/O mid-panic would leave the
        // other ranks waiting at a rendezvous this rank never matches.
    }
}
