//! SDM error type.

use std::fmt;

use sdm_metadb::DbError;
use sdm_mpi::MpiError;
use sdm_pfs::PfsError;

/// Errors surfaced by the SDM API.
#[derive(Debug)]
pub enum SdmError {
    /// Message-passing / MPI-IO failure.
    Mpi(MpiError),
    /// File-system failure.
    Pfs(PfsError),
    /// Metadata-database failure.
    Db(DbError),
    /// Unknown dataset name within a group.
    NoSuchDataset(String),
    /// [`crate::Sdm::attach`] named a run id with no `run_table` row.
    NoSuchRun(i64),
    /// A typed handle was requested for a dataset of a different type.
    TypeMismatch {
        /// Dataset name.
        dataset: String,
        /// The dataset's declared metadata type.
        declared: crate::types::SdmType,
        /// The element type the caller asked for.
        requested: crate::types::SdmType,
    },
    /// Dataset used before a view was installed.
    NoView(String),
    /// A read asked for a (dataset, timestep) never written.
    NotWritten {
        /// Dataset name.
        dataset: String,
        /// Requested timestep.
        timestep: i64,
    },
    /// History file exists but is unusable (and fallback was disabled).
    BadHistory(String),
    /// API misuse (wrong sizes, wrong order of calls).
    Usage(String),
}

impl fmt::Display for SdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdmError::Mpi(e) => write!(f, "mpi: {e}"),
            SdmError::Pfs(e) => write!(f, "pfs: {e}"),
            SdmError::Db(e) => write!(f, "metadb: {e}"),
            SdmError::NoSuchDataset(n) => write!(f, "no such dataset: {n}"),
            SdmError::NoSuchRun(id) => write!(f, "no run with id {id} in run_table"),
            SdmError::TypeMismatch {
                dataset,
                declared,
                requested,
            } => write!(
                f,
                "dataset {dataset} is declared {declared:?} but a {requested:?} handle was requested"
            ),
            SdmError::NoView(n) => write!(f, "no data view installed for dataset: {n}"),
            SdmError::NotWritten { dataset, timestep } => {
                write!(f, "dataset {dataset} has no data at timestep {timestep}")
            }
            SdmError::BadHistory(m) => write!(f, "bad history file: {m}"),
            SdmError::Usage(m) => write!(f, "API misuse: {m}"),
        }
    }
}

impl std::error::Error for SdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdmError::Mpi(e) => Some(e),
            SdmError::Pfs(e) => Some(e),
            SdmError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpiError> for SdmError {
    fn from(e: MpiError) -> Self {
        SdmError::Mpi(e)
    }
}

impl From<PfsError> for SdmError {
    fn from(e: PfsError) -> Self {
        SdmError::Pfs(e)
    }
}

impl From<DbError> for SdmError {
    fn from(e: DbError) -> Self {
        SdmError::Db(e)
    }
}

/// Convenience alias.
pub type SdmResult<T> = Result<T, SdmError>;
