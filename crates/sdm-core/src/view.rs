//! Map-array data views.
//!
//! `SDM_data_view` hands SDM a *map array*: for each local element, its
//! global index in the file. The file view must be monotone, so the map
//! is sorted; the resulting permutation is remembered and applied to the
//! user's buffer on writes (and inverted on reads), keeping the user's
//! local element order intact while the file sees globally ordered data.

use sdm_mpi::datatype::{Datatype, Flattened};

use crate::error::{SdmError, SdmResult};
use crate::types::SdmType;

/// A compiled data view for one dataset.
#[derive(Debug, Clone)]
pub struct DataView {
    /// Sorted global indices (element units).
    pub sorted_map: Vec<u64>,
    /// `perm[k]` = position in the *user's local order* of the element
    /// that goes to `sorted_map[k]`'s file slot.
    pub perm: Vec<u32>,
    /// Flattened filetype built from `sorted_map` (element units scaled
    /// by the element size), relative to the dataset's base offset.
    pub ftype: Flattened,
    /// Element size in bytes.
    pub elem_size: u64,
}

impl DataView {
    /// Compile a map array. `global_len` is the dataset's global element
    /// count (for bounds checks); duplicate indices are rejected.
    pub fn compile(map: &[u64], global_len: u64, ty: SdmType) -> SdmResult<Self> {
        let mut idx: Vec<u32> = (0..map.len() as u32).collect();
        idx.sort_unstable_by_key(|&k| map[k as usize]);
        let sorted_map: Vec<u64> = idx.iter().map(|&k| map[k as usize]).collect();
        for w in sorted_map.windows(2) {
            if w[0] == w[1] {
                return Err(SdmError::Usage(format!(
                    "duplicate global index {} in map array",
                    w[0]
                )));
            }
        }
        if let Some(&last) = sorted_map.last() {
            if last >= global_len {
                return Err(SdmError::Usage(format!(
                    "map index {last} out of range for global size {global_len}"
                )));
            }
        }
        let elem = match ty {
            SdmType::Double => Datatype::double(),
            SdmType::Int32 => Datatype::int32(),
            SdmType::Int64 => Datatype::int64(),
        };
        let dtype = Datatype::resized(
            global_len * ty.size(),
            Datatype::indexed_block(1, sorted_map.clone(), elem),
        );
        let ftype = dtype.flatten()?;
        Ok(Self {
            sorted_map,
            perm: idx,
            ftype,
            elem_size: ty.size(),
        })
    }

    /// Local element count.
    pub fn len(&self) -> usize {
        self.sorted_map.len()
    }

    /// Whether the view selects nothing.
    pub fn is_empty(&self) -> bool {
        self.sorted_map.is_empty()
    }

    /// Reorder a user buffer (local order) into file order.
    pub fn to_file_order<T: Copy>(&self, user: &[T]) -> SdmResult<Vec<T>> {
        if user.len() != self.perm.len() {
            return Err(SdmError::Usage(format!(
                "buffer has {} elements but view selects {}",
                user.len(),
                self.perm.len()
            )));
        }
        Ok(self.perm.iter().map(|&k| user[k as usize]).collect())
    }

    /// [`DataView::to_file_order`], permuting straight into a byte
    /// buffer: one allocation and one pass, for callers (the timestep
    /// scope) that stage the result as raw bytes anyway.
    pub fn to_file_order_bytes<T: sdm_mpi::pod::Pod>(&self, user: &[T]) -> SdmResult<Vec<u8>> {
        if user.len() != self.perm.len() {
            return Err(SdmError::Usage(format!(
                "buffer has {} elements but view selects {}",
                user.len(),
                self.perm.len()
            )));
        }
        let esize = std::mem::size_of::<T>();
        let src = sdm_mpi::pod::as_bytes(user);
        let mut out = vec![0u8; std::mem::size_of_val(user)];
        for (k, &p) in self.perm.iter().enumerate() {
            let s = p as usize * esize;
            out[k * esize..(k + 1) * esize].copy_from_slice(&src[s..s + esize]);
        }
        Ok(out)
    }

    /// Scatter file-ordered data back into the user's local order.
    pub fn to_user_order<T: Copy + Default>(&self, file_ordered: &[T]) -> SdmResult<Vec<T>> {
        if file_ordered.len() != self.perm.len() {
            return Err(SdmError::Usage(format!(
                "file buffer has {} elements but view selects {}",
                file_ordered.len(),
                self.perm.len()
            )));
        }
        let mut out = vec![T::default(); file_ordered.len()];
        for (k, &p) in self.perm.iter().enumerate() {
            out[p as usize] = file_ordered[k];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_map_and_permutation() {
        // User holds globals [5, 1, 3] in that local order.
        let v = DataView::compile(&[5, 1, 3], 10, SdmType::Double).unwrap();
        assert_eq!(v.sorted_map, vec![1, 3, 5]);
        assert_eq!(v.perm, vec![1, 2, 0]);
        let file_order = v.to_file_order(&[50.0, 10.0, 30.0]).unwrap();
        assert_eq!(file_order, vec![10.0, 30.0, 50.0]);
        let back = v.to_user_order(&file_order).unwrap();
        assert_eq!(back, vec![50.0, 10.0, 30.0]);
    }

    #[test]
    fn ftype_segments_scaled_by_elem_size() {
        let v = DataView::compile(&[0, 1, 4], 6, SdmType::Double).unwrap();
        // 0,1 coalesce; 4 separate.
        assert_eq!(v.ftype.segments, vec![(0, 16), (32, 8)]);
        assert_eq!(v.ftype.extent, 48);
        let vi = DataView::compile(&[0, 1, 4], 6, SdmType::Int32).unwrap();
        assert_eq!(vi.ftype.segments, vec![(0, 8), (16, 4)]);
    }

    #[test]
    fn duplicates_rejected() {
        assert!(matches!(
            DataView::compile(&[1, 1], 4, SdmType::Double),
            Err(SdmError::Usage(_))
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(DataView::compile(&[9], 9, SdmType::Double).is_err());
        assert!(DataView::compile(&[8], 9, SdmType::Double).is_ok());
    }

    #[test]
    fn wrong_buffer_length_rejected() {
        let v = DataView::compile(&[0, 2], 4, SdmType::Double).unwrap();
        assert!(v.to_file_order(&[1.0]).is_err());
        assert!(v.to_user_order(&[1.0, 2.0, 3.0]).is_err());
        assert!(v.to_file_order_bytes(&[1.0]).is_err());
    }

    #[test]
    fn byte_permutation_matches_typed_permutation() {
        let v = DataView::compile(&[5, 1, 3], 10, SdmType::Double).unwrap();
        let user = [50.0f64, 10.0, 30.0];
        let typed = v.to_file_order(&user).unwrap();
        let bytes = v.to_file_order_bytes(&user).unwrap();
        assert_eq!(bytes, sdm_mpi::pod::as_bytes(&typed));
        let vi = DataView::compile(&[2, 0], 4, SdmType::Int32).unwrap();
        let ints = [7i32, -9];
        assert_eq!(
            vi.to_file_order_bytes(&ints).unwrap(),
            sdm_mpi::pod::as_bytes(&vi.to_file_order(&ints).unwrap())
        );
    }

    #[test]
    fn empty_view() {
        let v = DataView::compile(&[], 4, SdmType::Double).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(v.to_file_order::<f64>(&[]).unwrap().is_empty());
    }
}
