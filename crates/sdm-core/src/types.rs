//! Basic SDM attribute types (the annotation vocabulary of Figure 4).

use serde::{Deserialize, Serialize};

/// Element type of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdmType {
    /// C `double` (8 bytes) — the paper's DOUBLE.
    Double,
    /// C `int` (4 bytes) — the paper's INTEGER, used for index arrays.
    Int32,
    /// 8-byte integer.
    Int64,
}

impl SdmType {
    /// Element size in bytes.
    pub fn size(&self) -> u64 {
        match self {
            SdmType::Double | SdmType::Int64 => 8,
            SdmType::Int32 => 4,
        }
    }

    /// Name stored in the metadata tables.
    pub fn sql_name(&self) -> &'static str {
        match self {
            SdmType::Double => "DOUBLE",
            SdmType::Int32 => "INTEGER",
            SdmType::Int64 => "INTEGER8",
        }
    }
}

/// Storage order annotation (row-major everywhere in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StorageOrder {
    /// Row-major.
    #[default]
    RowMajor,
    /// Column-major.
    ColMajor,
}

impl StorageOrder {
    /// Name stored in the metadata tables.
    pub fn sql_name(&self) -> &'static str {
        match self {
            StorageOrder::RowMajor => "ROW_MAJOR",
            StorageOrder::ColMajor => "COL_MAJOR",
        }
    }
}

/// Access-pattern annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Irregular (map-array driven) — this paper's subject.
    #[default]
    Irregular,
    /// Regular block/cyclic (the companion SC2000 paper).
    Regular,
}

impl AccessPattern {
    /// Name stored in the metadata tables.
    pub fn sql_name(&self) -> &'static str {
        match self {
            AccessPattern::Irregular => "IRREGULAR",
            AccessPattern::Regular => "REGULAR",
        }
    }
}

/// A Rust element type with a fixed SDM attribute type.
///
/// This is the compile-time side of the typed session API: a
/// [`crate::DatasetHandle`]`<T>` can only be obtained for a dataset
/// whose declared [`SdmType`] matches `T::SDM_TYPE`, so `write`/`read`
/// through handles need no per-call element-size check — the agreement
/// between buffer type and dataset type is established once, at handle
/// resolution.
pub trait SdmElem: sdm_mpi::pod::Pod + Default {
    /// The metadata-table type this Rust type maps onto.
    const SDM_TYPE: SdmType;
}

impl SdmElem for f64 {
    const SDM_TYPE: SdmType = SdmType::Double;
}

impl SdmElem for i32 {
    const SDM_TYPE: SdmType = SdmType::Int32;
}

impl SdmElem for i64 {
    const SDM_TYPE: SdmType = SdmType::Int64;
}

/// What an imported file region contains (Figure 4's `file_content`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileContent {
    /// Index (indirection) arrays like `edge1`/`edge2`.
    Index,
    /// Physical data arrays like `x`/`y`.
    Data,
}

impl FileContent {
    /// Name stored in the metadata tables.
    pub fn sql_name(&self) -> &'static str {
        match self {
            FileContent::Index => "INDEX",
            FileContent::Data => "DATA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(SdmType::Double.size(), 8);
        assert_eq!(SdmType::Int32.size(), 4);
        assert_eq!(SdmType::Int64.size(), 8);
    }

    #[test]
    fn sql_names_match_figure4() {
        assert_eq!(SdmType::Double.sql_name(), "DOUBLE");
        assert_eq!(SdmType::Int32.sql_name(), "INTEGER");
        assert_eq!(StorageOrder::RowMajor.sql_name(), "ROW_MAJOR");
        assert_eq!(AccessPattern::Irregular.sql_name(), "IRREGULAR");
        assert_eq!(FileContent::Index.sql_name(), "INDEX");
        assert_eq!(FileContent::Data.sql_name(), "DATA");
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(StorageOrder::default(), StorageOrder::RowMajor);
        assert_eq!(AccessPattern::default(), AccessPattern::Irregular);
    }
}
