//! The SDM handle: initialize, attributes, views, write/read, finalize.
//!
//! Two API generations live here:
//!
//! * The **typed session API** (this module + [`crate::session`]):
//!   [`Sdm::group`] returns a [`crate::GroupBuilder`] that registers a
//!   data group and resolves typed [`crate::DatasetHandle`]s once;
//!   [`Sdm::timestep`] opens a [`crate::TimestepScope`] that stages a
//!   step's writes and lands them as one collective burst with one
//!   metadata sync. Handle-based `write_handle`/`read_handle` skip the
//!   per-call name lookup and element-size check entirely.
//! * The **paper-shaped veneer** (`set_attributes`, `data_view`,
//!   `write`, `read`): thin deprecated wrappers that resolve the dataset
//!   name through the group's name→slot index and delegate to the slot
//!   paths, kept so code written against the paper's `SDM_*` surface
//!   (and DESIGN.md's paper→module map) stays valid.

use std::collections::HashMap;
use std::sync::Arc;

use sdm_mpi::io::MpiFile;
use sdm_mpi::pod::Pod;
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::dataset::{DatasetDesc, ImportDesc};
use crate::error::{SdmError, SdmResult};
use crate::org::OrgLevel;
use crate::session::{DatasetHandle, DatasetSlot, GroupBuilder, TimestepScope};
use crate::store::{RunRecord, SharedStore};
use crate::types::SdmElem;
use crate::view::DataView;

/// Tunables for an SDM instance.
#[derive(Debug, Clone)]
pub struct SdmConfig {
    /// File organization for result datasets.
    pub org: OrgLevel,
    /// Modeled CPU cost of examining one edge during index partitioning
    /// (one pass). The original FUN3D import pays this twice per edge
    /// (count pass + read pass); SDM pays it once.
    pub per_edge_scan_cost: f64,
    /// Initial capacity of the doubling receive buffers.
    pub initial_buf_capacity: usize,
    /// Date recorded in `run_table` (year, month, day).
    pub run_date: (i64, i64, i64),
    /// Time recorded in `run_table` (hour, minute).
    pub run_time: (i64, i64),
    /// Spatial dimension recorded in the metadata.
    pub dimension: i64,
}

impl Default for SdmConfig {
    fn default() -> Self {
        Self {
            org: OrgLevel::Level2,
            per_edge_scan_cost: 100e-9,
            initial_buf_capacity: 1024,
            run_date: (2001, 2, 20), // the paper's arXiv date
            run_time: (12, 0),
            dimension: 3,
        }
    }
}

/// Handle to a data group created by [`Sdm::group`] (or the legacy
/// `set_attributes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupHandle(pub(crate) usize);

impl GroupHandle {
    /// The group's position in creation order. Group indices are part of
    /// Level 2/3 file names, so layers that re-attach to a previous run
    /// (e.g. `sdm-sci` containers) persist and replay them.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One data group: datasets sharing attributes and (under Level 3) a file.
pub(crate) struct DataGroup {
    pub(crate) datasets: Vec<DatasetDesc>,
    /// Name → dataset slot. Built once at registration so name
    /// resolution (the compat veneer, `attach_group`, handle lookup) is
    /// a hash probe instead of a linear scan over the descriptors.
    pub(crate) by_name: HashMap<String, usize>,
    /// Installed views, indexed by dataset slot (the hot path never
    /// touches a dataset name).
    pub(crate) views: Vec<Option<DataView>>,
    /// Rank-local cache of open files (Level 2/3 keep files open across
    /// timesteps — that is the point of those levels).
    pub(crate) open_files: HashMap<String, MpiFile>,
    /// Append cursor per file (bytes). Updated identically on all ranks.
    pub(crate) append_offsets: HashMap<String, u64>,
    pub(crate) imports: Vec<ImportDesc>,
}

impl DataGroup {
    pub(crate) fn new(datasets: Vec<DatasetDesc>) -> Self {
        let mut by_name = HashMap::with_capacity(datasets.len());
        for (i, d) in datasets.iter().enumerate() {
            // First declaration wins, matching the old linear `find`.
            by_name.entry(d.name.clone()).or_insert(i);
        }
        let views = datasets.iter().map(|_| None).collect();
        Self {
            datasets,
            by_name,
            views,
            open_files: HashMap::new(),
            append_offsets: HashMap::new(),
            imports: Vec::new(),
        }
    }

    pub(crate) fn slot_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

/// The per-rank SDM instance (the paper's `handle`).
pub struct Sdm {
    pub(crate) pfs: Arc<Pfs>,
    pub(crate) store: SharedStore,
    pub(crate) app: String,
    pub(crate) runid: i64,
    pub(crate) cfg: SdmConfig,
    pub(crate) groups: Vec<DataGroup>,
    /// Whether this run's `run_table` row is complete yet (the first
    /// group registration or an explicit `record_run` fills it in).
    pub(crate) run_recorded: bool,
}

impl Sdm {
    /// `SDM_initialize`: connect to the metadata store, create the six
    /// metadata tables, and agree on a run id. Collective.
    pub fn initialize(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        application: &str,
    ) -> SdmResult<Self> {
        Self::initialize_with(comm, pfs, store, application, SdmConfig::default())
    }

    /// [`Sdm::initialize`] with explicit configuration.
    pub fn initialize_with(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        application: &str,
        cfg: SdmConfig,
    ) -> SdmResult<Self> {
        let runid = if comm.rank() == 0 {
            store.ensure_schema()?;
            store.allocate_runid(application)?
        } else {
            0
        };
        // Everyone charges the DB round trip; rank 0's id wins.
        Self::sync_metadata(pfs, comm);
        let runid = comm.bcast(0, &[runid])?[0];
        Ok(Self {
            pfs: Arc::clone(pfs),
            store: Arc::clone(store),
            app: application.to_string(),
            runid,
            cfg,
            groups: Vec::new(),
            run_recorded: false,
        })
    }

    /// Attach to an *existing* run's metadata instead of opening a new
    /// run: no new `run_table` row is created and reads resolve against
    /// `runid`'s execution records. This is how post-processing tools
    /// (the visualization support the paper's summary plans, and the
    /// `sdm-sci` containers built on SDM) reopen data a previous run
    /// wrote. Rank 0 verifies the run id actually has a `run_table` row;
    /// attaching to a never-recorded id fails with
    /// [`SdmError::NoSuchRun`] on every rank. Collective.
    pub fn attach(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        application: &str,
        runid: i64,
        cfg: SdmConfig,
    ) -> SdmResult<Self> {
        let exists = if comm.rank() == 0 {
            store.ensure_schema()?;
            i64::from(store.run_exists(runid)?)
        } else {
            0
        };
        Self::sync_metadata(pfs, comm);
        let exists = comm.bcast(0, &[exists])?[0] != 0;
        comm.barrier();
        if !exists {
            return Err(SdmError::NoSuchRun(runid));
        }
        Ok(Self {
            pfs: Arc::clone(pfs),
            store: Arc::clone(store),
            app: application.to_string(),
            runid,
            cfg,
            groups: Vec::new(),
            run_recorded: true, // the original run wrote the row
        })
    }

    /// This run's id in the metadata tables.
    pub fn runid(&self) -> i64 {
        self.runid
    }

    /// The configuration in force.
    pub fn config(&self) -> &SdmConfig {
        &self.cfg
    }

    /// The application name.
    pub fn application(&self) -> &str {
        &self.app
    }

    /// The file system data goes to.
    pub fn pfs(&self) -> &Arc<Pfs> {
        &self.pfs
    }

    /// The metadata store.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Charge one metadata-server round trip and synchronize the
    /// caller's clock to it. Every metadata sync in SDM funnels through
    /// here so the `sdm.metadata_syncs` counter is an exact count —
    /// `bench_metadb` asserts the scoped write path performs exactly one
    /// per timestep.
    pub(crate) fn sync_metadata(pfs: &Arc<Pfs>, comm: &mut Comm) {
        let t = pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        comm.counters().incr("sdm.metadata_syncs");
    }

    pub(crate) fn group_at(&self, h: GroupHandle) -> SdmResult<&DataGroup> {
        self.groups
            .get(h.0)
            .ok_or_else(|| SdmError::Usage(format!("bad group handle {}", h.0)))
    }

    pub(crate) fn group_at_mut(&mut self, h: GroupHandle) -> SdmResult<&mut DataGroup> {
        self.groups
            .get_mut(h.0)
            .ok_or_else(|| SdmError::Usage(format!("bad group handle {}", h.0)))
    }

    /// Resolve a dataset name to its slot in a group (one hash probe
    /// against the group's name index).
    pub fn resolve(&self, h: GroupHandle, dataset: &str) -> SdmResult<DatasetSlot> {
        let g = self.group_at(h)?;
        let slot = g
            .slot_of(dataset)
            .ok_or_else(|| SdmError::NoSuchDataset(dataset.to_string()))?;
        Ok(DatasetSlot::new(h.0, slot))
    }

    /// Resolve a dataset name to a typed handle, checking the element
    /// type once so handle-based writes and reads never re-check it.
    pub fn resolve_typed<T: SdmElem>(
        &self,
        h: GroupHandle,
        dataset: &str,
    ) -> SdmResult<DatasetHandle<T>> {
        let slot = self.resolve(h, dataset)?;
        let d = self.slot_desc(slot)?;
        if d.data_type != T::SDM_TYPE {
            return Err(SdmError::TypeMismatch {
                dataset: d.name.clone(),
                declared: d.data_type,
                requested: T::SDM_TYPE,
            });
        }
        Ok(DatasetHandle::new(slot))
    }

    pub(crate) fn slot_desc(&self, s: DatasetSlot) -> SdmResult<&DatasetDesc> {
        self.group_at(s.group_handle())?
            .datasets
            .get(s.index())
            .ok_or_else(|| SdmError::Usage(format!("bad dataset slot {}", s.index())))
    }

    pub(crate) fn slot_view(&self, s: DatasetSlot) -> SdmResult<&DataView> {
        self.group_at(s.group_handle())?
            .views
            .get(s.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| {
                let name = self
                    .slot_desc(s)
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|_| format!("slot {}", s.index()));
                SdmError::NoView(name)
            })
    }

    /// Start building a data group: add datasets fluently, then
    /// [`crate::GroupBuilder::build`] registers them in one collective
    /// and returns resolve-once typed handles.
    ///
    /// ```ignore
    /// let g = sdm
    ///     .group(comm)
    ///     .dataset::<f64>("pressure", n)
    ///     .access(AccessPattern::Irregular)
    ///     .dataset::<f64>("q", n)
    ///     .build()?;
    /// let hp = g.handle::<f64>("pressure")?;
    /// ```
    pub fn group<'s>(&'s mut self, comm: &'s mut Comm) -> GroupBuilder<'s> {
        GroupBuilder::new(self, comm)
    }

    /// Open an RAII scope for one timestep's writes: every
    /// [`crate::TimestepScope::write`] stages data, and closing the
    /// scope issues the staged writes as one collective I/O burst with
    /// exactly one metadata round-trip + sync and one store transaction
    /// — instead of one of each per dataset.
    pub fn timestep<'s>(&'s mut self, comm: &'s mut Comm, timestep: i64) -> TimestepScope<'s> {
        TimestepScope::new(self, comm, timestep)
    }

    /// Register a data group (shared by [`crate::GroupBuilder::build`]
    /// and the deprecated `set_attributes`). Rank 0 stores the run row
    /// (first group only) and one `access_pattern_table` row per
    /// dataset. Collective.
    pub(crate) fn register_group(
        &mut self,
        comm: &mut Comm,
        datasets: Vec<DatasetDesc>,
    ) -> SdmResult<GroupHandle> {
        if datasets.is_empty() {
            return Err(SdmError::Usage(
                "a data group needs at least one dataset".into(),
            ));
        }
        if comm.rank() == 0 {
            if !self.run_recorded {
                self.store.record_run(&RunRecord {
                    runid: self.runid,
                    application: self.app.clone(),
                    dimension: self.cfg.dimension,
                    problem_size: datasets[0].global_size as i64,
                    num_timesteps: 0,
                    date: self.cfg.run_date,
                    time: self.cfg.run_time,
                })?;
            }
            for d in &datasets {
                self.store.record_access_pattern(
                    self.runid,
                    &d.name,
                    d.data_type.sql_name(),
                    d.storage_order.sql_name(),
                    d.access_pattern.sql_name(),
                    d.global_size as i64,
                )?;
            }
        }
        Self::sync_metadata(&self.pfs, comm);
        comm.barrier();
        self.run_recorded = true;
        self.groups.push(DataGroup::new(datasets));
        Ok(GroupHandle(self.groups.len() - 1))
    }

    /// Rebuild a data group for datasets whose metadata a *previous* run
    /// already recorded — no new rows are written (shared by
    /// [`crate::GroupBuilder::attach`] and the deprecated
    /// `attach_group`). Collective; handles are assigned in call order,
    /// so callers must re-register groups in the original creation
    /// order for Level 3 file names to resolve.
    pub(crate) fn reattach_group(
        &mut self,
        comm: &mut Comm,
        datasets: Vec<DatasetDesc>,
    ) -> SdmResult<GroupHandle> {
        if datasets.is_empty() {
            return Err(SdmError::Usage(
                "a data group needs at least one dataset".into(),
            ));
        }
        comm.barrier();
        self.groups.push(DataGroup::new(datasets));
        Ok(GroupHandle(self.groups.len() - 1))
    }

    /// Write this run's `run_table` row explicitly (normally the first
    /// group registration does it). Container layers use this so an
    /// empty container is still discoverable by `latest_runid_for_app`.
    /// Collective; idempotent.
    pub fn record_run(&mut self, comm: &mut Comm, problem_size: u64) -> SdmResult<()> {
        if comm.rank() == 0 && !self.run_recorded {
            self.store.record_run(&RunRecord {
                runid: self.runid,
                application: self.app.clone(),
                dimension: self.cfg.dimension,
                problem_size: problem_size as i64,
                num_timesteps: 0,
                date: self.cfg.run_date,
                time: self.cfg.run_time,
            })?;
        }
        Self::sync_metadata(&self.pfs, comm);
        comm.barrier();
        self.run_recorded = true;
        Ok(())
    }

    /// Install the map array for a dataset: `map[i]` is the global
    /// element index of the caller's `i`-th local element. The typed
    /// successor of the paper's `SDM_data_view`.
    pub fn set_view(
        &mut self,
        comm: &mut Comm,
        ds: impl Into<DatasetSlot>,
        map: &[u64],
    ) -> SdmResult<()> {
        let s = ds.into();
        let (global_size, ty) = {
            let d = self.slot_desc(s)?;
            (d.global_size, d.data_type)
        };
        let view = DataView::compile(map, global_size, ty)?;
        // Sorting/compiling the map costs CPU proportional to its size.
        comm.compute(map.len() as f64 * self.cfg.per_edge_scan_cost * 0.2);
        self.group_at_mut(s.group_handle())?.views[s.index()] = Some(view);
        Ok(())
    }

    pub(crate) fn open_cached(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        file_name: &str,
    ) -> SdmResult<()> {
        if !self.group_at(h)?.open_files.contains_key(file_name) {
            let f = MpiFile::open_collective(comm, &self.pfs, file_name, true)?;
            self.group_at_mut(h)?
                .open_files
                .insert(file_name.to_string(), f);
        }
        Ok(())
    }

    /// Collectively write a dataset at a timestep through its installed
    /// view, with one metadata sync (legacy per-dataset cadence). `buf`
    /// is in the caller's local element order; its element size is
    /// checked against the dataset's declared type at run time — use
    /// [`Sdm::write_handle`] to settle that agreement at handle
    /// resolution instead.
    pub fn write_slot<T: Pod>(
        &mut self,
        comm: &mut Comm,
        ds: impl Into<DatasetSlot>,
        timestep: i64,
        buf: &[T],
    ) -> SdmResult<()> {
        let s = ds.into();
        self.check_elem_size::<T>(s)?;
        self.write_unchecked(comm, s, timestep, buf)
    }

    /// [`Sdm::write_slot`] through a typed handle: no name lookup, no
    /// element-size check — both were settled when the handle was
    /// resolved.
    pub fn write_handle<T: SdmElem>(
        &mut self,
        comm: &mut Comm,
        h: DatasetHandle<T>,
        timestep: i64,
        buf: &[T],
    ) -> SdmResult<()> {
        self.write_unchecked(comm, h.slot(), timestep, buf)
    }

    /// Collectively read back a dataset written in this run. The
    /// installed view selects which elements this rank receives, in its
    /// local order. Element size is checked at run time.
    pub fn read_slot<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        ds: impl Into<DatasetSlot>,
        timestep: i64,
        out: &mut [T],
    ) -> SdmResult<()> {
        let s = ds.into();
        self.check_elem_size::<T>(s)?;
        self.read_unchecked(comm, s, timestep, out)
    }

    /// [`Sdm::read_slot`] through a typed handle: no name lookup, no
    /// element-size check.
    pub fn read_handle<T: SdmElem>(
        &mut self,
        comm: &mut Comm,
        h: DatasetHandle<T>,
        timestep: i64,
        out: &mut [T],
    ) -> SdmResult<()> {
        self.read_unchecked(comm, h.slot(), timestep, out)
    }

    pub(crate) fn check_elem_size<T: Pod>(&self, s: DatasetSlot) -> SdmResult<()> {
        let d = self.slot_desc(s)?;
        if std::mem::size_of::<T>() as u64 != d.data_type.size() {
            return Err(SdmError::Usage(format!(
                "element size {} does not match dataset type ({} bytes)",
                std::mem::size_of::<T>(),
                d.data_type.size()
            )));
        }
        Ok(())
    }

    /// Allocate the base offset for one (dataset, timestep) region and
    /// return `(file_name, base)`. Level 1 writes at 0 in a dedicated
    /// file; Level 2/3 append one full global-array region.
    pub(crate) fn alloc_region(
        &mut self,
        s: DatasetSlot,
        timestep: i64,
    ) -> SdmResult<(String, u64)> {
        let (file_name, global_bytes) = {
            let d = self.slot_desc(s)?;
            (
                self.cfg
                    .org
                    .file_name(&self.app, s.group_handle().0, &d.name, timestep),
                d.global_size * d.data_type.size(),
            )
        };
        let g = self.group_at_mut(s.group_handle())?;
        let cursor = g.append_offsets.entry(file_name.clone()).or_insert(0);
        let base = *cursor;
        *cursor += global_bytes;
        Ok((file_name, base))
    }

    fn write_unchecked<T: Pod>(
        &mut self,
        comm: &mut Comm,
        s: DatasetSlot,
        timestep: i64,
        buf: &[T],
    ) -> SdmResult<()> {
        let (file_name, base) = self.alloc_region(s, timestep)?;
        self.open_cached(comm, s.group_handle(), &file_name)?;
        let (file_ordered, ftype) = {
            let view = self.slot_view(s)?;
            (view.to_file_order(buf)?, view.ftype.clone())
        };
        {
            let g = self.group_at_mut(s.group_handle())?;
            // analyze:allow(unwrap: open_cached inserted this key and the map is untouched since)
            let f = g.open_files.get_mut(&file_name).expect("cached above");
            f.set_view(comm, base, ftype)?;
            f.write_all(comm, 0, &file_ordered)?;
        }
        if comm.rank() == 0 {
            let name = &self.slot_desc(s)?.name;
            self.store
                .record_execution(self.runid, name, timestep, base as i64, &file_name)?;
        }
        Self::sync_metadata(&self.pfs, comm);
        // The offset row must be visible before any rank can issue a
        // read for this (dataset, timestep) — reads look it up on every
        // rank, not just rank 0.
        comm.barrier();
        if self.cfg.org.opens_per_timestep() {
            // Level 1: dedicated file, close it now.
            let f = self
                .group_at_mut(s.group_handle())?
                .open_files
                .remove(&file_name)
                // analyze:allow(unwrap: open_cached inserted this key and the map is untouched since)
                .expect("cached above");
            f.close(comm);
        }
        comm.counters().incr("sdm.writes");
        Ok(())
    }

    fn read_unchecked<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        s: DatasetSlot,
        timestep: i64,
        out: &mut [T],
    ) -> SdmResult<()> {
        let name = self.slot_desc(s)?.name.clone();
        let hit = self.store.lookup_execution(self.runid, &name, timestep)?;
        Self::sync_metadata(&self.pfs, comm);
        let (base, file_name) = hit.ok_or(SdmError::NotWritten {
            dataset: name,
            timestep,
        })?;
        self.open_cached(comm, s.group_handle(), &file_name)?;
        let ftype = {
            let view = self.slot_view(s)?;
            if view.len() != out.len() {
                return Err(SdmError::Usage(format!(
                    "output buffer has {} elements but the view selects {}",
                    out.len(),
                    view.len()
                )));
            }
            view.ftype.clone()
        };
        let mut file_ordered = vec![T::default(); out.len()];
        {
            let g = self.group_at_mut(s.group_handle())?;
            // analyze:allow(unwrap: open_cached inserted this key and the map is untouched since)
            let f = g.open_files.get_mut(&file_name).expect("cached above");
            f.set_view(comm, base as u64, ftype)?;
            f.read_all(comm, 0, &mut file_ordered)?;
        }
        // analyze:allow(unwrap: slot_view succeeded a few lines up and no slot was dropped since)
        let view = self.slot_view(s).expect("checked above");
        let user = view.to_user_order(&file_ordered)?;
        out.copy_from_slice(&user);
        if self.cfg.org.opens_per_timestep() {
            let f = self
                .group_at_mut(s.group_handle())?
                .open_files
                .remove(&file_name)
                // analyze:allow(unwrap: open_cached inserted this key and the map is untouched since)
                .expect("cached above");
            f.close(comm);
        }
        comm.counters().incr("sdm.reads");
        Ok(())
    }

    /// `SDM_finalize`: close every cached file, push buffered metadata
    /// down to the database, and synchronize.
    pub fn finalize(mut self, comm: &mut Comm) -> SdmResult<()> {
        for g in &mut self.groups {
            for (_, f) in g.open_files.drain() {
                f.close(comm);
            }
        }
        if comm.rank() == 0 {
            self.store.flush()?;
        }
        comm.barrier();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Paper-shaped veneer (deprecated): the `SDM_*` call surface, kept
    // as thin delegates so DESIGN.md's paper→module map stays valid.
    // ------------------------------------------------------------------

    /// `SDM_set_attributes`: register a data group from hand-assembled
    /// descriptors. Collective.
    #[deprecated(note = "build groups with `Sdm::group(comm)…build()` and use typed handles")]
    pub fn set_attributes(
        &mut self,
        comm: &mut Comm,
        datasets: Vec<DatasetDesc>,
    ) -> SdmResult<GroupHandle> {
        self.register_group(comm, datasets)
    }

    /// Legacy form of [`crate::GroupBuilder::attach`]. Collective.
    #[deprecated(note = "re-attach groups with `Sdm::group(comm)…attach()`")]
    pub fn attach_group(
        &mut self,
        comm: &mut Comm,
        datasets: Vec<DatasetDesc>,
    ) -> SdmResult<GroupHandle> {
        self.reattach_group(comm, datasets)
    }

    /// `SDM_data_view`: install the map array for a named dataset.
    #[deprecated(note = "use `Sdm::set_view` with a resolved handle")]
    pub fn data_view(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        dataset: &str,
        map: &[u64],
    ) -> SdmResult<()> {
        let s = self.resolve(h, dataset)?;
        self.set_view(comm, s, map)
    }

    /// `SDM_write`: collectively write a named dataset at a timestep
    /// through its installed view.
    #[deprecated(note = "use `Sdm::write_handle` or a `TimestepScope` (`Sdm::timestep`)")]
    pub fn write<T: Pod>(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        dataset: &str,
        timestep: i64,
        buf: &[T],
    ) -> SdmResult<()> {
        let s = self.resolve(h, dataset)?;
        self.write_slot(comm, s, timestep, buf)
    }

    /// `SDM_read`: collectively read back a named dataset written in
    /// this run.
    #[deprecated(note = "use `Sdm::read_handle` or `Sdm::read_slot`")]
    pub fn read<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        dataset: &str,
        timestep: i64,
        out: &mut [T],
    ) -> SdmResult<()> {
        let s = self.resolve(h, dataset)?;
        self.read_slot(comm, s, timestep, out)
    }
}
