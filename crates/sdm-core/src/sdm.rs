//! The SDM handle: initialize, attributes, views, write/read, finalize.

use std::collections::HashMap;
use std::sync::Arc;

use sdm_mpi::io::MpiFile;
use sdm_mpi::pod::Pod;
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::dataset::{DatasetDesc, ImportDesc};
use crate::error::{SdmError, SdmResult};
use crate::org::OrgLevel;
use crate::store::{RunRecord, SharedStore};
use crate::view::DataView;

/// Tunables for an SDM instance.
#[derive(Debug, Clone)]
pub struct SdmConfig {
    /// File organization for result datasets.
    pub org: OrgLevel,
    /// Modeled CPU cost of examining one edge during index partitioning
    /// (one pass). The original FUN3D import pays this twice per edge
    /// (count pass + read pass); SDM pays it once.
    pub per_edge_scan_cost: f64,
    /// Initial capacity of the doubling receive buffers.
    pub initial_buf_capacity: usize,
    /// Date recorded in `run_table` (year, month, day).
    pub run_date: (i64, i64, i64),
    /// Time recorded in `run_table` (hour, minute).
    pub run_time: (i64, i64),
    /// Spatial dimension recorded in the metadata.
    pub dimension: i64,
}

impl Default for SdmConfig {
    fn default() -> Self {
        Self {
            org: OrgLevel::Level2,
            per_edge_scan_cost: 100e-9,
            initial_buf_capacity: 1024,
            run_date: (2001, 2, 20), // the paper's arXiv date
            run_time: (12, 0),
            dimension: 3,
        }
    }
}

/// Handle to a data group created by `set_attributes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupHandle(pub(crate) usize);

impl GroupHandle {
    /// The group's position in creation order. Group indices are part of
    /// Level 2/3 file names, so layers that re-attach to a previous run
    /// (e.g. `sdm-sci` containers) persist and replay them.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One data group: datasets sharing attributes and (under Level 3) a file.
pub(crate) struct DataGroup {
    pub(crate) datasets: Vec<DatasetDesc>,
    pub(crate) views: HashMap<String, DataView>,
    /// Rank-local cache of open files (Level 2/3 keep files open across
    /// timesteps — that is the point of those levels).
    pub(crate) open_files: HashMap<String, MpiFile>,
    /// Append cursor per file (bytes). Updated identically on all ranks.
    pub(crate) append_offsets: HashMap<String, u64>,
    pub(crate) imports: Vec<ImportDesc>,
}

/// The per-rank SDM instance (the paper's `handle`).
pub struct Sdm {
    pub(crate) pfs: Arc<Pfs>,
    pub(crate) store: SharedStore,
    pub(crate) app: String,
    pub(crate) runid: i64,
    pub(crate) cfg: SdmConfig,
    pub(crate) groups: Vec<DataGroup>,
    /// Whether this run's `run_table` row is complete yet (the first
    /// `set_attributes` or an explicit `record_run` fills it in).
    pub(crate) run_recorded: bool,
}

impl Sdm {
    /// `SDM_initialize`: connect to the metadata store, create the six
    /// metadata tables, and agree on a run id. Collective.
    pub fn initialize(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        application: &str,
    ) -> SdmResult<Self> {
        Self::initialize_with(comm, pfs, store, application, SdmConfig::default())
    }

    /// [`Sdm::initialize`] with explicit configuration.
    pub fn initialize_with(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        application: &str,
        cfg: SdmConfig,
    ) -> SdmResult<Self> {
        let runid = if comm.rank() == 0 {
            store.ensure_schema()?;
            store.allocate_runid(application)?
        } else {
            0
        };
        // Everyone charges the DB round trip; rank 0's id wins.
        let t = pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        let runid = comm.bcast(0, &[runid])?[0];
        Ok(Self {
            pfs: Arc::clone(pfs),
            store: Arc::clone(store),
            app: application.to_string(),
            runid,
            cfg,
            groups: Vec::new(),
            run_recorded: false,
        })
    }

    /// Attach to an *existing* run's metadata instead of opening a new
    /// run: no new `run_table` row is created and reads resolve against
    /// `runid`'s execution records. This is how post-processing tools
    /// (the visualization support the paper's summary plans, and the
    /// `sdm-sci` containers built on SDM) reopen data a previous run
    /// wrote. Collective.
    pub fn attach(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        application: &str,
        runid: i64,
        cfg: SdmConfig,
    ) -> SdmResult<Self> {
        if comm.rank() == 0 {
            store.ensure_schema()?;
        }
        let t = pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        comm.barrier();
        Ok(Self {
            pfs: Arc::clone(pfs),
            store: Arc::clone(store),
            app: application.to_string(),
            runid,
            cfg,
            groups: Vec::new(),
            run_recorded: true, // the original run wrote the row
        })
    }

    /// This run's id in the metadata tables.
    pub fn runid(&self) -> i64 {
        self.runid
    }

    /// The configuration in force.
    pub fn config(&self) -> &SdmConfig {
        &self.cfg
    }

    /// The application name.
    pub fn application(&self) -> &str {
        &self.app
    }

    /// The file system data goes to.
    pub fn pfs(&self) -> &Arc<Pfs> {
        &self.pfs
    }

    /// The metadata store.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    pub(crate) fn group(&self, h: GroupHandle) -> SdmResult<&DataGroup> {
        self.groups
            .get(h.0)
            .ok_or_else(|| SdmError::Usage(format!("bad group handle {}", h.0)))
    }

    pub(crate) fn group_mut(&mut self, h: GroupHandle) -> SdmResult<&mut DataGroup> {
        self.groups
            .get_mut(h.0)
            .ok_or_else(|| SdmError::Usage(format!("bad group handle {}", h.0)))
    }

    pub(crate) fn dataset<'a>(group: &'a DataGroup, name: &str) -> SdmResult<&'a DatasetDesc> {
        group
            .datasets
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| SdmError::NoSuchDataset(name.to_string()))
    }

    /// `SDM_set_attributes`: register a data group. Rank 0 stores the run
    /// row (first group only) and one `access_pattern_table` row per
    /// dataset. Collective.
    pub fn set_attributes(
        &mut self,
        comm: &mut Comm,
        datasets: Vec<DatasetDesc>,
    ) -> SdmResult<GroupHandle> {
        if datasets.is_empty() {
            return Err(SdmError::Usage(
                "a data group needs at least one dataset".into(),
            ));
        }
        if comm.rank() == 0 {
            if !self.run_recorded {
                self.store.record_run(&RunRecord {
                    runid: self.runid,
                    application: self.app.clone(),
                    dimension: self.cfg.dimension,
                    problem_size: datasets[0].global_size as i64,
                    num_timesteps: 0,
                    date: self.cfg.run_date,
                    time: self.cfg.run_time,
                })?;
            }
            for d in &datasets {
                self.store.record_access_pattern(
                    self.runid,
                    &d.name,
                    d.data_type.sql_name(),
                    d.storage_order.sql_name(),
                    d.access_pattern.sql_name(),
                    d.global_size as i64,
                )?;
            }
        }
        let t = self.pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        comm.barrier();
        self.run_recorded = true;
        self.groups.push(DataGroup {
            datasets,
            views: HashMap::new(),
            open_files: HashMap::new(),
            append_offsets: HashMap::new(),
            imports: Vec::new(),
        });
        Ok(GroupHandle(self.groups.len() - 1))
    }

    /// Write this run's `run_table` row explicitly (normally the first
    /// `set_attributes` does it). Container layers use this so an empty
    /// container is still discoverable by `latest_runid_for_app`.
    /// Collective; idempotent.
    pub fn record_run(&mut self, comm: &mut Comm, problem_size: u64) -> SdmResult<()> {
        if comm.rank() == 0 && !self.run_recorded {
            self.store.record_run(&RunRecord {
                runid: self.runid,
                application: self.app.clone(),
                dimension: self.cfg.dimension,
                problem_size: problem_size as i64,
                num_timesteps: 0,
                date: self.cfg.run_date,
                time: self.cfg.run_time,
            })?;
        }
        let t = self.pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        comm.barrier();
        self.run_recorded = true;
        Ok(())
    }

    /// Rebuild a data-group handle for datasets whose metadata a
    /// *previous* run already recorded — no new rows are written. Used
    /// together with [`Sdm::attach`] when reopening existing data.
    /// Collective; handles are assigned in call order, so callers must
    /// re-register groups in the original creation order for Level 3
    /// file names to resolve.
    pub fn attach_group(
        &mut self,
        comm: &mut Comm,
        datasets: Vec<DatasetDesc>,
    ) -> SdmResult<GroupHandle> {
        if datasets.is_empty() {
            return Err(SdmError::Usage(
                "a data group needs at least one dataset".into(),
            ));
        }
        comm.barrier();
        self.groups.push(DataGroup {
            datasets,
            views: HashMap::new(),
            open_files: HashMap::new(),
            append_offsets: HashMap::new(),
            imports: Vec::new(),
        });
        Ok(GroupHandle(self.groups.len() - 1))
    }

    /// `SDM_data_view`: install the map array for a dataset. `map[i]` is
    /// the global element index of the caller's `i`-th local element.
    pub fn data_view(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        dataset: &str,
        map: &[u64],
    ) -> SdmResult<()> {
        let (global_size, ty) = {
            let g = self.group(h)?;
            let d = Self::dataset(g, dataset)?;
            (d.global_size, d.data_type)
        };
        let view = DataView::compile(map, global_size, ty)?;
        // Sorting/compiling the map costs CPU proportional to its size.
        comm.compute(map.len() as f64 * self.cfg.per_edge_scan_cost * 0.2);
        self.group_mut(h)?.views.insert(dataset.to_string(), view);
        Ok(())
    }

    fn open_cached(&mut self, comm: &mut Comm, h: GroupHandle, file_name: &str) -> SdmResult<()> {
        if !self.group(h)?.open_files.contains_key(file_name) {
            let f = MpiFile::open_collective(comm, &self.pfs, file_name, true)?;
            self.group_mut(h)?
                .open_files
                .insert(file_name.to_string(), f);
        }
        Ok(())
    }

    /// `SDM_write`: collectively write a dataset at a timestep through
    /// its installed view. `buf` is in the caller's local element order.
    pub fn write<T: Pod>(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        dataset: &str,
        timestep: i64,
        buf: &[T],
    ) -> SdmResult<()> {
        let (file_name, global_bytes) = {
            let g = self.group(h)?;
            let d = Self::dataset(g, dataset)?;
            if std::mem::size_of::<T>() as u64 != d.data_type.size() {
                return Err(SdmError::Usage(format!(
                    "element size {} does not match dataset type ({} bytes)",
                    std::mem::size_of::<T>(),
                    d.data_type.size()
                )));
            }
            (
                self.cfg.org.file_name(&self.app, h.0, dataset, timestep),
                d.global_size * d.data_type.size(),
            )
        };
        // Base offset: Level 1 writes at 0 in a dedicated file; Level 2/3
        // append one full global-array region per (dataset, timestep).
        let base = {
            let g = self.group_mut(h)?;
            let cursor = g.append_offsets.entry(file_name.clone()).or_insert(0);
            let base = *cursor;
            *cursor += global_bytes;
            base
        };
        self.open_cached(comm, h, &file_name)?;
        let (file_ordered, ftype) = {
            let g = self.group(h)?;
            let view = g
                .views
                .get(dataset)
                .ok_or_else(|| SdmError::NoView(dataset.to_string()))?;
            (view.to_file_order(buf)?, view.ftype.clone())
        };
        {
            let g = self.group_mut(h)?;
            let f = g.open_files.get_mut(&file_name).expect("cached above");
            f.set_view(comm, base, ftype)?;
            f.write_all(comm, 0, &file_ordered)?;
        }
        if comm.rank() == 0 {
            self.store
                .record_execution(self.runid, dataset, timestep, base as i64, &file_name)?;
        }
        let t = self.pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        // The offset row must be visible before any rank can issue a
        // read for this (dataset, timestep) — reads look it up on every
        // rank, not just rank 0.
        comm.barrier();
        if self.cfg.org.opens_per_timestep() {
            // Level 1: dedicated file, close it now.
            let f = self
                .group_mut(h)?
                .open_files
                .remove(&file_name)
                .expect("cached above");
            f.close(comm);
        }
        comm.counters().incr("sdm.writes");
        Ok(())
    }

    /// `SDM_read`: collectively read back a dataset written in this run.
    /// The installed view selects which elements this rank receives, in
    /// its local order.
    pub fn read<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        dataset: &str,
        timestep: i64,
        out: &mut [T],
    ) -> SdmResult<()> {
        let hit = self.store.lookup_execution(self.runid, dataset, timestep)?;
        let t = self.pfs.metadata_roundtrip(comm.now());
        comm.sync_to(t);
        let (base, file_name) = hit.ok_or(SdmError::NotWritten {
            dataset: dataset.to_string(),
            timestep,
        })?;
        self.open_cached(comm, h, &file_name)?;
        let ftype = {
            let g = self.group(h)?;
            let view = g
                .views
                .get(dataset)
                .ok_or_else(|| SdmError::NoView(dataset.to_string()))?;
            if view.len() != out.len() {
                return Err(SdmError::Usage(format!(
                    "output buffer has {} elements but the view selects {}",
                    out.len(),
                    view.len()
                )));
            }
            view.ftype.clone()
        };
        let mut file_ordered = vec![T::default(); out.len()];
        {
            let g = self.group_mut(h)?;
            let f = g.open_files.get_mut(&file_name).expect("cached above");
            f.set_view(comm, base as u64, ftype)?;
            f.read_all(comm, 0, &mut file_ordered)?;
        }
        let g = self.group(h)?;
        let view = g.views.get(dataset).expect("checked above");
        let user = view.to_user_order(&file_ordered)?;
        out.copy_from_slice(&user);
        if self.cfg.org.opens_per_timestep() {
            let file_name2 = file_name.clone();
            let f = self
                .group_mut(h)?
                .open_files
                .remove(&file_name2)
                .expect("cached above");
            f.close(comm);
        }
        comm.counters().incr("sdm.reads");
        Ok(())
    }

    /// `SDM_finalize`: close every cached file, push buffered metadata
    /// down to the database, and synchronize.
    pub fn finalize(mut self, comm: &mut Comm) -> SdmResult<()> {
        for g in &mut self.groups {
            for (_, f) in g.open_files.drain() {
                f.close(comm);
            }
        }
        if comm.rank() == 0 {
            self.store.flush()?;
        }
        comm.barrier();
        Ok(())
    }
}
