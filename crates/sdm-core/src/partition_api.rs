//! Index partitioning: partitioning vector, ring-pipelined edge
//! distribution, ghosts, and the doubling receive buffers.
//!
//! Paper, Section 3.2: every rank imports a contiguous chunk of the
//! `edge1`/`edge2` arrays, then the chunks circulate around a ring; at
//! each step a rank keeps every passing edge with at least one endpoint
//! it owns ("if at least a node of an edge has been partitioned to a
//! process, the edge is assigned to the process" — shared edges become
//! ghost edges on both sides). Nodes partition by the replicated
//! partitioning vector; nodes touched by my edges but owned elsewhere
//! become ghost nodes.

use sdm_mpi::envelope::tags;
use sdm_mpi::pod::{as_bytes, vec_from_bytes};
use sdm_mpi::Comm;

use crate::error::{SdmError, SdmResult};
use crate::memory::DoublingBuf;
use crate::sdm::{GroupHandle, Sdm};

/// The outcome of `SDM_partition_index` + `SDM_partition_table`: this
/// rank's share of the irregular problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedIndex {
    /// Global ids of my edges (sorted ascending), ghosts included.
    pub edge_ids: Vec<u64>,
    /// Edge endpoints aligned with `edge_ids`.
    pub edge_nodes: Vec<(u32, u32)>,
    /// Nodes owned by this rank (partitioning vector says so), sorted.
    pub owned_nodes: Vec<u32>,
    /// Ghost nodes: endpoints of my edges owned by other ranks, sorted.
    pub ghost_nodes: Vec<u32>,
}

impl PartitionedIndex {
    /// `SDM_partition_index_size`: number of local (incl. ghost) edges.
    pub fn index_size(&self) -> usize {
        self.edge_ids.len()
    }

    /// `SDM_partition_data_size`: number of owned nodes.
    pub fn data_size(&self) -> usize {
        self.owned_nodes.len()
    }

    /// Owned + ghost nodes, merged sorted (the map array for node-data
    /// imports that must cover ghosts).
    pub fn all_nodes(&self) -> Vec<u32> {
        let mut all = Vec::with_capacity(self.owned_nodes.len() + self.ghost_nodes.len());
        let (mut i, mut j) = (0, 0);
        while i < self.owned_nodes.len() || j < self.ghost_nodes.len() {
            match (self.owned_nodes.get(i), self.ghost_nodes.get(j)) {
                (Some(&a), Some(&b)) if a < b => {
                    all.push(a);
                    i += 1;
                }
                (Some(&a), Some(&b)) if b < a => {
                    all.push(b);
                    j += 1;
                }
                (Some(&a), Some(_)) => {
                    // Equal should not happen (ghosts are disjoint from owned).
                    all.push(a);
                    i += 1;
                    j += 1;
                }
                (Some(&a), None) => {
                    all.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    all.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        all
    }

    /// Map arrays as u64 (for file views).
    pub fn owned_nodes_u64(&self) -> Vec<u64> {
        self.owned_nodes.iter().map(|&n| n as u64).collect()
    }

    /// Edge map array as u64.
    pub fn edge_ids_u64(&self) -> Vec<u64> {
        self.edge_ids.clone()
    }
}

/// Pack an edge chunk for the ring: `[n][ids][e1][e2]`.
fn pack_chunk(ids: &[u64], e1: &[i32], e2: &[i32]) -> Vec<u8> {
    debug_assert!(ids.len() == e1.len() && ids.len() == e2.len());
    let mut msg = Vec::with_capacity(8 + ids.len() * 16);
    msg.extend_from_slice(&(ids.len() as u64).to_ne_bytes());
    msg.extend_from_slice(as_bytes(ids));
    msg.extend_from_slice(as_bytes(e1));
    msg.extend_from_slice(as_bytes(e2));
    msg
}

fn unpack_chunk(msg: &[u8]) -> SdmResult<(Vec<u64>, Vec<i32>, Vec<i32>)> {
    if msg.len() < 8 {
        return Err(SdmError::Usage("short ring message".into()));
    }
    let n = crate::history::read_u64_ne(msg, 0) as usize;
    let need = 8 + n * 8 + n * 4 + n * 4;
    if msg.len() != need {
        return Err(SdmError::Usage(format!(
            "ring message length {} != expected {need}",
            msg.len()
        )));
    }
    let ids = vec_from_bytes(&msg[8..8 + n * 8]);
    let e1 = vec_from_bytes(&msg[8 + n * 8..8 + n * 8 + n * 4]);
    let e2 = vec_from_bytes(&msg[8 + n * 12..]);
    Ok((ids, e1, e2))
}

impl Sdm {
    /// `SDM_partition_table`: convert the replicated partitioning vector
    /// into this rank's owned-node list ("to determine which node should
    /// be assigned to which process"). Local; charges one scan.
    pub fn partition_table(&self, comm: &mut Comm, partitioning_vector: &[u32]) -> Vec<u32> {
        let me = comm.rank() as u32;
        let owned: Vec<u32> = partitioning_vector
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == me)
            .map(|(n, _)| n as u32)
            .collect();
        comm.compute(partitioning_vector.len() as f64 * self.cfg.per_edge_scan_cost * 0.25);
        owned
    }

    /// `SDM_partition_index` (fresh path): distribute edges by
    /// circulating each rank's imported chunk around the ring. `start_id`
    /// is the global id of `e1[0]` (from the contiguous import);
    /// `partitioning_vector` is replicated. Collective.
    ///
    /// The history-file fast path lives in [`Sdm::partition_index`]
    /// (`crate::history`), which calls this on a miss.
    pub fn partition_index_fresh(
        &self,
        comm: &mut Comm,
        partitioning_vector: &[u32],
        start_id: u64,
        e1: &[i32],
        e2: &[i32],
    ) -> SdmResult<PartitionedIndex> {
        if e1.len() != e2.len() {
            return Err(SdmError::Usage("edge1/edge2 length mismatch".into()));
        }
        let me = comm.rank() as u32;
        let p = comm.size();
        let right = (comm.rank() + 1) % p;
        let left = (comm.rank() + p - 1) % p;

        let mut cur_ids: Vec<u64> = (start_id..start_id + e1.len() as u64).collect();
        let mut cur_e1 = e1.to_vec();
        let mut cur_e2 = e2.to_vec();

        // Doubling buffers: single-pass collection (the paper's realloc
        // trick — no counting pre-pass).
        let mut keep_ids = DoublingBuf::with_initial_capacity(self.cfg.initial_buf_capacity);
        let mut keep_nodes = DoublingBuf::with_initial_capacity(self.cfg.initial_buf_capacity);

        for step in 0..p {
            for k in 0..cur_ids.len() {
                let (a, b) = (cur_e1[k], cur_e2[k]);
                let (a, b) = (a as usize, b as usize);
                if a >= partitioning_vector.len() || b >= partitioning_vector.len() {
                    return Err(SdmError::Usage(format!(
                        "edge ({a}, {b}) out of range for partitioning vector of {}",
                        partitioning_vector.len()
                    )));
                }
                if partitioning_vector[a] == me || partitioning_vector[b] == me {
                    keep_ids.push(cur_ids[k]);
                    keep_nodes.push((cur_e1[k] as u32, cur_e2[k] as u32));
                }
            }
            // One pass over the circulating chunk.
            comm.compute(cur_ids.len() as f64 * self.cfg.per_edge_scan_cost);
            if step + 1 < p {
                // "the edges in each process are moved to the next
                // process located at a ring network"
                let msg = pack_chunk(&cur_ids, &cur_e1, &cur_e2);
                comm.send_bytes(right, tags::SDM_RING, &msg)?;
                let incoming = comm.recv_bytes(left, tags::SDM_RING)?;
                let (ids, a, b) = unpack_chunk(&incoming)?;
                cur_ids = ids;
                cur_e1 = a;
                cur_e2 = b;
            }
        }

        // Sort my edges by global id (ring arrival order is rotated).
        let mut order: Vec<u32> = (0..keep_ids.len() as u32).collect();
        let kept_ids = keep_ids.into_vec();
        let kept_nodes = keep_nodes.into_vec();
        order.sort_unstable_by_key(|&k| kept_ids[k as usize]);
        let edge_ids: Vec<u64> = order.iter().map(|&k| kept_ids[k as usize]).collect();
        let edge_nodes: Vec<(u32, u32)> = order.iter().map(|&k| kept_nodes[k as usize]).collect();

        // Owned and ghost nodes.
        let owned_nodes = self.partition_table(comm, partitioning_vector);
        let mut ghost: Vec<u32> = edge_nodes
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .filter(|&n| partitioning_vector[n as usize] != me)
            .collect();
        ghost.sort_unstable();
        ghost.dedup();

        comm.counters().incr("sdm.index_distributions");
        Ok(PartitionedIndex {
            edge_ids,
            edge_nodes,
            owned_nodes,
            ghost_nodes: ghost,
        })
    }

    /// Sequential reference implementation of the edge distribution
    /// (used by tests and the "original application" baseline): given the
    /// full edge list, compute the partition for `rank` directly.
    pub fn partition_index_reference(
        partitioning_vector: &[u32],
        e1: &[i32],
        e2: &[i32],
        rank: u32,
    ) -> PartitionedIndex {
        let mut edge_ids = Vec::new();
        let mut edge_nodes = Vec::new();
        for k in 0..e1.len() {
            let (a, b) = (e1[k] as usize, e2[k] as usize);
            if partitioning_vector[a] == rank || partitioning_vector[b] == rank {
                edge_ids.push(k as u64);
                edge_nodes.push((e1[k] as u32, e2[k] as u32));
            }
        }
        let owned_nodes: Vec<u32> = partitioning_vector
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == rank)
            .map(|(n, _)| n as u32)
            .collect();
        let mut ghost: Vec<u32> = edge_nodes
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .filter(|&n| partitioning_vector[n as usize] != rank)
            .collect();
        ghost.sort_unstable();
        ghost.dedup();
        PartitionedIndex {
            edge_ids,
            edge_nodes,
            owned_nodes,
            ghost_nodes: ghost,
        }
    }

    /// Import the per-edge data arrays for the partitioned edges
    /// (Figure 3's "Import x"): a collective irregular import through the
    /// edge map array.
    pub fn partition_data_edges(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        name: &str,
        file_offset: u64,
        pi: &PartitionedIndex,
        total_edges: u64,
    ) -> SdmResult<Vec<f64>> {
        self.import_view::<f64>(comm, h, name, file_offset, &pi.edge_ids_u64(), total_edges)
    }

    /// Import the per-node data arrays for owned + ghost nodes
    /// (Figure 3's "Import y").
    pub fn partition_data_nodes(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        name: &str,
        file_offset: u64,
        pi: &PartitionedIndex,
        total_nodes: u64,
    ) -> SdmResult<Vec<f64>> {
        let map: Vec<u64> = pi.all_nodes().iter().map(|&n| n as u64).collect();
        self.import_view::<f64>(comm, h, name, file_offset, &map, total_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let ids = vec![5u64, 9, 11];
        let e1 = vec![0i32, 2, 4];
        let e2 = vec![1i32, 3, 5];
        let msg = pack_chunk(&ids, &e1, &e2);
        let (i2, a2, b2) = unpack_chunk(&msg).unwrap();
        assert_eq!((i2, a2, b2), (ids, e1, e2));
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(unpack_chunk(&[1, 2, 3]).is_err());
        let mut msg = pack_chunk(&[1], &[0], &[1]);
        msg.pop();
        assert!(unpack_chunk(&msg).is_err());
    }

    #[test]
    fn reference_matches_paper_example() {
        // Figure 1: 5 nodes, partitioning vector [0,1,1,0,1], 4 edges
        // with edge1 = [0,1,0,1], edge2 = [1,4,3,2], i.e. e0=(0,1),
        // e1=(1,4), e2=(0,3), e3=(1,2). The paper's stated outcome:
        // "edges 0 and 2 are assigned to process 0, and edges 0, 1, and
        // 3 are assigned to process 1".
        let pv = vec![0u32, 1, 1, 0, 1];
        let e1 = vec![0, 1, 0, 1];
        let e2 = vec![1, 4, 3, 2];
        let p0 = Sdm::partition_index_reference(&pv, &e1, &e2, 0);
        let p1 = Sdm::partition_index_reference(&pv, &e1, &e2, 1);
        assert_eq!(
            p0.edge_ids,
            vec![0, 2],
            "p0 gets edges touching nodes 0 or 3"
        );
        assert_eq!(
            p1.edge_ids,
            vec![0, 1, 3],
            "p1 gets edges touching nodes 1, 2, 4"
        );
        // Nodes: p0 owns {0,3}, p1 owns {1,2,4} (paper: "nodes 0 and 3
        // are assigned to process 0, and nodes 1, 2, and 4 to process 1").
        assert_eq!(p0.owned_nodes, vec![0, 3]);
        assert_eq!(p1.owned_nodes, vec![1, 2, 4]);
        // Ghosts: edge 0 is "a ghost edge of both processes"; p0 sees
        // node 1 through it, p1 sees node 0.
        assert_eq!(p0.ghost_nodes, vec![1]);
        assert_eq!(p1.ghost_nodes, vec![0]);
        // Paper: "nodes 0, 1, and 3 are assigned to process 0, and nodes
        // 0, 1, 2, and 4 to process 1" (owned + ghost views).
        assert_eq!(p0.all_nodes(), vec![0, 1, 3]);
        assert_eq!(p1.all_nodes(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn edge_shared_by_both_is_ghost_on_both() {
        let pv = vec![0u32, 1];
        let e1 = vec![0];
        let e2 = vec![1];
        let p0 = Sdm::partition_index_reference(&pv, &e1, &e2, 0);
        let p1 = Sdm::partition_index_reference(&pv, &e1, &e2, 1);
        assert_eq!(p0.edge_ids, vec![0]);
        assert_eq!(p1.edge_ids, vec![0]);
        assert_eq!(
            p0.index_size() + p1.index_size(),
            2,
            "shared edge counted on both"
        );
    }

    #[test]
    fn all_nodes_merges_sorted() {
        let pi = PartitionedIndex {
            edge_ids: vec![],
            edge_nodes: vec![],
            owned_nodes: vec![1, 4, 6],
            ghost_nodes: vec![0, 5],
        };
        assert_eq!(pi.all_nodes(), vec![0, 1, 4, 5, 6]);
        assert_eq!(pi.data_size(), 3);
    }
}
