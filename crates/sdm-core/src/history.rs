//! History files: cache the index distribution across runs.
//!
//! After partitioning, "the local index subsets of all processes are
//! asynchronously written to a history file, and the associated metadata
//! is stored in database. When the same index distribution is needed in
//! subsequent runs, the index values are read from the history file...
//! thereby the user can avoid repeating the communication and
//! computation". The history is keyed by (problem size, process count):
//! it "cannot be used if the program is run on a different number of
//! processes".
//!
//! Block format per rank (native endianness):
//! `[magic u64][checksum u64][edge_count u64][node_count u64]
//!  [ghost_count u64][edge_ids u64*E][e1 u32*E][e2 u32*E]
//!  [owned u32*N][ghost u32*G]`

use sdm_mpi::pod::{as_bytes, vec_from_bytes};
use sdm_mpi::Comm;

use crate::error::{SdmError, SdmResult};
use crate::partition_api::PartitionedIndex;
use crate::sdm::Sdm;
use crate::store::HistoryBlock;

const MAGIC: u64 = 0x5344_4D48_4953_5431; // "SDMHIST1"

fn checksum(words: &[u8]) -> u64 {
    // FNV-1a over the payload: cheap, deterministic, catches truncation
    // and bit corruption.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in words {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serialize one rank's block.
pub(crate) fn encode_block(pi: &PartitionedIndex) -> Vec<u8> {
    let e = pi.edge_ids.len();
    let n = pi.owned_nodes.len();
    let g = pi.ghost_nodes.len();
    let mut payload = Vec::with_capacity(e * 16 + n * 4 + g * 4 + 24);
    payload.extend_from_slice(&(e as u64).to_ne_bytes());
    payload.extend_from_slice(&(n as u64).to_ne_bytes());
    payload.extend_from_slice(&(g as u64).to_ne_bytes());
    payload.extend_from_slice(as_bytes(&pi.edge_ids));
    let e1: Vec<u32> = pi.edge_nodes.iter().map(|&(a, _)| a).collect();
    let e2: Vec<u32> = pi.edge_nodes.iter().map(|&(_, b)| b).collect();
    payload.extend_from_slice(as_bytes(&e1));
    payload.extend_from_slice(as_bytes(&e2));
    payload.extend_from_slice(as_bytes(&pi.owned_nodes));
    payload.extend_from_slice(as_bytes(&pi.ghost_nodes));
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&MAGIC.to_ne_bytes());
    out.extend_from_slice(&checksum(&payload).to_ne_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Read a native-endian `u64` at byte offset `at`; the caller has
/// already length-checked `bytes` past `at + 8`.
pub(crate) fn read_u64_ne(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_ne_bytes(buf)
}

/// Parse a block, verifying magic and checksum.
pub(crate) fn decode_block(bytes: &[u8]) -> SdmResult<PartitionedIndex> {
    if bytes.len() < 40 {
        return Err(SdmError::BadHistory(format!(
            "block too short: {} bytes",
            bytes.len()
        )));
    }
    let magic = read_u64_ne(bytes, 0);
    if magic != MAGIC {
        return Err(SdmError::BadHistory(format!("bad magic {magic:#x}")));
    }
    let want_sum = read_u64_ne(bytes, 8);
    let payload = &bytes[16..];
    if checksum(payload) != want_sum {
        return Err(SdmError::BadHistory("checksum mismatch".into()));
    }
    let e = read_u64_ne(payload, 0) as usize;
    let n = read_u64_ne(payload, 8) as usize;
    let g = read_u64_ne(payload, 16) as usize;
    let need = 24 + e * 16 + n * 4 + g * 4;
    if payload.len() != need {
        return Err(SdmError::BadHistory(format!(
            "payload length {} != expected {need}",
            payload.len()
        )));
    }
    let mut at = 24;
    let edge_ids: Vec<u64> = vec_from_bytes(&payload[at..at + e * 8]);
    at += e * 8;
    let e1: Vec<u32> = vec_from_bytes(&payload[at..at + e * 4]);
    at += e * 4;
    let e2: Vec<u32> = vec_from_bytes(&payload[at..at + e * 4]);
    at += e * 4;
    let owned_nodes: Vec<u32> = vec_from_bytes(&payload[at..at + n * 4]);
    at += n * 4;
    let ghost_nodes: Vec<u32> = vec_from_bytes(&payload[at..at + g * 4]);
    let edge_nodes = e1.into_iter().zip(e2).collect();
    Ok(PartitionedIndex {
        edge_ids,
        edge_nodes,
        owned_nodes,
        ghost_nodes,
    })
}

impl Sdm {
    fn history_file_name(&self, problem_size: u64, nprocs: usize) -> String {
        format!("{}.hist.{problem_size}.{nprocs}", self.app)
    }

    /// `SDM_index_registry`: write the partitioned index sets to a
    /// history file (asynchronously — the caller is only charged the
    /// enqueue cost) and store the per-rank metadata in `index_table` /
    /// `index_history_table`. Optional per the paper. Collective.
    pub fn index_registry(
        &mut self,
        comm: &mut Comm,
        pi: &PartitionedIndex,
        problem_size: u64,
    ) -> SdmResult<()> {
        let nprocs = comm.size();
        let block = encode_block(pi);
        let my_len = block.len() as u64;
        let my_off = comm.exscan_sum(&[my_len])[0];

        let name = self.history_file_name(problem_size, nprocs);
        let (file, t) = self.pfs.open_or_create(&name, comm.now())?;
        comm.sync_to(t);
        // "the partitioned edges are asynchronously written"
        let (caller_t, _bg_t) = self.pfs.write_at_async(&file, my_off, &block, comm.now())?;
        comm.sync_to(caller_t);

        // Rank 0 stores the registry row + every rank's block metadata.
        let metas = comm.gather(
            0,
            &[
                pi.edge_ids.len() as u64,
                pi.owned_nodes.len() as u64,
                pi.ghost_nodes.len() as u64,
                my_off,
                my_len,
            ],
        )?;
        if let Some(metas) = metas {
            self.store.record_index_registry(
                problem_size as i64,
                nprocs as i64,
                self.cfg.dimension,
                &name,
            )?;
            for (rank, m) in metas.iter().enumerate() {
                self.store.record_history_block(
                    problem_size as i64,
                    nprocs as i64,
                    &HistoryBlock {
                        rank: rank as i64,
                        edge_count: m[0] as i64,
                        node_count: m[1] as i64,
                        ghost_count: m[2] as i64,
                        file_offset: m[3] as i64,
                        byte_len: m[4] as i64,
                    },
                )?;
            }
        }
        Self::sync_metadata(&self.pfs, comm);
        // Registration must be visible before any rank can attempt a
        // same-run replay lookup.
        comm.barrier();
        comm.counters().incr("sdm.history_writes");
        Ok(())
    }

    /// Try to replay the index distribution from a registered history
    /// file. Returns `None` (on every rank, consistently) when there is
    /// no usable history — missing registration, missing/corrupt file —
    /// in which case the caller falls back to the fresh distribution.
    pub fn partition_index_from_history(
        &mut self,
        comm: &mut Comm,
        problem_size: u64,
    ) -> SdmResult<Option<PartitionedIndex>> {
        let nprocs = comm.size();
        // "the SDM_import first accesses the index table in the database
        // to see whether a history file exists with this problem size"
        let reg = self
            .store
            .lookup_index_registry(problem_size as i64, nprocs as i64)?;
        Self::sync_metadata(&self.pfs, comm);
        let Some(name) = reg else {
            return Ok(None);
        };
        let block = self.store.lookup_history_block(
            problem_size as i64,
            nprocs as i64,
            comm.rank() as i64,
        )?;
        Self::sync_metadata(&self.pfs, comm);

        // Read and validate my block; any rank's failure aborts for all.
        let attempt: SdmResult<PartitionedIndex> = (|| {
            let block = block.ok_or_else(|| {
                SdmError::BadHistory(format!("no block row for rank {}", comm.rank()))
            })?;
            let (file, t) = self.pfs.open(&name, comm.now())?;
            comm.sync_to(t);
            let mut buf = vec![0u8; block.byte_len as usize];
            let t =
                self.pfs
                    .read_exact_at(&file, block.file_offset as u64, &mut buf, comm.now())?;
            comm.sync_to(t);
            let pi = decode_block(&buf)?;
            if pi.edge_ids.len() as i64 != block.edge_count
                || pi.owned_nodes.len() as i64 != block.node_count
                || pi.ghost_nodes.len() as i64 != block.ghost_count
            {
                return Err(SdmError::BadHistory(
                    "block counts disagree with metadata".into(),
                ));
            }
            Ok(pi)
        })();

        let ok_here = attempt.is_ok() as u8;
        let all_ok = comm.allreduce_min(&[ok_here])[0] == 1;
        if !all_ok {
            // Drop the poisoned registration so later runs go fresh
            // immediately ("fall back to the fresh distribution").
            if comm.rank() == 0 {
                self.store
                    .delete_index_registry(problem_size as i64, nprocs as i64)?;
            }
            comm.counters().incr("sdm.history_invalid");
            return Ok(None);
        }
        comm.counters().incr("sdm.history_hits");
        // `all_ok` was computed from `attempt.is_ok()` on every rank, so
        // locally Err is unreachable here — but `?` states that without
        // a panic path.
        Ok(Some(attempt?))
    }

    /// `SDM_partition_index`: the full paper semantics — use the history
    /// file when one is registered for this (problem size, process
    /// count), otherwise run the ring distribution. `edges` supplies the
    /// freshly imported contiguous chunk for the fresh path (start id,
    /// edge1, edge2).
    pub fn partition_index(
        &mut self,
        comm: &mut Comm,
        partitioning_vector: &[u32],
        problem_size: u64,
        edges: (u64, &[i32], &[i32]),
    ) -> SdmResult<(PartitionedIndex, bool)> {
        if let Some(pi) = self.partition_index_from_history(comm, problem_size)? {
            return Ok((pi, true));
        }
        let (start_id, e1, e2) = edges;
        let pi = self.partition_index_fresh(comm, partitioning_vector, start_id, e1, e2)?;
        Ok((pi, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pi() -> PartitionedIndex {
        PartitionedIndex {
            edge_ids: vec![3, 7, 9],
            edge_nodes: vec![(0, 1), (1, 2), (2, 5)],
            owned_nodes: vec![1, 2],
            ghost_nodes: vec![0, 5],
        }
    }

    #[test]
    fn block_round_trip() {
        let pi = sample_pi();
        let bytes = encode_block(&pi);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back, pi);
    }

    #[test]
    fn empty_block_round_trip() {
        let pi = PartitionedIndex {
            edge_ids: vec![],
            edge_nodes: vec![],
            owned_nodes: vec![],
            ghost_nodes: vec![],
        };
        let bytes = encode_block(&pi);
        assert_eq!(decode_block(&bytes).unwrap(), pi);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode_block(&sample_pi());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(decode_block(&bytes), Err(SdmError::BadHistory(_))));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_block(&sample_pi());
        assert!(decode_block(&bytes[..bytes.len() - 4]).is_err());
        assert!(decode_block(&bytes[..10]).is_err());
    }

    #[test]
    fn wrong_magic_detected() {
        let mut bytes = encode_block(&sample_pi());
        bytes[0] ^= 1;
        assert!(
            matches!(decode_block(&bytes), Err(SdmError::BadHistory(m)) if m.contains("magic"))
        );
    }
}
