//! The three file organizations (paper Section 3.2, Figure 4 bottom).
//!
//! * **Level 1** — one file per dataset per timestep. Simple, but pays a
//!   file-open + file-view (+close) every timestep.
//! * **Level 2** — one file per dataset; timesteps append. Fewer files,
//!   fewer opens.
//! * **Level 3** — one file per *group*; all datasets and timesteps
//!   append. Fewest files; offsets tracked in the `execution_table`.

use serde::{Deserialize, Serialize};

/// File-organization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrgLevel {
    /// File per (dataset, timestep).
    Level1,
    /// File per dataset, timesteps appended.
    Level2,
    /// File per group, everything appended.
    Level3,
}

impl OrgLevel {
    /// File name for a write of `dataset` at `timestep` in group `group`
    /// of application `app`.
    pub fn file_name(&self, app: &str, group: usize, dataset: &str, timestep: i64) -> String {
        match self {
            OrgLevel::Level1 => format!("{app}.g{group}.{dataset}.t{timestep}.dat"),
            OrgLevel::Level2 => format!("{app}.g{group}.{dataset}.dat"),
            OrgLevel::Level3 => format!("{app}.g{group}.dat"),
        }
    }

    /// Whether a fresh file (and therefore an open) is needed at every
    /// timestep.
    pub fn opens_per_timestep(&self) -> bool {
        matches!(self, OrgLevel::Level1)
    }

    /// Number of files this level creates for `datasets` datasets over
    /// `timesteps` checkpoints (the paper's 10 / 5 / 2 example counts
    /// both groups).
    pub fn files_created(&self, datasets: usize, timesteps: usize) -> usize {
        match self {
            OrgLevel::Level1 => datasets * timesteps,
            OrgLevel::Level2 => datasets,
            OrgLevel::Level3 => 1,
        }
    }

    /// All three levels, for sweeps.
    pub fn all() -> [OrgLevel; 3] {
        [OrgLevel::Level1, OrgLevel::Level2, OrgLevel::Level3]
    }

    /// Short label for reports ("level 1"...).
    pub fn label(&self) -> &'static str {
        match self {
            OrgLevel::Level1 => "level 1",
            OrgLevel::Level2 => "level 2",
            OrgLevel::Level3 => "level 3",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_distinguish_levels() {
        let l1 = OrgLevel::Level1.file_name("fun3d", 0, "p", 10);
        let l2 = OrgLevel::Level2.file_name("fun3d", 0, "p", 10);
        let l3 = OrgLevel::Level3.file_name("fun3d", 0, "p", 10);
        assert!(l1.contains("t10"));
        assert!(!l2.contains("t10"), "level 2 appends timesteps: {l2}");
        assert!(!l3.contains('p'), "level 3 ignores the dataset: {l3}");
        // Same dataset, different timestep: level 1 differs, level 2 same.
        assert_ne!(l1, OrgLevel::Level1.file_name("fun3d", 0, "p", 20));
        assert_eq!(l2, OrgLevel::Level2.file_name("fun3d", 0, "p", 20));
    }

    #[test]
    fn file_counts_match_paper_example() {
        // Paper (Figure 6): 5 datasets, 2 timesteps -> 10 / 5 / 2 files
        // (2 because p-like and q-like sets were in 2 groups; per group
        // that's 1).
        assert_eq!(OrgLevel::Level1.files_created(5, 2), 10);
        assert_eq!(OrgLevel::Level2.files_created(5, 2), 5);
        assert_eq!(OrgLevel::Level3.files_created(5, 2), 1);
    }

    #[test]
    fn only_level1_reopens() {
        assert!(OrgLevel::Level1.opens_per_timestep());
        assert!(!OrgLevel::Level2.opens_per_timestep());
        assert!(!OrgLevel::Level3.opens_per_timestep());
    }
}
