//! SDM — the Scientific Data Manager for irregular applications.
//!
//! This is the paper's contribution: a high-level API that hides MPI-IO
//! and the metadata database behind dataset-level operations. The
//! structure mirrors the paper's Figures 2-4:
//!
//! * [`sdm::Sdm`] — per-rank handle. `initialize` connects "the
//!   database" and creates the six metadata tables; `finalize` closes
//!   everything out. Data groups are registered through the typed
//!   [`session`] API ([`sdm::Sdm::group`] → [`session::GroupBuilder`]),
//!   views install through resolved handles, and per-timestep writes go
//!   through [`session::TimestepScope`] ([`sdm::Sdm::timestep`]) as one
//!   collective burst with one metadata sync. The paper's
//!   `set_attributes` / `data_view` / `write` / `read` surface remains
//!   as a deprecated veneer over the same paths.
//! * [`import`] — the import path for data created *outside* SDM
//!   (the `uns3d.msh` mesh file): `make_importlist`, contiguous domain
//!   imports, and irregularly distributed imports through map arrays.
//! * [`partition_api`] — `partition_table` / `partition_index`: the
//!   replicated partitioning vector, the ring-pipelined edge
//!   distribution with ghost edges/nodes, and the dynamically doubled
//!   receive buffers (single-pass import).
//! * [`history`] — `index_registry` and history-file replay: partitioned
//!   index sets written asynchronously, indexed in the database, and
//!   reused by later runs with the same problem size and process count.
//! * [`org`] — the three file organizations (Level 1 / 2 / 3) and the
//!   `execution_table` offset bookkeeping.
//! * [`schema`] — the six Figure-4 tables as typed relations
//!   (`RunRow`, `ExecutionRow`, …): static descriptors that DDL,
//!   indexes, and every query are generated from.
//! * [`store`] — the [`store::MetadataStore`] trait over those
//!   relations: [`store::SqlStore`] (typed statements compiled once —
//!   the warmed hot path formats zero SQL text) and
//!   [`store::CachedStore`] (rank-0 write-through cache, keyed by
//!   relation, with per-timestep transaction batching).

pub mod dataset;
pub mod error;
pub mod history;
pub mod import;
pub mod memory;
pub mod org;
pub mod partition_api;
pub mod schema;
pub mod sdm;
pub mod session;
pub mod store;
pub mod types;
pub mod view;

pub use dataset::{DatasetDesc, ImportDesc};
pub use error::{SdmError, SdmResult};
pub use org::OrgLevel;
pub use partition_api::PartitionedIndex;
pub use sdm::{GroupHandle, Sdm, SdmConfig};
pub use session::{DatasetHandle, DatasetSlot, GroupBuilder, GroupRegistration, TimestepScope};
pub use store::{
    ensure_table, CachedStore, HistoryBlock, MetadataStore, RunRecord, SharedStore, SqlStore,
};
pub use types::{AccessPattern, SdmElem, SdmType, StorageOrder};
