//! The import path: reading data created outside SDM.
//!
//! "We use the term import to distinguish it from a read operation. A
//! read operation reads the data created in SDM, whereas an import
//! operation reads the data created outside of SDM." Imports are driven
//! by explicit file offsets and lengths (the application knows the
//! `uns3d.msh` layout) and go through collective MPI-IO.

use sdm_mpi::io::MpiFile;
use sdm_mpi::pod::{as_bytes_mut, Pod};
use sdm_mpi::Comm;

use crate::dataset::ImportDesc;
use crate::error::{SdmError, SdmResult};
use crate::sdm::{GroupHandle, Sdm};
use crate::view::DataView;

impl Sdm {
    /// `SDM_make_importlist`: register the imported arrays' metadata in
    /// the `import_table` "for a later use". Collective.
    pub fn make_importlist(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        imports: Vec<ImportDesc>,
    ) -> SdmResult<()> {
        if comm.rank() == 0 {
            for im in &imports {
                self.store.record_import(
                    self.runid,
                    &im.name,
                    &im.file_name,
                    im.data_type.sql_name(),
                    im.storage_order.sql_name(),
                    im.file_content.sql_name(),
                )?;
            }
        }
        Self::sync_metadata(&self.pfs, comm);
        self.group_at_mut(h)?.imports = imports;
        Ok(())
    }

    pub(crate) fn import_desc(&self, h: GroupHandle, name: &str) -> SdmResult<ImportDesc> {
        self.group_at(h)?
            .imports
            .iter()
            .find(|i| i.name == name)
            .cloned()
            .ok_or_else(|| SdmError::NoSuchDataset(format!("import {name}")))
    }

    fn open_import(&mut self, comm: &mut Comm, h: GroupHandle, file: &str) -> SdmResult<()> {
        let key = format!("import:{file}");
        if !self.group_at(h)?.open_files.contains_key(&key) {
            let f = MpiFile::open_collective(comm, &self.pfs, file, false)?;
            self.group_at_mut(h)?.open_files.insert(key, f);
        }
        Ok(())
    }

    /// `SDM_import` (contiguous): "the total domain (file length) is
    /// equally divided among processes, and the data in the domain is
    /// contiguously imported". `file_offset` is in bytes, `total_elems`
    /// in elements; returns this rank's chunk and its starting global
    /// element index. Collective.
    pub fn import_contiguous<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        name: &str,
        file_offset: u64,
        total_elems: u64,
    ) -> SdmResult<(u64, Vec<T>)> {
        let desc = self.import_desc(h, name)?;
        let esize = std::mem::size_of::<T>() as u64;
        if esize != desc.data_type.size() {
            return Err(SdmError::Usage(format!(
                "import {name}: element size {esize} != declared {}",
                desc.data_type.size()
            )));
        }
        let size = comm.size() as u64;
        let chunk = total_elems.div_ceil(size);
        let lo = (comm.rank() as u64 * chunk).min(total_elems);
        let hi = ((comm.rank() as u64 + 1) * chunk).min(total_elems);
        self.open_import(comm, h, &desc.file_name)?;
        let g = self.group_at_mut(h)?;
        let f = g
            .open_files
            .get_mut(&format!("import:{}", desc.file_name))
            // analyze:allow(unwrap: open_import inserted this key and the map is untouched since)
            .expect("cached");
        let mut out = vec![T::default(); (hi - lo) as usize];
        let segs = if hi > lo {
            vec![(file_offset + lo * esize, (hi - lo) * esize)]
        } else {
            vec![]
        };
        f.read_all_segments(comm, &segs, as_bytes_mut(&mut out))?;
        comm.counters().incr("sdm.imports");
        Ok((lo, out))
    }

    /// `SDM_import` (irregular): import through a map array — "the
    /// associated data is irregularly distributed by calling a collective
    /// MPI-IO function". `map[i]` is the global element index for the
    /// caller's `i`-th local element; the result is in the caller's local
    /// order. Collective.
    pub fn import_view<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        h: GroupHandle,
        name: &str,
        file_offset: u64,
        map: &[u64],
        total_elems: u64,
    ) -> SdmResult<Vec<T>> {
        let desc = self.import_desc(h, name)?;
        let ty = desc.data_type;
        if std::mem::size_of::<T>() as u64 != ty.size() {
            return Err(SdmError::Usage(format!(
                "import {name}: element size {} != declared {}",
                std::mem::size_of::<T>(),
                ty.size()
            )));
        }
        let view = DataView::compile(map, total_elems, ty)?;
        self.open_import(comm, h, &desc.file_name)?;
        let g = self.group_at_mut(h)?;
        let f = g
            .open_files
            .get_mut(&format!("import:{}", desc.file_name))
            // analyze:allow(unwrap: open_import inserted this key and the map is untouched since)
            .expect("cached");
        f.set_view(comm, file_offset, view.ftype.clone())?;
        let mut file_ordered = vec![T::default(); map.len()];
        f.read_all(comm, 0, &mut file_ordered)?;
        comm.counters().incr("sdm.imports");
        view.to_user_order_nondefault(&file_ordered)
    }

    /// `SDM_release_importlist`: drop import descriptors and close the
    /// import file handles. Collective.
    pub fn release_importlist(&mut self, comm: &mut Comm, h: GroupHandle) -> SdmResult<()> {
        let keys: Vec<String> = self
            .group_at(h)?
            .open_files
            .keys()
            .filter(|k| k.starts_with("import:"))
            .cloned()
            .collect();
        for k in keys {
            if let Some(f) = self.group_at_mut(h)?.open_files.remove(&k) {
                f.close(comm);
            }
        }
        self.group_at_mut(h)?.imports.clear();
        Ok(())
    }
}

impl crate::view::DataView {
    /// `to_user_order` without the `Default` bound (uses clone-from-permutation).
    pub(crate) fn to_user_order_nondefault<T: Copy>(
        &self,
        file_ordered: &[T],
    ) -> SdmResult<Vec<T>> {
        if file_ordered.len() != self.perm.len() {
            return Err(SdmError::Usage("length mismatch in to_user_order".into()));
        }
        if file_ordered.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = vec![file_ordered[0]; file_ordered.len()];
        for (k, &p) in self.perm.iter().enumerate() {
            out[p as usize] = file_ordered[k];
        }
        Ok(out)
    }
}
