//! The six SDM metadata tables (Figure 4) and typed helpers over them.
//!
//! All access is embedded SQL against [`sdm_metadb::Database`], exactly
//! as the paper's SDM spoke to MySQL. Only rank 0 mutates; every rank
//! charges the metadata round-trip cost through the PFS metadata service.

use sdm_metadb::{Database, DbResult, Value};

/// DDL for the six tables.
pub const TABLE_DDL: [&str; 6] = [
    "CREATE TABLE IF NOT EXISTS run_table (
        runid INT, application TEXT, dimension INT, problem_size INT,
        num_timesteps INT, year INT, month INT, day INT, hour INT, min INT)",
    "CREATE TABLE IF NOT EXISTS access_pattern_table (
        runid INT, dataset TEXT, basic_pattern TEXT, data_type TEXT,
        storage_order TEXT, access_pattern TEXT, global_size INT)",
    "CREATE TABLE IF NOT EXISTS execution_table (
        runid INT, dataset TEXT, timestep INT, file_offset INT, file_name TEXT)",
    "CREATE TABLE IF NOT EXISTS import_table (
        runid INT, imported_name TEXT, file_name TEXT, data_type TEXT,
        storage_order TEXT, partition TEXT, file_content TEXT)",
    "CREATE TABLE IF NOT EXISTS index_table (
        problem_size INT, num_procs INT, dimension INT, registered_file_name TEXT)",
    "CREATE TABLE IF NOT EXISTS index_history_table (
        problem_size INT, num_procs INT, rank INT, edge_count INT,
        node_count INT, ghost_count INT, file_offset INT, byte_len INT)",
];

/// Create all six tables if absent.
pub fn create_all(db: &Database) -> DbResult<()> {
    for ddl in TABLE_DDL {
        db.exec(ddl, &[])?;
    }
    Ok(())
}

/// Next unused runid (max + 1, starting at 1).
pub fn next_runid(db: &Database) -> DbResult<i64> {
    let rs = db.exec("SELECT runid FROM run_table ORDER BY runid DESC LIMIT 1", &[])?;
    Ok(rs.scalar().and_then(Value::as_i64).unwrap_or(0) + 1)
}

/// Most recent runid recorded for an application, if any. Used by
/// post-processing tools (visualization, `sdm-sci` containers) to
/// re-attach to a finished run's metadata.
pub fn latest_runid_for_app(db: &Database, application: &str) -> DbResult<Option<i64>> {
    let rs = db.exec(
        "SELECT runid FROM run_table WHERE application = ? ORDER BY runid DESC LIMIT 1",
        &[Value::from(application)],
    )?;
    Ok(rs.scalar().and_then(Value::as_i64))
}

/// Insert the run row (Figure 4's Initialization step).
#[allow(clippy::too_many_arguments)]
pub fn insert_run(
    db: &Database,
    runid: i64,
    application: &str,
    dimension: i64,
    problem_size: i64,
    num_timesteps: i64,
    date: (i64, i64, i64),
    time: (i64, i64),
) -> DbResult<()> {
    db.exec(
        "INSERT INTO run_table VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        &[
            Value::Int(runid),
            Value::from(application),
            Value::Int(dimension),
            Value::Int(problem_size),
            Value::Int(num_timesteps),
            Value::Int(date.0),
            Value::Int(date.1),
            Value::Int(date.2),
            Value::Int(time.0),
            Value::Int(time.1),
        ],
    )?;
    Ok(())
}

/// Record a dataset's attributes (the `SDM_set_attributes` step).
pub fn insert_access_pattern(
    db: &Database,
    runid: i64,
    dataset: &str,
    data_type: &str,
    storage_order: &str,
    access_pattern: &str,
    global_size: i64,
) -> DbResult<()> {
    db.exec(
        "INSERT INTO access_pattern_table VALUES (?, ?, ?, ?, ?, ?, ?)",
        &[
            Value::Int(runid),
            Value::from(dataset),
            Value::from(access_pattern), // basic_pattern mirrors the access pattern here
            Value::from(data_type),
            Value::from(storage_order),
            Value::from(access_pattern),
            Value::Int(global_size),
        ],
    )?;
    Ok(())
}

/// Record where a (dataset, timestep) landed (the `SDM_write` step:
/// "the file offset for each data set is stored in the execution table
/// by process 0").
pub fn insert_execution(
    db: &Database,
    runid: i64,
    dataset: &str,
    timestep: i64,
    file_offset: i64,
    file_name: &str,
) -> DbResult<()> {
    db.exec(
        "INSERT INTO execution_table VALUES (?, ?, ?, ?, ?)",
        &[
            Value::Int(runid),
            Value::from(dataset),
            Value::Int(timestep),
            Value::Int(file_offset),
            Value::from(file_name),
        ],
    )?;
    Ok(())
}

/// Look up where a (dataset, timestep) was written.
pub fn lookup_execution(
    db: &Database,
    runid: i64,
    dataset: &str,
    timestep: i64,
) -> DbResult<Option<(i64, String)>> {
    let rs = db.exec(
        "SELECT file_offset, file_name FROM execution_table
         WHERE runid = ? AND dataset = ? AND timestep = ?",
        &[Value::Int(runid), Value::from(dataset), Value::Int(timestep)],
    )?;
    Ok(rs.first().map(|r| {
        (
            r[0].as_i64().unwrap_or(0),
            r[1].as_str().unwrap_or_default().to_string(),
        )
    }))
}

/// Record an imported array's metadata (the `SDM_make_importlist` step).
pub fn insert_import(
    db: &Database,
    runid: i64,
    imported_name: &str,
    file_name: &str,
    data_type: &str,
    storage_order: &str,
    file_content: &str,
) -> DbResult<()> {
    db.exec(
        "INSERT INTO import_table VALUES (?, ?, ?, ?, ?, ?, ?)",
        &[
            Value::Int(runid),
            Value::from(imported_name),
            Value::from(file_name),
            Value::from(data_type),
            Value::from(storage_order),
            Value::from("DISTRIBUTED"),
            Value::from(file_content),
        ],
    )?;
    Ok(())
}

/// Register a history file (the `SDM_index_registry` step).
pub fn insert_index_registry(
    db: &Database,
    problem_size: i64,
    num_procs: i64,
    dimension: i64,
    file_name: &str,
) -> DbResult<()> {
    db.exec(
        "INSERT INTO index_table VALUES (?, ?, ?, ?)",
        &[
            Value::Int(problem_size),
            Value::Int(num_procs),
            Value::Int(dimension),
            Value::from(file_name),
        ],
    )?;
    Ok(())
}

/// Look up a history file for (problem_size, num_procs) — the check at
/// the top of `SDM_import`/`SDM_partition_index`.
pub fn lookup_index_registry(
    db: &Database,
    problem_size: i64,
    num_procs: i64,
) -> DbResult<Option<String>> {
    let rs = db.exec(
        "SELECT registered_file_name FROM index_table WHERE problem_size = ? AND num_procs = ?",
        &[Value::Int(problem_size), Value::Int(num_procs)],
    )?;
    Ok(rs.first().and_then(|r| r[0].as_str().map(str::to_string)))
}

/// Per-rank block of a history file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryBlock {
    /// Rank the block belongs to.
    pub rank: i64,
    /// Partitioned edge count.
    pub edge_count: i64,
    /// Owned node count.
    pub node_count: i64,
    /// Ghost node count.
    pub ghost_count: i64,
    /// Byte offset of the block in the history file.
    pub file_offset: i64,
    /// Byte length of the block.
    pub byte_len: i64,
}

/// Record one rank's history block metadata.
pub fn insert_history_block(
    db: &Database,
    problem_size: i64,
    num_procs: i64,
    b: &HistoryBlock,
) -> DbResult<()> {
    db.exec(
        "INSERT INTO index_history_table VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        &[
            Value::Int(problem_size),
            Value::Int(num_procs),
            Value::Int(b.rank),
            Value::Int(b.edge_count),
            Value::Int(b.node_count),
            Value::Int(b.ghost_count),
            Value::Int(b.file_offset),
            Value::Int(b.byte_len),
        ],
    )?;
    Ok(())
}

/// Fetch one rank's history block metadata.
pub fn lookup_history_block(
    db: &Database,
    problem_size: i64,
    num_procs: i64,
    rank: i64,
) -> DbResult<Option<HistoryBlock>> {
    let rs = db.exec(
        "SELECT rank, edge_count, node_count, ghost_count, file_offset, byte_len
         FROM index_history_table
         WHERE problem_size = ? AND num_procs = ? AND rank = ?",
        &[Value::Int(problem_size), Value::Int(num_procs), Value::Int(rank)],
    )?;
    Ok(rs.first().map(|r| HistoryBlock {
        rank: r[0].as_i64().unwrap_or(0),
        edge_count: r[1].as_i64().unwrap_or(0),
        node_count: r[2].as_i64().unwrap_or(0),
        ghost_count: r[3].as_i64().unwrap_or(0),
        file_offset: r[4].as_i64().unwrap_or(0),
        byte_len: r[5].as_i64().unwrap_or(0),
    }))
}

/// Remove a registered history (e.g. after detecting corruption).
pub fn delete_index_registry(db: &Database, problem_size: i64, num_procs: i64) -> DbResult<()> {
    db.exec(
        "DELETE FROM index_table WHERE problem_size = ? AND num_procs = ?",
        &[Value::Int(problem_size), Value::Int(num_procs)],
    )?;
    db.exec(
        "DELETE FROM index_history_table WHERE problem_size = ? AND num_procs = ?",
        &[Value::Int(problem_size), Value::Int(num_procs)],
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        create_all(&db).unwrap();
        db
    }

    #[test]
    fn create_all_is_idempotent() {
        let d = db();
        create_all(&d).unwrap();
        assert!(d.has_table("run_table"));
        assert!(d.has_table("index_history_table"));
    }

    #[test]
    fn runid_sequence() {
        let d = db();
        assert_eq!(next_runid(&d).unwrap(), 1);
        insert_run(&d, 1, "fun3d", 3, 1000, 2, (2001, 2, 20), (12, 0)).unwrap();
        assert_eq!(next_runid(&d).unwrap(), 2);
        insert_run(&d, 5, "rt", 3, 99, 5, (2001, 2, 21), (9, 30)).unwrap();
        assert_eq!(next_runid(&d).unwrap(), 6);
    }

    #[test]
    fn execution_round_trip() {
        let d = db();
        insert_execution(&d, 1, "p", 10, 4096, "fun3d.g0.dat").unwrap();
        let hit = lookup_execution(&d, 1, "p", 10).unwrap();
        assert_eq!(hit, Some((4096, "fun3d.g0.dat".to_string())));
        assert_eq!(lookup_execution(&d, 1, "p", 20).unwrap(), None);
        assert_eq!(lookup_execution(&d, 2, "p", 10).unwrap(), None);
    }

    #[test]
    fn index_registry_round_trip() {
        let d = db();
        insert_index_registry(&d, 18_000_000, 64, 3, "hist.18M.64").unwrap();
        assert_eq!(
            lookup_index_registry(&d, 18_000_000, 64).unwrap(),
            Some("hist.18M.64".to_string())
        );
        // Different process count: miss (the paper's key limitation).
        assert_eq!(lookup_index_registry(&d, 18_000_000, 32).unwrap(), None);
        delete_index_registry(&d, 18_000_000, 64).unwrap();
        assert_eq!(lookup_index_registry(&d, 18_000_000, 64).unwrap(), None);
    }

    #[test]
    fn history_blocks_round_trip() {
        let d = db();
        let b = HistoryBlock {
            rank: 3,
            edge_count: 1000,
            node_count: 300,
            ghost_count: 40,
            file_offset: 65536,
            byte_len: 20480,
        };
        insert_history_block(&d, 500, 8, &b).unwrap();
        assert_eq!(lookup_history_block(&d, 500, 8, 3).unwrap(), Some(b));
        assert_eq!(lookup_history_block(&d, 500, 8, 4).unwrap(), None);
    }

    #[test]
    fn access_pattern_and_import_inserts() {
        let d = db();
        insert_access_pattern(&d, 1, "p", "DOUBLE", "ROW_MAJOR", "IRREGULAR", 2_000_000).unwrap();
        insert_import(&d, 1, "edge1", "uns3d.msh", "INTEGER", "ROW_MAJOR", "INDEX").unwrap();
        let rs = d
            .exec("SELECT data_type FROM access_pattern_table WHERE dataset = 'p'", &[])
            .unwrap();
        assert_eq!(rs.scalar().and_then(Value::as_str), Some("DOUBLE"));
        let rs = d
            .exec("SELECT file_content FROM import_table WHERE imported_name = 'edge1'", &[])
            .unwrap();
        assert_eq!(rs.scalar().and_then(Value::as_str), Some("INDEX"));
    }
}
