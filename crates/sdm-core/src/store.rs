//! The metadata access layer: every metadata read and write in SDM goes
//! through the [`MetadataStore`] trait.
//!
//! The paper routes all application metadata — run registration, access
//! patterns, per-timestep file offsets, import descriptions, index
//! history — through a MySQL server, making the metadata path the
//! system's control plane. This module is the seam that path plugs into:
//!
//! * [`SqlStore`] executes **typed statements**
//!   ([`sdm_metadb::stmt::Stmt`]) against [`sdm_metadb::Database`]:
//!   every hot operation compiles once into an executable plan over the
//!   six [`crate::schema`] relations of the paper's Figure 4 (DDL and
//!   secondary indexes generated from their descriptors), so the warmed
//!   metadata path formats, hashes, and parses **zero SQL text**.
//! * [`CachedStore`] layers a rank-0 write-through cache on any inner
//!   store, keyed by `(relation, key)`: repeated per-timestep
//!   `execution_table` inserts batch into one transaction per timestep,
//!   and hot lookups (execution rows, index registrations, history
//!   blocks) are answered from memory.
//!
//! Future backends (sharded, remote, persistent) implement the same
//! trait; `Sdm`, the container layers, and the application harnesses
//! never name a concrete store — and because statements arrive as typed
//! values naming their relation, a `ShardedStore` is a pure routing
//! function over them.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sdm_metadb::stmt::{param, Delete, Insert, Query, Relation, Stmt, TableDesc, TypedColumn};
use sdm_metadb::{Database, DbError, DbResult, ResultSet, TxTicket, Value};

use crate::schema::{
    AccessPatternRow, ExecutionCol, ExecutionRow, ImportRow, IndexCol, IndexHistoryCol,
    IndexHistoryRow, IndexRow, RunCol, RunRow, FIGURE4_TABLES,
};

/// Create a relation's table and secondary indexes through a store,
/// entirely from its descriptor (no DDL strings). Idempotent: the table
/// is `IF NOT EXISTS` and already-present indexes are ignored. Layered
/// schemas (the `sdm-sci` container tables) call this with their own
/// descriptors so their DDL rides the same machinery.
pub fn ensure_table(store: &dyn MetadataStore, desc: &TableDesc) -> DbResult<()> {
    store.run(&desc.create_table(), &[])?;
    for ix in desc.create_indexes() {
        match store.run(&ix, &[]) {
            Ok(_) | Err(DbError::IndexExists(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One `run_table` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Run id (allocated by [`MetadataStore::allocate_runid`]).
    pub runid: i64,
    /// Application name.
    pub application: String,
    /// Spatial dimension.
    pub dimension: i64,
    /// Problem size (nodes/elements; application-defined).
    pub problem_size: i64,
    /// Declared timestep count (0 when open-ended).
    pub num_timesteps: i64,
    /// Run date `(year, month, day)`.
    pub date: (i64, i64, i64),
    /// Run time `(hour, minute)`.
    pub time: (i64, i64),
}

/// Per-rank block of a history file (one `index_history_table` row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryBlock {
    /// Rank the block belongs to.
    pub rank: i64,
    /// Partitioned edge count.
    pub edge_count: i64,
    /// Owned node count.
    pub node_count: i64,
    /// Ghost node count.
    pub ghost_count: i64,
    /// Byte offset of the block in the history file.
    pub file_offset: i64,
    /// Byte length of the block.
    pub byte_len: i64,
}

/// A shared, thread-safe metadata store handle.
pub type SharedStore = Arc<dyn MetadataStore>;

/// Typed access to SDM's metadata tables.
///
/// All methods take `&self` and must be safe to call from every rank
/// thread of a world; implementations serialize internally. `Sdm` calls
/// the mutating methods from rank 0 only, mirroring the paper.
pub trait MetadataStore: Send + Sync {
    /// Create the six tables (and any backend index structures) if
    /// absent. Idempotent.
    fn ensure_schema(&self) -> DbResult<()>;

    /// Allocate a fresh run id and reserve it atomically: two
    /// concurrent initializers can never mint the same id. The
    /// reservation writes an *anonymous* minimal `run_table` row
    /// (`application` is recorded only when
    /// [`MetadataStore::record_run`] completes it), so an abandoned
    /// initialize never shadows a finished run in
    /// [`MetadataStore::latest_runid_for_app`]. `application` is
    /// advisory for backends (sharding keys, audit logs).
    fn allocate_runid(&self, application: &str) -> DbResult<i64>;

    /// Most recent runid recorded for an application, if any. Used by
    /// post-processing layers (visualization, containers) to re-attach
    /// to a finished run's metadata.
    fn latest_runid_for_app(&self, application: &str) -> DbResult<Option<i64>>;

    /// Whether a `run_table` row exists for `runid`. `Sdm::attach`
    /// checks this on rank 0 so attaching to a never-recorded run fails
    /// loudly instead of silently resolving no data.
    fn run_exists(&self, runid: i64) -> DbResult<bool>;

    /// Record (or complete a reserved) run row.
    fn record_run(&self, rec: &RunRecord) -> DbResult<()>;

    /// Record a dataset's attributes (the `SDM_set_attributes` step).
    fn record_access_pattern(
        &self,
        runid: i64,
        dataset: &str,
        data_type: &str,
        storage_order: &str,
        access_pattern: &str,
        global_size: i64,
    ) -> DbResult<()>;

    /// Record where a (dataset, timestep) landed (the `SDM_write` step:
    /// "the file offset for each data set is stored in the execution
    /// table by process 0").
    fn record_execution(
        &self,
        runid: i64,
        dataset: &str,
        timestep: i64,
        file_offset: i64,
        file_name: &str,
    ) -> DbResult<()>;

    /// Look up where a (dataset, timestep) was written.
    fn lookup_execution(
        &self,
        runid: i64,
        dataset: &str,
        timestep: i64,
    ) -> DbResult<Option<(i64, String)>>;

    /// The full write history of an application: every `(runid,
    /// timestep, file_offset, file_name)` recorded for any of its runs,
    /// run-then-timestep ordered — the paper's cross-table reporting
    /// query (`run_table ⋈ execution_table ON runid`). Both tables
    /// carry a runid-led ordered index, so the executor serves this as
    /// a merge join over the two index streams: no per-statement hash
    /// table, no full scan ([`sdm_metadb::DbStats::join_merge_joins`]
    /// ticks, `join_hash_builds` does not).
    fn execution_history(&self, application: &str) -> DbResult<Vec<(i64, i64, i64, String)>> {
        let stmt =
            sdm_metadb::stmt_once!(Query::<RunRow>::filter(RunCol::Application.eq(param(0)))
                .join_on::<ExecutionRow>(RunCol::Runid, ExecutionCol::Runid)
                .select_right(&[
                    ExecutionCol::Runid,
                    ExecutionCol::Timestep,
                    ExecutionCol::FileOffset,
                    ExecutionCol::FileName,
                ])
                .order_by_right(ExecutionCol::Runid)
                .order_by_right(ExecutionCol::Timestep)
                .compile());
        let rs = self.run(stmt, &[Value::from(application)])?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| {
                (
                    r[0].as_i64().unwrap_or(0),
                    r[1].as_i64().unwrap_or(0),
                    r[2].as_i64().unwrap_or(0),
                    r[3].as_str().unwrap_or_default().to_string(),
                )
            })
            .collect())
    }

    /// Record an imported array's metadata (`SDM_make_importlist`).
    fn record_import(
        &self,
        runid: i64,
        imported_name: &str,
        file_name: &str,
        data_type: &str,
        storage_order: &str,
        file_content: &str,
    ) -> DbResult<()>;

    /// Register a history file (`SDM_index_registry`).
    fn record_index_registry(
        &self,
        problem_size: i64,
        num_procs: i64,
        dimension: i64,
        file_name: &str,
    ) -> DbResult<()>;

    /// Look up a history file for (problem_size, num_procs) — the check
    /// at the top of `SDM_import`/`SDM_partition_index`.
    fn lookup_index_registry(&self, problem_size: i64, num_procs: i64) -> DbResult<Option<String>>;

    /// Record one rank's history block metadata.
    fn record_history_block(
        &self,
        problem_size: i64,
        num_procs: i64,
        block: &HistoryBlock,
    ) -> DbResult<()>;

    /// Fetch one rank's history block metadata.
    fn lookup_history_block(
        &self,
        problem_size: i64,
        num_procs: i64,
        rank: i64,
    ) -> DbResult<Option<HistoryBlock>>;

    /// Remove a registered history (e.g. after detecting corruption).
    fn delete_index_registry(&self, problem_size: i64, num_procs: i64) -> DbResult<()>;

    /// Run a typed statement through the store. Layered metadata
    /// schemas — the `sdm-sci` container tables, bench report queries —
    /// use this instead of holding a raw database handle, so their
    /// statements share the same caching/batching machinery, and future
    /// backends can route them by [`Stmt::table`] instead of parsing
    /// SQL text.
    fn run(&self, stmt: &Stmt, params: &[Value]) -> DbResult<ResultSet>;

    /// Run arbitrary SQL text through the store: a veneer that parses
    /// the text into a typed [`Stmt`] per call (through the database's
    /// plan cache, so the text traffic shows up in `DbStats::sql_texts`
    /// and `parse_hits`/`parse_misses`) and hands it to
    /// [`MetadataStore::run`].
    #[deprecated(note = "build a typed `sdm_metadb::stmt::Stmt` and call `run`; \
                SQL text is re-parsed on every `exec` call")]
    fn exec(&self, sql: &str, params: &[Value]) -> DbResult<ResultSet> {
        let ps = self.database().prepare(sql)?;
        self.run(&ps.as_stmt(), params)
    }

    /// Push any buffered writes down to the backing database. A no-op
    /// for unbuffered stores.
    fn flush(&self) -> DbResult<()>;

    /// Flush buffered writes, then checkpoint the backing database's
    /// write-ahead log: snapshot the catalog atomically and truncate the
    /// log (see `sdm_metadb::Database::checkpoint`). Returns the last
    /// transaction id the snapshot covers. Errors on a non-durable
    /// (in-memory) database.
    fn checkpoint(&self) -> DbResult<u64> {
        self.flush()?;
        self.database().checkpoint()
    }

    /// The backing embedded database (persistence snapshots, stats).
    fn database(&self) -> &Arc<Database>;
}

// ---------------------------------------------------------------------
// SqlStore
// ---------------------------------------------------------------------

/// The hot statements of the metadata path, compiled once per store and
/// held in [`SqlStore`] as typed plans: after the first call, executing
/// one is a pure AST replay — no SQL text exists to format, hash, or
/// parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hot {
    AllocMax,
    LatestForApp,
    RunExists,
    UpdateRun,
    InsertRun,
    InsertAccessPattern,
    InsertExecution,
    LookupExecution,
    InsertImport,
    InsertRegistry,
    LookupRegistry,
    InsertBlock,
    LookupBlock,
    DeleteRegistry,
    DeleteBlocks,
}

impl Hot {
    const COUNT: usize = 15;

    /// Build the typed statement for this operation.
    fn compile(self) -> Stmt {
        match self {
            Hot::AllocMax => Query::<RunRow>::all().max(RunCol::Runid).compile(),
            Hot::LatestForApp => Query::<RunRow>::filter(RunCol::Application.eq(param(0)))
                .max(RunCol::Runid)
                .compile(),
            Hot::RunExists => Query::<RunRow>::filter(RunCol::Runid.eq(param(0)))
                .count()
                .compile(),
            Hot::UpdateRun => sdm_metadb::stmt::Update::<RunRow>::new()
                .set(RunCol::Application, param(0))
                .set(RunCol::Dimension, param(1))
                .set(RunCol::ProblemSize, param(2))
                .set(RunCol::NumTimesteps, param(3))
                .set(RunCol::Year, param(4))
                .set(RunCol::Month, param(5))
                .set(RunCol::Day, param(6))
                .set(RunCol::Hour, param(7))
                .set(RunCol::Min, param(8))
                .filter(RunCol::Runid.eq(param(9)))
                .compile(),
            Hot::InsertRun => Insert::<RunRow>::prepared(),
            Hot::InsertAccessPattern => Insert::<AccessPatternRow>::prepared(),
            Hot::InsertExecution => Insert::<ExecutionRow>::prepared(),
            Hot::LookupExecution => Query::<ExecutionRow>::filter(
                ExecutionCol::Runid
                    .eq(param(0))
                    .and(ExecutionCol::Dataset.eq(param(1)))
                    .and(ExecutionCol::Timestep.eq(param(2))),
            )
            .select(&[ExecutionCol::FileOffset, ExecutionCol::FileName])
            .compile(),
            Hot::InsertImport => Insert::<ImportRow>::prepared(),
            Hot::InsertRegistry => Insert::<IndexRow>::prepared(),
            Hot::LookupRegistry => Query::<IndexRow>::filter(
                IndexCol::ProblemSize
                    .eq(param(0))
                    .and(IndexCol::NumProcs.eq(param(1))),
            )
            .select(&[IndexCol::RegisteredFileName])
            .compile(),
            Hot::InsertBlock => Insert::<IndexHistoryRow>::prepared(),
            Hot::LookupBlock => Query::<IndexHistoryRow>::filter(
                IndexHistoryCol::ProblemSize
                    .eq(param(0))
                    .and(IndexHistoryCol::NumProcs.eq(param(1)))
                    .and(IndexHistoryCol::Rank.eq(param(2))),
            )
            .select(&[
                IndexHistoryCol::Rank,
                IndexHistoryCol::EdgeCount,
                IndexHistoryCol::NodeCount,
                IndexHistoryCol::GhostCount,
                IndexHistoryCol::FileOffset,
                IndexHistoryCol::ByteLen,
            ])
            .compile(),
            Hot::DeleteRegistry => Delete::<IndexRow>::filter(
                IndexCol::ProblemSize
                    .eq(param(0))
                    .and(IndexCol::NumProcs.eq(param(1))),
            )
            .compile(),
            Hot::DeleteBlocks => Delete::<IndexHistoryRow>::filter(
                IndexHistoryCol::ProblemSize
                    .eq(param(0))
                    .and(IndexHistoryCol::NumProcs.eq(param(1))),
            )
            .compile(),
        }
    }
}

/// Direct store over the embedded database: every method executes one
/// (or a few) typed statements, compiled lazily once and replayed for
/// the lifetime of the store.
pub struct SqlStore {
    db: Arc<Database>,
    plans: [std::sync::OnceLock<Stmt>; Hot::COUNT],
}

impl SqlStore {
    /// Wrap a database handle.
    pub fn new(db: Arc<Database>) -> Self {
        SqlStore {
            db,
            plans: std::array::from_fn(|_| std::sync::OnceLock::new()),
        }
    }

    /// Convenience: a [`SharedStore`] over `db`.
    pub fn shared(db: &Arc<Database>) -> SharedStore {
        Arc::new(SqlStore::new(Arc::clone(db)))
    }

    /// Open (or create) a **durable** store at `dir`: the database
    /// recovers its state from the newest snapshot plus write-ahead-log
    /// replay, and every later committed transaction survives a crash
    /// (see `sdm_metadb::Database::open`). The schema is ensured as part
    /// of opening, so the handle is ready for traffic.
    pub fn open_durable(dir: impl AsRef<std::path::Path>) -> DbResult<SharedStore> {
        let store = SqlStore::new(Arc::new(Database::open(dir)?));
        store.ensure_schema()?;
        Ok(Arc::new(store))
    }

    /// Execute a hot statement through its once-compiled plan.
    fn run_hot(&self, which: Hot, params: &[Value]) -> DbResult<ResultSet> {
        let stmt = self.plans[which as usize].get_or_init(|| which.compile());
        self.db.exec_stmt(stmt, params)
    }
}

impl MetadataStore for SqlStore {
    fn ensure_schema(&self) -> DbResult<()> {
        for desc in FIGURE4_TABLES {
            ensure_table(self, desc)?;
        }
        Ok(())
    }

    fn allocate_runid(&self, application: &str) -> DbResult<i64> {
        // BEGIN ... COMMIT brackets the read-modify-write so interleaved
        // initializers serialize instead of both computing max+1 from
        // the same state (writes from other threads wait at the
        // database's table lock while the transaction is open). The
        // bracket is cheap by construction: a transaction is an undo
        // log of the rows it touches — opening one never clones the
        // catalog, and this one logs exactly the single reservation
        // row. The reservation row is what makes the new id visible to
        // the next allocator — but it is *anonymous* (NULL application)
        // until `record_run` completes it, so a crashed or failed
        // initialize can never hijack `latest_runid_for_app`
        // re-attachment.
        let _ = application;
        self.db.with_owned_tx(|| {
            let rs = self.run_hot(Hot::AllocMax, &[])?;
            let next = rs.scalar().and_then(Value::as_i64).unwrap_or(0) + 1;
            let mut reservation = vec![Value::Int(next), Value::Null];
            reservation.resize(RunRow::TABLE.arity(), Value::Int(0));
            self.run_hot(Hot::InsertRun, &reservation)?;
            Ok(next)
        })
    }

    fn latest_runid_for_app(&self, application: &str) -> DbResult<Option<i64>> {
        let rs = self.run_hot(Hot::LatestForApp, &[Value::from(application)])?;
        Ok(rs.scalar().and_then(Value::as_i64))
    }

    fn run_exists(&self, runid: i64) -> DbResult<bool> {
        let rs = self.run_hot(Hot::RunExists, &[Value::Int(runid)])?;
        Ok(rs.scalar().and_then(Value::as_i64).unwrap_or(0) > 0)
    }

    fn record_run(&self, rec: &RunRecord) -> DbResult<()> {
        // Complete the row reserved by `allocate_runid`; fall back to a
        // plain insert for runids minted elsewhere (imports, tests).
        let rs = self.run_hot(
            Hot::UpdateRun,
            &[
                Value::from(rec.application.as_str()),
                Value::Int(rec.dimension),
                Value::Int(rec.problem_size),
                Value::Int(rec.num_timesteps),
                Value::Int(rec.date.0),
                Value::Int(rec.date.1),
                Value::Int(rec.date.2),
                Value::Int(rec.time.0),
                Value::Int(rec.time.1),
                Value::Int(rec.runid),
            ],
        )?;
        if rs.affected == 0 {
            self.run_hot(
                Hot::InsertRun,
                &[
                    Value::Int(rec.runid),
                    Value::from(rec.application.as_str()),
                    Value::Int(rec.dimension),
                    Value::Int(rec.problem_size),
                    Value::Int(rec.num_timesteps),
                    Value::Int(rec.date.0),
                    Value::Int(rec.date.1),
                    Value::Int(rec.date.2),
                    Value::Int(rec.time.0),
                    Value::Int(rec.time.1),
                ],
            )?;
        }
        Ok(())
    }

    fn record_access_pattern(
        &self,
        runid: i64,
        dataset: &str,
        data_type: &str,
        storage_order: &str,
        access_pattern: &str,
        global_size: i64,
    ) -> DbResult<()> {
        self.run_hot(
            Hot::InsertAccessPattern,
            &[
                Value::Int(runid),
                Value::from(dataset),
                Value::from(access_pattern), // basic_pattern mirrors the access pattern here
                Value::from(data_type),
                Value::from(storage_order),
                Value::from(access_pattern),
                Value::Int(global_size),
            ],
        )?;
        Ok(())
    }

    fn record_execution(
        &self,
        runid: i64,
        dataset: &str,
        timestep: i64,
        file_offset: i64,
        file_name: &str,
    ) -> DbResult<()> {
        self.run_hot(
            Hot::InsertExecution,
            &[
                Value::Int(runid),
                Value::from(dataset),
                Value::Int(timestep),
                Value::Int(file_offset),
                Value::from(file_name),
            ],
        )?;
        Ok(())
    }

    fn lookup_execution(
        &self,
        runid: i64,
        dataset: &str,
        timestep: i64,
    ) -> DbResult<Option<(i64, String)>> {
        let rs = self.run_hot(
            Hot::LookupExecution,
            &[
                Value::Int(runid),
                Value::from(dataset),
                Value::Int(timestep),
            ],
        )?;
        Ok(rs.first().map(|r| {
            (
                r[0].as_i64().unwrap_or(0),
                r[1].as_str().unwrap_or_default().to_string(),
            )
        }))
    }

    fn record_import(
        &self,
        runid: i64,
        imported_name: &str,
        file_name: &str,
        data_type: &str,
        storage_order: &str,
        file_content: &str,
    ) -> DbResult<()> {
        self.run_hot(
            Hot::InsertImport,
            &[
                Value::Int(runid),
                Value::from(imported_name),
                Value::from(file_name),
                Value::from(data_type),
                Value::from(storage_order),
                Value::from("DISTRIBUTED"),
                Value::from(file_content),
            ],
        )?;
        Ok(())
    }

    fn record_index_registry(
        &self,
        problem_size: i64,
        num_procs: i64,
        dimension: i64,
        file_name: &str,
    ) -> DbResult<()> {
        self.run_hot(
            Hot::InsertRegistry,
            &[
                Value::Int(problem_size),
                Value::Int(num_procs),
                Value::Int(dimension),
                Value::from(file_name),
            ],
        )?;
        Ok(())
    }

    fn lookup_index_registry(&self, problem_size: i64, num_procs: i64) -> DbResult<Option<String>> {
        let rs = self.run_hot(
            Hot::LookupRegistry,
            &[Value::Int(problem_size), Value::Int(num_procs)],
        )?;
        Ok(rs.first().and_then(|r| r[0].as_str().map(str::to_string)))
    }

    fn record_history_block(
        &self,
        problem_size: i64,
        num_procs: i64,
        b: &HistoryBlock,
    ) -> DbResult<()> {
        self.run_hot(
            Hot::InsertBlock,
            &[
                Value::Int(problem_size),
                Value::Int(num_procs),
                Value::Int(b.rank),
                Value::Int(b.edge_count),
                Value::Int(b.node_count),
                Value::Int(b.ghost_count),
                Value::Int(b.file_offset),
                Value::Int(b.byte_len),
            ],
        )?;
        Ok(())
    }

    fn lookup_history_block(
        &self,
        problem_size: i64,
        num_procs: i64,
        rank: i64,
    ) -> DbResult<Option<HistoryBlock>> {
        let rs = self.run_hot(
            Hot::LookupBlock,
            &[
                Value::Int(problem_size),
                Value::Int(num_procs),
                Value::Int(rank),
            ],
        )?;
        Ok(rs.first().map(|r| HistoryBlock {
            rank: r[0].as_i64().unwrap_or(0),
            edge_count: r[1].as_i64().unwrap_or(0),
            node_count: r[2].as_i64().unwrap_or(0),
            ghost_count: r[3].as_i64().unwrap_or(0),
            file_offset: r[4].as_i64().unwrap_or(0),
            byte_len: r[5].as_i64().unwrap_or(0),
        }))
    }

    fn delete_index_registry(&self, problem_size: i64, num_procs: i64) -> DbResult<()> {
        self.run_hot(
            Hot::DeleteRegistry,
            &[Value::Int(problem_size), Value::Int(num_procs)],
        )?;
        self.run_hot(
            Hot::DeleteBlocks,
            &[Value::Int(problem_size), Value::Int(num_procs)],
        )?;
        Ok(())
    }

    fn run(&self, stmt: &Stmt, params: &[Value]) -> DbResult<ResultSet> {
        self.db.exec_stmt(stmt, params)
    }

    fn flush(&self) -> DbResult<()> {
        Ok(())
    }

    fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

// ---------------------------------------------------------------------
// CachedStore
// ---------------------------------------------------------------------

/// Buffered per-timestep execution inserts.
struct PendingExec {
    runid: i64,
    dataset: String,
    timestep: i64,
    file_offset: i64,
    file_name: String,
}

#[derive(Default)]
struct CacheState {
    /// (runid, dataset, timestep) → (offset, file): every recorded or
    /// looked-up execution row.
    executions: HashMap<(i64, String, i64), (i64, String)>,
    /// Execution rows recorded but not yet in the database; all share
    /// `pending_key`'s (runid, timestep).
    pending: Vec<PendingExec>,
    pending_key: Option<(i64, i64)>,
    /// (problem_size, num_procs) → history file name.
    registry: HashMap<(i64, i64), String>,
    /// (problem_size, num_procs, rank) → block metadata.
    blocks: HashMap<(i64, i64, i64), HistoryBlock>,
}

/// Write-through cache over an inner [`MetadataStore`].
///
/// Designed for the world-shared usage pattern: all ranks of a run hold
/// one `CachedStore` (rank 0 writes, everyone reads), so a row recorded
/// by rank 0 is immediately visible to every rank through the cache even
/// while its database insert is still buffered. Buffered
/// `execution_table` inserts are flushed in one `BEGIN`/`COMMIT`
/// transaction whenever the (runid, timestep) key advances, on
/// [`MetadataStore::flush`], and on drop — turning N-datasets-per-
/// timestep metadata traffic into one round trip per timestep.
pub struct CachedStore {
    inner: SharedStore,
    state: Mutex<CacheState>,
}

impl CachedStore {
    /// Layer a cache over `inner`.
    pub fn new(inner: SharedStore) -> Self {
        CachedStore {
            inner,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Convenience: a cached [`SharedStore`] over a [`SqlStore`] on `db`
    /// — the default store stack.
    pub fn shared(db: &Arc<Database>) -> SharedStore {
        Arc::new(CachedStore::new(SqlStore::shared(db)))
    }

    /// The default durable stack: a cache over a [`SqlStore`] on a
    /// database opened (with crash recovery) at `dir`. Buffered writes
    /// become durable when their batch transaction commits — [`flush`]
    /// or [`checkpoint`] force that down on demand.
    ///
    /// [`flush`]: MetadataStore::flush
    /// [`checkpoint`]: MetadataStore::checkpoint
    pub fn open_durable(dir: impl AsRef<std::path::Path>) -> DbResult<SharedStore> {
        Ok(Arc::new(CachedStore::new(SqlStore::open_durable(dir)?)))
    }

    /// Detach the pending batch so it can be written without holding
    /// the cache mutex (database calls may block on the table lock of a
    /// transaction whose owner needs this mutex — never nest them).
    fn take_pending(state: &mut CacheState) -> Vec<PendingExec> {
        state.pending_key = None;
        std::mem::take(&mut state.pending)
    }

    /// Write a detached batch inside one transaction. Called WITHOUT the
    /// cache mutex held. When the calling thread already has a
    /// transaction open (the statement escape hatch lets callers bracket
    /// their own work), the batch joins it instead of deadlocking on a
    /// second `BEGIN`; its fate then follows the caller's
    /// COMMIT/ROLLBACK.
    fn write_batch(&self, batch: Vec<PendingExec>) -> DbResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let db = self.inner.database();
        let ticket = db.begin_nested();
        let mut written = 0;
        let attempt = (|| {
            for p in &batch {
                self.inner.record_execution(
                    p.runid,
                    &p.dataset,
                    p.timestep,
                    p.file_offset,
                    &p.file_name,
                )?;
                written += 1;
            }
            Ok(())
        })();
        match (attempt, ticket) {
            (Ok(()), TxTicket::Owned) => db.exec_stmt(&Stmt::commit(), &[]).map(|_| ()),
            (Ok(()), TxTicket::Inherited) => Ok(()),
            (Err(e), TxTicket::Owned) => {
                let _ = db.exec_stmt(&Stmt::rollback(), &[]);
                // Nothing landed: requeue the whole batch for a later
                // retry (rows stay visible through the cache meanwhile).
                self.requeue(batch);
                Err(e)
            }
            (Err(e), TxTicket::Inherited) => {
                // Inside a caller-owned transaction there is no safe
                // rollback of our own writes: the first `written` rows
                // belong to the caller's transaction now. Requeue only
                // the rest so a retry cannot duplicate them.
                self.requeue(batch.into_iter().skip(written).collect());
                Err(e)
            }
        }
    }

    /// Put unwritten rows back at the head of the pending queue.
    fn requeue(&self, mut batch: Vec<PendingExec>) {
        if batch.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        batch.append(&mut state.pending);
        state.pending = batch;
        // The queue may now span timesteps; the next flush writes it as
        // one batch, which is still atomic per flush.
        state.pending_key = None;
    }

    /// Take and write everything currently pending.
    fn flush_pending(&self) -> DbResult<()> {
        let batch = Self::take_pending(&mut self.state.lock());
        self.write_batch(batch)
    }
}

impl Drop for CachedStore {
    fn drop(&mut self) {
        let _ = self.flush_pending();
    }
}

impl MetadataStore for CachedStore {
    fn ensure_schema(&self) -> DbResult<()> {
        self.inner.ensure_schema()
    }

    fn allocate_runid(&self, application: &str) -> DbResult<i64> {
        self.inner.allocate_runid(application)
    }

    fn latest_runid_for_app(&self, application: &str) -> DbResult<Option<i64>> {
        self.inner.latest_runid_for_app(application)
    }

    fn run_exists(&self, runid: i64) -> DbResult<bool> {
        self.inner.run_exists(runid)
    }

    fn record_run(&self, rec: &RunRecord) -> DbResult<()> {
        self.inner.record_run(rec)
    }

    fn record_access_pattern(
        &self,
        runid: i64,
        dataset: &str,
        data_type: &str,
        storage_order: &str,
        access_pattern: &str,
        global_size: i64,
    ) -> DbResult<()> {
        self.inner.record_access_pattern(
            runid,
            dataset,
            data_type,
            storage_order,
            access_pattern,
            global_size,
        )
    }

    fn record_execution(
        &self,
        runid: i64,
        dataset: &str,
        timestep: i64,
        file_offset: i64,
        file_name: &str,
    ) -> DbResult<()> {
        let closed_batch = {
            let mut state = self.state.lock();
            // A new (runid, timestep) closes the previous batch.
            let closed = if state.pending_key.is_some_and(|k| k != (runid, timestep)) {
                Self::take_pending(&mut state)
            } else {
                Vec::new()
            };
            state.pending_key = Some((runid, timestep));
            state.pending.push(PendingExec {
                runid,
                dataset: dataset.to_string(),
                timestep,
                file_offset,
                file_name: file_name.to_string(),
            });
            state.executions.insert(
                (runid, dataset.to_string(), timestep),
                (file_offset, file_name.to_string()),
            );
            closed
        };
        self.write_batch(closed_batch)
    }

    fn lookup_execution(
        &self,
        runid: i64,
        dataset: &str,
        timestep: i64,
    ) -> DbResult<Option<(i64, String)>> {
        let batch = {
            let mut state = self.state.lock();
            if let Some(hit) = state
                .executions
                .get(&(runid, dataset.to_string(), timestep))
            {
                return Ok(Some(hit.clone()));
            }
            // Not cached: the row may predate this store (attach) or
            // belong to a foreign writer. Make buffered rows visible
            // first (outside the cache mutex), then ask the inner store
            // and remember a positive answer.
            Self::take_pending(&mut state)
        };
        self.write_batch(batch)?;
        let found = self.inner.lookup_execution(runid, dataset, timestep)?;
        if let Some(hit) = &found {
            self.state
                .lock()
                .executions
                .insert((runid, dataset.to_string(), timestep), hit.clone());
        }
        Ok(found)
    }

    fn record_import(
        &self,
        runid: i64,
        imported_name: &str,
        file_name: &str,
        data_type: &str,
        storage_order: &str,
        file_content: &str,
    ) -> DbResult<()> {
        self.inner.record_import(
            runid,
            imported_name,
            file_name,
            data_type,
            storage_order,
            file_content,
        )
    }

    fn record_index_registry(
        &self,
        problem_size: i64,
        num_procs: i64,
        dimension: i64,
        file_name: &str,
    ) -> DbResult<()> {
        self.inner
            .record_index_registry(problem_size, num_procs, dimension, file_name)?;
        self.state
            .lock()
            .registry
            .insert((problem_size, num_procs), file_name.to_string());
        Ok(())
    }

    fn lookup_index_registry(&self, problem_size: i64, num_procs: i64) -> DbResult<Option<String>> {
        if let Some(hit) = self.state.lock().registry.get(&(problem_size, num_procs)) {
            return Ok(Some(hit.clone()));
        }
        let found = self.inner.lookup_index_registry(problem_size, num_procs)?;
        if let Some(name) = &found {
            self.state
                .lock()
                .registry
                .insert((problem_size, num_procs), name.clone());
        }
        Ok(found)
    }

    fn record_history_block(
        &self,
        problem_size: i64,
        num_procs: i64,
        block: &HistoryBlock,
    ) -> DbResult<()> {
        self.inner
            .record_history_block(problem_size, num_procs, block)?;
        self.state
            .lock()
            .blocks
            .insert((problem_size, num_procs, block.rank), *block);
        Ok(())
    }

    fn lookup_history_block(
        &self,
        problem_size: i64,
        num_procs: i64,
        rank: i64,
    ) -> DbResult<Option<HistoryBlock>> {
        if let Some(hit) = self
            .state
            .lock()
            .blocks
            .get(&(problem_size, num_procs, rank))
        {
            return Ok(Some(*hit));
        }
        let found = self
            .inner
            .lookup_history_block(problem_size, num_procs, rank)?;
        if let Some(b) = found {
            self.state
                .lock()
                .blocks
                .insert((problem_size, num_procs, rank), b);
        }
        Ok(found)
    }

    fn delete_index_registry(&self, problem_size: i64, num_procs: i64) -> DbResult<()> {
        self.inner.delete_index_registry(problem_size, num_procs)?;
        let mut state = self.state.lock();
        state.registry.remove(&(problem_size, num_procs));
        state
            .blocks
            .retain(|&(ps, np, _), _| (ps, np) != (problem_size, num_procs));
        Ok(())
    }

    fn run(&self, stmt: &Stmt, params: &[Value]) -> DbResult<ResultSet> {
        // The cache is keyed by relation: only statements that touch a
        // relation with buffered rows — as FROM table, join side, or
        // mutation target — or whose target is unknown force the
        // pending batch down first. Statements over other relations
        // pass straight through. Never flush ahead of a ROLLBACK: the
        // batch would join the very transaction being discarded and be
        // lost from the database while the cache kept serving it — it
        // stays queued for the next flush instead.
        let rollback = matches!(stmt.ast(), sdm_metadb::sql::ast::Statement::Rollback);
        if !rollback && (stmt.table().is_none() || stmt.references(ExecutionRow::TABLE.name)) {
            self.flush()?;
        }
        let rs = self.inner.run(stmt, params)?;
        // A mutation routed through the escape hatch may rewrite rows
        // the read caches hold; drop the affected relation's cache so
        // later lookups re-ask the database instead of serving stale
        // (possibly deleted) rows. A ROLLBACK may have discarded any
        // write that joined the transaction, so it drops everything
        // (pending rows are unaffected — they flush later).
        if rollback {
            let mut state = self.state.lock();
            state.executions.clear();
            state.registry.clear();
            state.blocks.clear();
        } else if stmt.is_mutation() {
            let mut state = self.state.lock();
            if stmt.references(ExecutionRow::TABLE.name) {
                state.executions.clear();
            }
            if stmt.references(IndexRow::TABLE.name) {
                state.registry.clear();
            }
            if stmt.references(IndexHistoryRow::TABLE.name) {
                state.blocks.clear();
            }
        }
        Ok(rs)
    }

    fn flush(&self) -> DbResult<()> {
        self.flush_pending()?;
        self.inner.flush()
    }

    fn database(&self) -> &Arc<Database> {
        self.inner.database()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sql_store() -> SqlStore {
        let store = SqlStore::new(Arc::new(Database::new()));
        store.ensure_schema().unwrap();
        store
    }

    fn cached_store() -> SharedStore {
        let db = Arc::new(Database::new());
        let store = CachedStore::shared(&db);
        store.ensure_schema().unwrap();
        store
    }

    fn run_rec(runid: i64, app: &str) -> RunRecord {
        RunRecord {
            runid,
            application: app.to_string(),
            dimension: 3,
            problem_size: 1000,
            num_timesteps: 2,
            date: (2001, 2, 20),
            time: (12, 0),
        }
    }

    #[test]
    fn execution_history_merge_joins_off_the_runid_indexes() {
        let s = sql_store();
        s.record_run(&run_rec(1, "fun3d")).unwrap();
        s.record_run(&run_rec(2, "rt")).unwrap();
        s.record_run(&run_rec(3, "fun3d")).unwrap();
        for ts in 0..3 {
            s.record_execution(1, "pressure", ts, ts * 100, "f1.dat")
                .unwrap();
            s.record_execution(2, "pressure", ts, ts * 100, "f2.dat")
                .unwrap();
            s.record_execution(3, "pressure", ts, ts * 100, "f3.dat")
                .unwrap();
        }
        let before = s.database().stats();
        let hist = s.execution_history("fun3d").unwrap();
        let after = s.database().stats();
        // Runs 1 and 3 belong to fun3d, 3 timesteps each, ordered by
        // (runid, timestep).
        assert_eq!(hist.len(), 6);
        assert_eq!(hist[0], (1, 0, 0, "f1.dat".to_string()));
        assert_eq!(hist[5], (3, 2, 200, "f3.dat".to_string()));
        // The eq-join is served by a merge over the two runid-led
        // ordered indexes — never by a per-statement hash build.
        assert_eq!(after.join_merge_joins - before.join_merge_joins, 1);
        assert_eq!(after.join_hash_builds, before.join_hash_builds);
        assert_eq!(after.ast_eval_fallbacks, before.ast_eval_fallbacks);
    }

    #[test]
    fn schema_setup_is_idempotent() {
        let s = sql_store();
        s.ensure_schema().unwrap();
        assert!(s.database().has_table("run_table"));
        assert!(s.database().has_table("index_history_table"));
    }

    #[test]
    fn runid_allocation_reserves_and_advances() {
        let s = sql_store();
        assert_eq!(s.allocate_runid("fun3d").unwrap(), 1);
        assert_eq!(s.allocate_runid("rt").unwrap(), 2);
        // Reservations are anonymous: an allocated-but-never-recorded
        // run must not be discoverable by application name.
        assert_eq!(s.latest_runid_for_app("fun3d").unwrap(), None);
        s.record_run(&run_rec(2, "rt")).unwrap();
        assert_eq!(s.latest_runid_for_app("rt").unwrap(), Some(2));
        // record_run completes the reserved row instead of duplicating it.
        s.record_run(&run_rec(1, "fun3d")).unwrap();
        let rs = s
            .run(
                &Query::<RunRow>::filter(RunCol::Runid.eq(1))
                    .count()
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        let rs = s
            .run(
                &Query::<RunRow>::filter(RunCol::Runid.eq(1))
                    .select(&[RunCol::ProblemSize])
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1000)));
    }

    #[test]
    fn concurrent_runid_allocation_never_duplicates() {
        use std::collections::HashSet;
        let db = Arc::new(Database::new());
        let store = SqlStore::shared(&db);
        store.ensure_schema().unwrap();
        let ids = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        (0..10)
                            .map(|_| store.allocate_runid("race").unwrap())
                            .collect::<Vec<i64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<i64>>()
        });
        let unique: HashSet<i64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate run ids minted: {ids:?}");
        assert_eq!(ids.len(), 80);
    }

    #[test]
    fn record_run_without_reservation_inserts() {
        let s = sql_store();
        s.record_run(&run_rec(42, "import")).unwrap();
        assert_eq!(s.latest_runid_for_app("import").unwrap(), Some(42));
    }

    #[test]
    fn execution_round_trip() {
        let s = sql_store();
        s.record_execution(1, "p", 10, 4096, "fun3d.g0.dat")
            .unwrap();
        let hit = s.lookup_execution(1, "p", 10).unwrap();
        assert_eq!(hit, Some((4096, "fun3d.g0.dat".to_string())));
        assert_eq!(s.lookup_execution(1, "p", 20).unwrap(), None);
        assert_eq!(s.lookup_execution(2, "p", 10).unwrap(), None);
    }

    #[test]
    fn index_registry_round_trip() {
        let s = sql_store();
        s.record_index_registry(18_000_000, 64, 3, "hist.18M.64")
            .unwrap();
        assert_eq!(
            s.lookup_index_registry(18_000_000, 64).unwrap(),
            Some("hist.18M.64".to_string())
        );
        // Different process count: miss (the paper's key limitation).
        assert_eq!(s.lookup_index_registry(18_000_000, 32).unwrap(), None);
        s.delete_index_registry(18_000_000, 64).unwrap();
        assert_eq!(s.lookup_index_registry(18_000_000, 64).unwrap(), None);
    }

    #[test]
    fn history_blocks_round_trip() {
        let s = sql_store();
        let b = HistoryBlock {
            rank: 3,
            edge_count: 1000,
            node_count: 300,
            ghost_count: 40,
            file_offset: 65536,
            byte_len: 20480,
        };
        s.record_history_block(500, 8, &b).unwrap();
        assert_eq!(s.lookup_history_block(500, 8, 3).unwrap(), Some(b));
        assert_eq!(s.lookup_history_block(500, 8, 4).unwrap(), None);
    }

    #[test]
    fn access_pattern_and_import_records() {
        let s = sql_store();
        use crate::schema::{AccessPatternCol, ImportCol};
        s.record_access_pattern(1, "p", "DOUBLE", "ROW_MAJOR", "IRREGULAR", 2_000_000)
            .unwrap();
        s.record_import(1, "edge1", "uns3d.msh", "INTEGER", "ROW_MAJOR", "INDEX")
            .unwrap();
        let rs = s
            .run(
                &Query::<AccessPatternRow>::filter(AccessPatternCol::Dataset.eq("p"))
                    .select(&[AccessPatternCol::DataType])
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.scalar().and_then(Value::as_str), Some("DOUBLE"));
        let rs = s
            .run(
                &Query::<ImportRow>::filter(ImportCol::ImportedName.eq("edge1"))
                    .select(&[ImportCol::FileContent])
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.scalar().and_then(Value::as_str), Some("INDEX"));
    }

    #[test]
    fn lookups_use_declared_indexes() {
        let s = sql_store();
        for ts in 0..50 {
            s.record_execution(7, "p", ts, ts * 512, "f.dat").unwrap();
        }
        s.database().reset_stats();
        assert!(s.lookup_execution(7, "p", 25).unwrap().is_some());
        let stats = s.database().stats();
        assert_eq!(
            stats.index_scans, 1,
            "execution lookup must probe the runid index"
        );
        assert_eq!(stats.full_scans, 0);
    }

    #[test]
    fn typed_hot_path_touches_no_sql_text() {
        let s = sql_store();
        s.database().reset_stats();
        for ts in 0..20 {
            s.record_execution(1, "p", ts, 0, "f").unwrap();
            s.lookup_execution(1, "p", ts).unwrap();
        }
        let stats = s.database().stats();
        // Typed statements are compiled ASTs: nothing is ever lexed,
        // parsed, or even looked up by SQL text.
        assert_eq!(stats.parse_misses, 0);
        assert_eq!(stats.parse_hits, 0);
        assert_eq!(stats.sql_texts, 0, "no SQL text entered the engine");
    }

    // ---- CachedStore ----

    /// Rows currently in `execution_table` as the database sees them
    /// (bypassing the store's cache).
    fn db_exec_rows(db: &Database) -> i64 {
        db.exec_stmt(&Query::<ExecutionRow>::all().count().compile(), &[])
            .unwrap()
            .scalar()
            .and_then(Value::as_i64)
            .unwrap()
    }

    #[test]
    fn cached_store_batches_per_timestep() {
        let s = cached_store();
        let count = |s: &SharedStore| db_exec_rows(s.database());
        // Three datasets in timestep 0: buffered, not yet in the DB...
        s.record_execution(1, "p", 0, 0, "f").unwrap();
        s.record_execution(1, "q", 0, 100, "f").unwrap();
        s.record_execution(1, "r", 0, 200, "f").unwrap();
        assert_eq!(count(&s), 0, "same-timestep inserts stay buffered");
        // ...but visible through the cache on every rank.
        assert_eq!(
            s.lookup_execution(1, "q", 0).unwrap(),
            Some((100, "f".into()))
        );
        // Moving to timestep 1 flushes the batch in one transaction.
        s.record_execution(1, "p", 1, 300, "f").unwrap();
        assert_eq!(count(&s), 3);
        // Explicit flush drains the rest.
        s.flush().unwrap();
        assert_eq!(count(&s), 4);
    }

    #[test]
    fn cached_store_serves_foreign_rows_after_flush() {
        let db = Arc::new(Database::new());
        let writer = CachedStore::shared(&db);
        writer.ensure_schema().unwrap();
        writer.record_execution(1, "p", 0, 42, "f").unwrap();
        writer.flush().unwrap();
        // A second store over the same database (a later attach).
        let reader = CachedStore::shared(&db);
        assert_eq!(
            reader.lookup_execution(1, "p", 0).unwrap(),
            Some((42, "f".into()))
        );
        // Second lookup is a pure cache hit: no new scans.
        db.reset_stats();
        assert_eq!(
            reader.lookup_execution(1, "p", 0).unwrap(),
            Some((42, "f".into()))
        );
        let stats = db.stats();
        assert_eq!(stats.index_scans + stats.full_scans, 0);
    }

    #[test]
    fn cached_store_run_sees_buffered_rows() {
        let s = cached_store();
        s.record_execution(5, "p", 0, 7, "f").unwrap();
        // A statement over the buffered relation flushes it first.
        let rs = s
            .run(
                &Query::<ExecutionRow>::filter(ExecutionCol::Runid.eq(5))
                    .select(&[ExecutionCol::FileOffset])
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(7)));
    }

    #[test]
    fn cached_store_run_on_other_relations_keeps_batch_buffered() {
        let s = cached_store();
        s.record_execution(5, "p", 0, 7, "f").unwrap();
        // A statement over a *different* relation must not flush the
        // execution batch: the cache routes by (relation, key).
        s.run(&Query::<RunRow>::all().max(RunCol::Runid).compile(), &[])
            .unwrap();
        assert_eq!(db_exec_rows(s.database()), 0, "batch stayed buffered");
        s.flush().unwrap();
        assert_eq!(db_exec_rows(s.database()), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn raw_sql_veneer_parses_into_typed_statements() {
        // The stringly escape hatch survives as a veneer over `run`:
        // text in, typed statement out, same rows — at the cost of one
        // parse per call, which the text counters must witness (that is
        // how a regression back to stringly call sites shows up).
        let s = cached_store();
        s.record_execution(5, "p", 0, 7, "f").unwrap();
        s.database().reset_stats();
        let rs = s
            .exec(
                "SELECT file_offset FROM execution_table WHERE runid = 5",
                &[],
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(7)));
        let stats = s.database().stats();
        assert_eq!(stats.sql_texts, 1, "veneer text must be counted");
        assert_eq!(stats.parse_misses, 1);
        assert!(s.exec("SELEKT nope", &[]).is_err());
    }

    #[test]
    fn rollback_does_not_swallow_buffered_rows() {
        // Rows buffered while a caller transaction is open must not be
        // flushed into that transaction by the ROLLBACK statement
        // itself — they would be silently discarded from the database
        // while the cache kept serving them.
        let s = cached_store();
        s.run(&Stmt::begin(), &[]).unwrap();
        s.record_execution(1, "p", 0, 7, "f").unwrap(); // buffered
        s.run(&Stmt::rollback(), &[]).unwrap();
        assert_eq!(db_exec_rows(s.database()), 0);
        s.flush().unwrap();
        assert_eq!(
            db_exec_rows(s.database()),
            1,
            "the buffered row must survive the rollback and land on the next flush"
        );
        assert_eq!(
            s.lookup_execution(1, "p", 0).unwrap(),
            Some((7, "f".into()))
        );
    }

    #[test]
    fn typed_mutations_invalidate_read_caches() {
        let s = cached_store();
        s.record_execution(5, "p", 0, 7, "f").unwrap();
        s.record_index_registry(100, 4, 3, "hist").unwrap();
        // Warm the read caches.
        assert!(s.lookup_execution(5, "p", 0).unwrap().is_some());
        assert!(s.lookup_index_registry(100, 4).unwrap().is_some());
        // Mutations through the statement escape hatch must not leave
        // the caches serving deleted rows.
        s.run(&Delete::<ExecutionRow>::all().compile(), &[])
            .unwrap();
        assert_eq!(s.lookup_execution(5, "p", 0).unwrap(), None);
        s.run(&Delete::<IndexRow>::all().compile(), &[]).unwrap();
        assert_eq!(s.lookup_index_registry(100, 4).unwrap(), None);
    }

    #[test]
    fn run_flushes_when_a_join_reaches_the_buffered_relation() {
        // A SELECT whose FROM table is elsewhere but whose JOIN side is
        // execution_table must still see buffered rows: flush gating
        // goes by Stmt::references, not the primary table alone.
        let s = cached_store();
        s.record_run(&run_rec(5, "app")).unwrap();
        s.record_execution(5, "p", 0, 7, "f").unwrap();
        let join = Stmt::parse(
            "SELECT run_table.runid, execution_table.file_offset FROM run_table \
             INNER JOIN execution_table ON run_table.runid = execution_table.runid",
        )
        .unwrap();
        assert_eq!(join.table(), Some("run_table"));
        assert!(join.references("execution_table"));
        let rs = s.run(&join, &[]).unwrap();
        assert_eq!(rs.len(), 1, "buffered execution row must be visible");
        assert_eq!(rs.rows[0][1], Value::Int(7));
    }

    #[test]
    fn flush_inside_caller_transaction_joins_it() {
        // The statement escape hatch lets a caller bracket its own work;
        // a timestep advance mid-transaction must join that transaction
        // instead of deadlocking on a second BEGIN.
        let s = cached_store();
        s.run(&Stmt::begin(), &[]).unwrap();
        s.record_execution(1, "p", 0, 0, "f").unwrap();
        s.record_execution(1, "p", 1, 64, "f").unwrap(); // timestep advance → flush
        s.flush().unwrap();
        s.run(&Stmt::commit(), &[]).unwrap();
        assert_eq!(
            s.lookup_execution(1, "p", 0).unwrap(),
            Some((0, "f".into()))
        );
        assert_eq!(
            s.lookup_execution(1, "p", 1).unwrap(),
            Some((64, "f".into()))
        );
        // Same for runid allocation inside a caller transaction.
        s.run(&Stmt::begin(), &[]).unwrap();
        let id = s.allocate_runid("nested").unwrap();
        s.run(&Stmt::commit(), &[]).unwrap();
        assert!(id >= 1);
    }

    #[test]
    fn store_transaction_rollback_is_o_of_batch_not_table() {
        // The store's transaction bracket rides the engine's undo log:
        // rolling back a k-row batch undoes k row images, regardless of
        // how many rows the table already holds.
        let s = sql_store();
        for ts in 0..500 {
            s.record_execution(1, "seed", ts, ts * 64, "f").unwrap();
        }
        s.database().reset_stats();
        s.run(&Stmt::begin(), &[]).unwrap();
        for ts in 0..8 {
            s.record_execution(2, "tx", ts, ts * 64, "g").unwrap();
        }
        s.run(&Stmt::rollback(), &[]).unwrap();
        let stats = s.database().stats();
        assert_eq!(stats.tx_rows_undone, 8, "undo tracks the batch size");
        assert_eq!(s.lookup_execution(2, "tx", 0).unwrap(), None);
        // The seeded rows survived untouched and still probe through
        // the index.
        assert!(s.lookup_execution(1, "seed", 250).unwrap().is_some());
    }

    #[test]
    fn readers_keep_probing_while_a_batch_transaction_is_open() {
        // CachedStore's per-timestep flush opens a transaction on rank
        // 0; reader ranks doing indexed lookups must not serialize
        // behind it (SELECTs take the shared catalog lock).
        let db = Arc::new(Database::new());
        let store = SqlStore::shared(&db);
        store.ensure_schema().unwrap();
        for ts in 0..50 {
            store.record_execution(1, "p", ts, ts * 64, "f").unwrap();
        }
        store.run(&Stmt::begin(), &[]).unwrap();
        store.record_execution(1, "p", 50, 50 * 64, "f").unwrap();
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for ts in 0..50 {
                        let hit = store.lookup_execution(1, "p", (ts + r) % 50).unwrap();
                        assert!(hit.is_some());
                    }
                })
            })
            .collect();
        for h in readers {
            h.join().unwrap(); // completes while the tx is still open
        }
        store.run(&Stmt::commit(), &[]).unwrap();
        assert!(store.lookup_execution(1, "p", 50).unwrap().is_some());
    }

    #[test]
    fn abandoned_allocation_does_not_shadow_finished_runs() {
        // A finished run for an app, then a crashed/abandoned initialize
        // (allocation without record_run): re-attachment by name must
        // still resolve the finished run.
        let s = sql_store();
        let good = s.allocate_runid("viz").unwrap();
        s.record_run(&run_rec(good, "viz")).unwrap();
        let _abandoned = s.allocate_runid("viz").unwrap();
        assert_eq!(s.latest_runid_for_app("viz").unwrap(), Some(good));
    }

    #[test]
    fn cached_store_flushes_on_drop() {
        let db = Arc::new(Database::new());
        {
            let s = CachedStore::shared(&db);
            s.ensure_schema().unwrap();
            s.record_execution(1, "p", 0, 1, "f").unwrap();
        }
        assert_eq!(db_exec_rows(&db), 1);
    }

    #[test]
    fn cached_store_registry_and_blocks_cache() {
        let s = cached_store();
        s.record_index_registry(100, 4, 3, "hist").unwrap();
        let b = HistoryBlock {
            rank: 0,
            edge_count: 10,
            node_count: 5,
            ghost_count: 1,
            file_offset: 0,
            byte_len: 64,
        };
        s.record_history_block(100, 4, &b).unwrap();
        s.database().reset_stats();
        assert_eq!(
            s.lookup_index_registry(100, 4).unwrap(),
            Some("hist".into())
        );
        assert_eq!(s.lookup_history_block(100, 4, 0).unwrap(), Some(b));
        let stats = s.database().stats();
        assert_eq!(
            stats.index_scans + stats.full_scans,
            0,
            "lookups served from cache"
        );
        // Deletion invalidates both caches.
        s.delete_index_registry(100, 4).unwrap();
        assert_eq!(s.lookup_index_registry(100, 4).unwrap(), None);
        assert_eq!(s.lookup_history_block(100, 4, 0).unwrap(), None);
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let runid;
        {
            let s = SqlStore::open_durable(dir.path()).unwrap();
            runid = s.allocate_runid("fun3d").unwrap();
            s.record_run(&run_rec(runid, "fun3d")).unwrap();
            s.record_execution(runid, "pressure", 0, 512, "f1.dat")
                .unwrap();
        }
        let s = SqlStore::open_durable(dir.path()).unwrap();
        // ensure_schema already ran inside open_durable and is
        // idempotent over the recovered catalog.
        assert_eq!(s.latest_runid_for_app("fun3d").unwrap(), Some(runid));
        assert_eq!(
            s.lookup_execution(runid, "pressure", 0).unwrap(),
            Some((512, "f1.dat".into()))
        );
    }

    #[test]
    fn durable_cached_store_flush_and_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        let runid;
        {
            let s = CachedStore::open_durable(dir.path()).unwrap();
            s.ensure_schema().unwrap();
            runid = s.allocate_runid("rt").unwrap();
            s.record_run(&run_rec(runid, "rt")).unwrap();
            // Buffered execution rows become durable through checkpoint:
            // it flushes the batch transaction, then snapshots + truncates.
            s.record_execution(runid, "p", 0, 0, "f").unwrap();
            s.record_execution(runid, "q", 0, 64, "f").unwrap();
            let covered = s.checkpoint().unwrap();
            assert!(covered > 0, "checkpoint covers the flushed commits");
        }
        let s = CachedStore::open_durable(dir.path()).unwrap();
        s.ensure_schema().unwrap();
        assert_eq!(
            s.lookup_execution(runid, "p", 0).unwrap(),
            Some((0, "f".into()))
        );
        assert_eq!(
            s.lookup_execution(runid, "q", 0).unwrap(),
            Some((64, "f".into()))
        );
        // Recovery started from the checkpoint snapshot, not a full
        // log replay.
        let info = s.database().recovery_info().unwrap();
        assert!(info.snapshot_last_tx > 0, "reopen used the snapshot");
    }

    #[test]
    fn checkpoint_errors_on_in_memory_store() {
        let s = sql_store();
        assert!(s.checkpoint().is_err());
    }
}
