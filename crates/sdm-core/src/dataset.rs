//! Dataset and import descriptors (the `SDM_make_datalist` /
//! `SDM_make_importlist` structures).

use crate::types::{AccessPattern, FileContent, SdmType, StorageOrder};

/// Description of one dataset produced through SDM (Figure 2's `result`
/// entries: `p` and `q`).
#[derive(Debug, Clone)]
pub struct DatasetDesc {
    /// Dataset name.
    pub name: String,
    /// Element type.
    pub data_type: SdmType,
    /// Storage order annotation.
    pub storage_order: StorageOrder,
    /// Access pattern annotation.
    pub access_pattern: AccessPattern,
    /// Global element count (e.g. total number of nodes).
    pub global_size: u64,
}

impl DatasetDesc {
    /// A double-typed irregular dataset — the paper's common case.
    pub fn doubles(name: impl Into<String>, global_size: u64) -> Self {
        Self {
            name: name.into(),
            data_type: SdmType::Double,
            storage_order: StorageOrder::RowMajor,
            access_pattern: AccessPattern::Irregular,
            global_size,
        }
    }
}

/// `SDM_make_datalist`: build descriptors for a group of datasets that
/// share type and size (the paper groups `p` and `q` this way).
pub fn make_datalist(names: &[&str], ty: SdmType, global_size: u64) -> Vec<DatasetDesc> {
    names
        .iter()
        .map(|n| DatasetDesc {
            name: n.to_string(),
            data_type: ty,
            storage_order: StorageOrder::RowMajor,
            access_pattern: AccessPattern::Irregular,
            global_size,
        })
        .collect()
}

/// Description of one array imported from outside SDM (Figure 3's
/// `import` entries: `edge1`, `edge2`, `x`, `y`).
#[derive(Debug, Clone)]
pub struct ImportDesc {
    /// Imported array name.
    pub name: String,
    /// Source file in the PFS namespace (e.g. `"uns3d.msh"`).
    pub file_name: String,
    /// Element type.
    pub data_type: SdmType,
    /// Whether the region holds index arrays or physical data.
    pub file_content: FileContent,
    /// Storage order annotation.
    pub storage_order: StorageOrder,
}

impl ImportDesc {
    /// An index (indirection) array of C ints.
    pub fn index(name: impl Into<String>, file: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            file_name: file.into(),
            data_type: SdmType::Int32,
            file_content: FileContent::Index,
            storage_order: StorageOrder::RowMajor,
        }
    }

    /// A physical data array of doubles.
    pub fn data(name: impl Into<String>, file: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            file_name: file.into(),
            data_type: SdmType::Double,
            file_content: FileContent::Data,
            storage_order: StorageOrder::RowMajor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datalist_shares_attributes() {
        let ds = make_datalist(&["p", "q"], SdmType::Double, 1000);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].name, "p");
        assert_eq!(ds[1].global_size, 1000);
        assert_eq!(ds[1].data_type, SdmType::Double);
        assert_eq!(ds[0].access_pattern, AccessPattern::Irregular);
    }

    #[test]
    fn import_descriptors() {
        let e1 = ImportDesc::index("edge1", "uns3d.msh");
        assert_eq!(e1.data_type, SdmType::Int32);
        assert_eq!(e1.file_content, FileContent::Index);
        let x = ImportDesc::data("x", "uns3d.msh");
        assert_eq!(x.data_type, SdmType::Double);
        assert_eq!(x.file_content, FileContent::Data);
    }
}
