//! Interprocedural effect dataflow: per-fn summaries propagated over
//! call edges to a fixed point, and the rules built on top.
//!
//! A [`Summary`] records what a function does **transitively**: which
//! lock ranks it (or anything it calls) acquires, where it can block on
//! I/O, and where it can panic. Summaries start from each body's direct
//! events and are propagated caller-ward over the call graph until
//! nothing changes; every entry keeps its terminal site plus the first
//! call hop it arrived through, so a finding can print the full
//! **witness chain** (`Database::run_statement → execute_mutation →
//! eval::row_value → unreachable!(…)`). Entries are only ever inserted,
//! never replaced, so the hop links form a DAG and the propagation is a
//! monotone fixed point — recursion converges because the maps are
//! bounded by the finite site set.
//!
//! The rules this powers:
//!
//! * **cross-function `ladder`** — a call whose callee transitively
//!   acquires rank R while the caller holds rank ≥ R;
//! * **`held-io`** — blocking I/O (`fs::*`, `File` opens,
//!   `thread::sleep`, `.sync_all()`/`.sync_data()`) reachable while the
//!   catalog or a leaf lock is held. The WAL ranks (`wal_sync`,
//!   `wal_buf`) are deliberately not banned: the group-commit leader
//!   fsyncs under `wal_sync` by design, and that is the *only* sanctioned
//!   blocking-under-lock path;
//! * **path-sensitive `undo-coverage`** — a `&mut Catalog` fn reachable
//!   from an exec entry point without `Option<&mut UndoLog>` in its own
//!   signature (the undo thread broke somewhere along the chain);
//! * **`panic-under-guard`** — a panic site (`.unwrap()`,
//!   `.expect("…")`, panicking macros, indexing) reachable while the
//!   `catalog` write guard is held: the panic unwinds mid-mutation and
//!   leaves a torn catalog for every later reader.
//!
//! Suppressions compose with the dataflow at the **terminal site**: a
//! `// analyze:allow(panic-under-guard: …)` (or `unwrap`) on the line
//! that panics removes the site from every summary, so one justified
//! terminal quiets every caller — and that exclusion counts as the
//! directive being *used* for the `unused-allow` rule.

use std::collections::{BTreeMap, HashSet};

use crate::callgraph::{CallEv, Callgraph, EventKind, Held};
use crate::report::Finding;
use crate::scopes::Model;

/// Files whose plain indexing is exempt from `panic-under-guard`: the
/// slot-resolved engine core, where row/register indexes are derived
/// from schema arity at plan time and covered by the equivalence
/// proptests. `.unwrap()`/macros in these files still count.
pub const INDEX_EXEMPT: &[&str] = &[
    "crates/sdm-metadb/src/eval.rs",
    "crates/sdm-metadb/src/exec.rs",
    "crates/sdm-metadb/src/table.rs",
];

/// One transitive effect: its terminal site and the first call hop it
/// reached the summarized fn through (`None` = it happens directly).
#[derive(Debug, Clone)]
pub struct EffectSrc {
    /// Terminal site description (`catalog.write()`, `fs::write(…)`,
    /// `.unwrap(…)`).
    pub what: String,
    /// File index of the terminal site.
    pub file: usize,
    /// Line of the terminal site.
    pub line: u32,
    /// First hop: (callee fn index, call line in the summarized fn).
    pub via: Option<(usize, u32)>,
}

/// Transitive effects of one fn.
#[derive(Debug, Default)]
pub struct Summary {
    /// Lock ranks acquired, keyed by rank.
    pub acquires: BTreeMap<u32, EffectSrc>,
    /// Blocking I/O sites, keyed by terminal (file, line).
    pub io: BTreeMap<(usize, u32), EffectSrc>,
    /// Panic sites, keyed by terminal (file, line).
    pub panics: BTreeMap<(usize, u32), EffectSrc>,
}

/// Tracks which `analyze:allow` directives did something, for the
/// `unused-allow` rule and the report's suppression-site table.
#[derive(Debug)]
pub struct AllowUse {
    used: Vec<Vec<bool>>,
}

impl AllowUse {
    /// One flag per directive, parallel to each model's `allows`.
    pub fn new(files: &[(String, Model)]) -> Self {
        AllowUse {
            used: files
                .iter()
                .map(|(_, m)| vec![false; m.allows.len()])
                .collect(),
        }
    }

    /// Mark every directive in `file` that suppresses `rule` at `line`.
    pub fn mark(&mut self, file: usize, model: &Model, rule: &str, line: u32) {
        for (i, a) in model.allows.iter().enumerate() {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                self.used[file][i] = true;
            }
        }
    }

    /// Whether directive `idx` of `file` was used.
    pub fn is_used(&self, file: usize, idx: usize) -> bool {
        self.used[file][idx]
    }
}

/// Whether blocking while holding `rank` is banned (`held-io`): the
/// catalog and the leaves. The WAL ranks are the sanctioned
/// group-commit leader path.
fn io_banned(rank: u32) -> bool {
    rank == sdm_ranks::CATALOG || rank == sdm_ranks::LEAF
}

/// Classify a call event as a blocking-I/O primitive.
fn io_desc(c: &CallEv) -> Option<String> {
    match c.qual.as_deref() {
        Some("fs") => Some(format!("fs::{}(…)", c.name)),
        Some("File")
            if matches!(
                c.name.as_str(),
                "open" | "create" | "create_new" | "options"
            ) =>
        {
            Some(format!("File::{}(…)", c.name))
        }
        Some("OpenOptions") if c.name == "new" => Some("OpenOptions::new(…)".into()),
        Some("thread") if c.name == "sleep" => Some("thread::sleep(…)".into()),
        None if c.method && matches!(c.name.as_str(), "sync_all" | "sync_data") => {
            Some(format!(".{}()", c.name))
        }
        _ => None,
    }
}

/// Reconstruct the acquisition method name for a direct acquire event.
fn acquire_what(lock: &str, write: bool) -> String {
    let method = if !write {
        "read"
    } else if lock == "catalog" {
        "write"
    } else {
        "lock"
    };
    format!("{lock}.{method}()")
}

/// Build every fn's transitive [`Summary`] and run the propagation to a
/// fixed point. Terminal panic/io sites carrying a justifying
/// `analyze:allow` never enter any summary (and the directive is marked
/// used in `allow_use`).
pub fn summarize(
    cg: &Callgraph,
    files: &[(String, Model)],
    allow_use: &mut AllowUse,
) -> Vec<Summary> {
    let n = cg.fns.len();
    let mut sums: Vec<Summary> = (0..n).map(|_| Summary::default()).collect();

    // Direct effects.
    for (fi, f) in cg.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let model = &files[f.file].1;
        let path = &cg.files[f.file];
        for ev in &f.events {
            match &ev.kind {
                EventKind::Acquire { lock, rank, write } => {
                    sums[fi].acquires.entry(*rank).or_insert(EffectSrc {
                        what: acquire_what(lock, *write),
                        file: f.file,
                        line: ev.line,
                        via: None,
                    });
                }
                EventKind::Call(c) => {
                    if let Some(what) = io_desc(c) {
                        if model.allowed("held-io", ev.line) {
                            allow_use.mark(f.file, model, "held-io", ev.line);
                        } else {
                            sums[fi].io.entry((f.file, ev.line)).or_insert(EffectSrc {
                                what,
                                file: f.file,
                                line: ev.line,
                                via: None,
                            });
                        }
                    }
                }
                EventKind::Panic { what, index } => {
                    if *index && INDEX_EXEMPT.contains(&path.as_str()) {
                        continue;
                    }
                    if model.allowed("panic-under-guard", ev.line) {
                        allow_use.mark(f.file, model, "panic-under-guard", ev.line);
                        continue;
                    }
                    if model.allowed("unwrap", ev.line) {
                        allow_use.mark(f.file, model, "unwrap", ev.line);
                        continue;
                    }
                    sums[fi]
                        .panics
                        .entry((f.file, ev.line))
                        .or_insert(EffectSrc {
                            what: what.clone(),
                            file: f.file,
                            line: ev.line,
                            via: None,
                        });
                }
            }
        }
    }

    // Propagate over call edges until nothing changes. Insert-only, so
    // each map grows monotonically toward the finite site set.
    loop {
        let mut changed = false;
        for fi in 0..n {
            if cg.fns[fi].is_test {
                continue;
            }
            let mut add_acq: Vec<(u32, EffectSrc)> = Vec::new();
            let mut add_io: Vec<((usize, u32), EffectSrc)> = Vec::new();
            let mut add_panic: Vec<((usize, u32), EffectSrc)> = Vec::new();
            for ev in &cg.fns[fi].events {
                let EventKind::Call(c) = &ev.kind else {
                    continue;
                };
                for &cal in &c.callees {
                    if cal == fi {
                        continue;
                    }
                    for (&r, src) in &sums[cal].acquires {
                        if !sums[fi].acquires.contains_key(&r) {
                            add_acq.push((r, lift(src, cal, ev.line)));
                        }
                    }
                    for (&k, src) in &sums[cal].io {
                        if !sums[fi].io.contains_key(&k) {
                            add_io.push((k, lift(src, cal, ev.line)));
                        }
                    }
                    for (&k, src) in &sums[cal].panics {
                        if !sums[fi].panics.contains_key(&k) {
                            add_panic.push((k, lift(src, cal, ev.line)));
                        }
                    }
                }
            }
            for (r, src) in add_acq {
                changed |= sums[fi].acquires.insert(r, src).is_none();
            }
            for (k, src) in add_io {
                changed |= sums[fi].io.insert(k, src).is_none();
            }
            for (k, src) in add_panic {
                changed |= sums[fi].panics.insert(k, src).is_none();
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// A callee's effect as seen by its caller: same terminal, first hop
/// through the call.
fn lift(src: &EffectSrc, callee: usize, call_line: u32) -> EffectSrc {
    EffectSrc {
        what: src.what.clone(),
        file: src.file,
        line: src.line,
        via: Some((callee, call_line)),
    }
}

/// `Fn (file:line)` chain element.
fn chain_entry(cg: &Callgraph, f: usize, line: u32) -> String {
    format!(
        "{} ({}:{})",
        cg.fns[f].qualified(),
        cg.files[cg.fns[f].file],
        line
    )
}

/// Follow first-hop links from `first_callee` down to the terminal
/// site, rendering the witness chain. `get` looks the effect up in one
/// fn's summary; `decorate` tags the terminal element (rank names).
fn render_chain(
    cg: &Callgraph,
    caller: usize,
    call_line: u32,
    first_callee: usize,
    get: impl Fn(usize) -> Option<EffectSrc>,
    decorate: &str,
) -> Vec<String> {
    let mut out = vec![chain_entry(cg, caller, call_line)];
    let mut cur = first_callee;
    let mut hops = 0usize;
    loop {
        hops += 1;
        if hops > 64 {
            out.push("…".into());
            break;
        }
        let Some(src) = get(cur) else { break };
        match src.via {
            Some((next, l)) => {
                out.push(chain_entry(cg, cur, l));
                cur = next;
            }
            None => {
                // The fn that performs the effect itself, then the
                // terminal site.
                out.push(cg.fns[cur].qualified());
                let tag = if decorate.is_empty() {
                    String::new()
                } else {
                    format!(" [{decorate}]")
                };
                out.push(format!(
                    "{}{tag} ({}:{})",
                    src.what, cg.files[src.file], src.line
                ));
                break;
            }
        }
    }
    out
}

/// Run the interprocedural rules, returning pre-suppression findings.
pub fn check(
    cg: &Callgraph,
    files: &[(String, Model)],
    sums: &[Summary],
    allow_use: &mut AllowUse,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();

    for (fi, f) in cg.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let path = &cg.files[f.file];
        let model = &files[f.file].1;
        for ev in &f.events {
            match &ev.kind {
                EventKind::Call(c) => {
                    let mut held = ev.held.clone();
                    held.extend(c.arg_acquires.iter().cloned());
                    if held.is_empty() {
                        continue;
                    }
                    check_call(
                        cg,
                        sums,
                        fi,
                        ev.line,
                        c,
                        &held,
                        path,
                        model,
                        &mut seen,
                        &mut findings,
                    );
                }
                EventKind::Panic { what, index } => {
                    let under_write = ev.held.iter().any(|h| h.lock == "catalog" && h.write);
                    if !under_write {
                        continue;
                    }
                    if *index && INDEX_EXEMPT.contains(&path.as_str()) {
                        continue;
                    }
                    if model.allowed("unwrap", ev.line) {
                        allow_use.mark(f.file, model, "unwrap", ev.line);
                        continue;
                    }
                    findings.push(Finding {
                        rule: "panic-under-guard".into(),
                        file: path.clone(),
                        line: ev.line,
                        snippet: model.snippet(ev.line),
                        message: format!(
                            "{what} while the `catalog` write guard is held: a panic here \
                             unwinds mid-mutation and leaves a torn catalog; return a typed \
                             error or justify with `// analyze:allow(panic-under-guard: …)`"
                        ),
                        chain: Vec::new(),
                    });
                }
                EventKind::Acquire { .. } => {} // intra `ladder` covers these
            }
        }
    }

    undo_paths(cg, files, &mut findings);
    findings
}

/// The per-call-site half of [`check`]: compare the callee summaries
/// against the held set.
#[allow(clippy::too_many_arguments)]
fn check_call(
    cg: &Callgraph,
    sums: &[Summary],
    fi: usize,
    line: u32,
    c: &CallEv,
    held: &[Held],
    path: &str,
    model: &Model,
    seen: &mut HashSet<String>,
    findings: &mut Vec<Finding>,
) {
    // Direct blocking I/O under a banned lock.
    if let Some(what) = io_desc(c) {
        if let Some(h) = held.iter().find(|h| io_banned(h.rank)) {
            if seen.insert(format!("hio|{path}|{line}|direct")) {
                findings.push(Finding {
                    rule: "held-io".into(),
                    file: path.to_string(),
                    line,
                    snippet: model.snippet(line),
                    message: held_io_message(&what, h),
                    chain: Vec::new(),
                });
            }
        }
    }
    for &cal in &c.callees {
        if cal == fi {
            continue;
        }
        // Cross-function ladder: the callee transitively acquires a rank
        // not strictly below everything held here.
        for (&r, src) in &sums[cal].acquires {
            for h in held {
                if h.rank < r {
                    continue;
                }
                if !seen.insert(format!("lad|{path}|{line}|{r}|{}", h.lock)) {
                    continue;
                }
                let tlock = src.what.split('.').next().unwrap_or("");
                let message = if h.rank > r {
                    format!(
                        "upward lock acquisition via call chain: `{}` eventually acquires \
                         `{tlock}` ({}) while `{}` ({}) is held — the ladder runs tx → catalog \
                         → wal_sync → wal_buf → stats/plans",
                        cg.fns[cal].qualified(),
                        sdm_ranks::describe(r),
                        h.lock,
                        sdm_ranks::describe(h.rank),
                    )
                } else if tlock == h.lock {
                    format!(
                        "nested acquisition of `{}` via call chain: re-entering the same lock \
                         on one thread self-deadlocks",
                        h.lock
                    )
                } else {
                    format!(
                        "leaf `{}` held across a call chain that acquires `{tlock}` \
                         ({}): leaf mutexes are taken alone, never nested",
                        h.lock,
                        sdm_ranks::describe(r),
                    )
                };
                findings.push(Finding {
                    rule: "ladder".into(),
                    file: path.to_string(),
                    line,
                    snippet: model.snippet(line),
                    message,
                    chain: render_chain(
                        cg,
                        fi,
                        line,
                        cal,
                        |f| sums[f].acquires.get(&r).cloned(),
                        &sdm_ranks::describe(r),
                    ),
                });
            }
        }
        // Blocking I/O reachable under the catalog or a leaf.
        if let Some(h) = held.iter().find(|h| io_banned(h.rank)) {
            for (&k, src) in &sums[cal].io {
                if !seen.insert(format!("hio|{path}|{line}|{}:{}", k.0, k.1)) {
                    continue;
                }
                findings.push(Finding {
                    rule: "held-io".into(),
                    file: path.to_string(),
                    line,
                    snippet: model.snippet(line),
                    message: held_io_message(&src.what, h),
                    chain: render_chain(cg, fi, line, cal, |f| sums[f].io.get(&k).cloned(), ""),
                });
            }
        }
        // Panics reachable while the catalog write guard is held.
        if held.iter().any(|h| h.lock == "catalog" && h.write) {
            for (&k, src) in &sums[cal].panics {
                if !seen.insert(format!("pug|{path}|{line}|{}:{}", k.0, k.1)) {
                    continue;
                }
                findings.push(Finding {
                    rule: "panic-under-guard".into(),
                    file: path.to_string(),
                    line,
                    snippet: model.snippet(line),
                    message: format!(
                        "{} reachable while the `catalog` write guard is held (via `{}`): a \
                         panic unwinds mid-mutation and leaves a torn catalog; justify the \
                         terminal site with `// analyze:allow(panic-under-guard: …)` or return \
                         a typed error",
                        src.what,
                        cg.fns[cal].qualified(),
                    ),
                    chain: render_chain(cg, fi, line, cal, |f| sums[f].panics.get(&k).cloned(), ""),
                });
            }
        }
    }
}

fn held_io_message(what: &str, h: &Held) -> String {
    format!(
        "blocking I/O ({what}) reachable while `{}` ({}) is held: I/O under the catalog or a \
         leaf lock stalls every reader — only the WAL group-commit leader (under `wal_sync`) \
         may block",
        h.lock,
        sdm_ranks::describe(h.rank),
    )
}

/// Path-sensitive undo coverage: BFS from the exec entry points (fns in
/// `exec.rs` that thread both `&mut Catalog` and `UndoLog`); any
/// reachable fn taking `&mut Catalog` without `UndoLog` broke the
/// thread, wherever it lives.
fn undo_paths(cg: &Callgraph, files: &[(String, Model)], findings: &mut Vec<Finding>) {
    let entries: Vec<usize> = (0..cg.fns.len())
        .filter(|&i| {
            let f = &cg.fns[i];
            !f.is_test && f.has_undo && f.has_mut_catalog && cg.files[f.file].ends_with("exec.rs")
        })
        .collect();
    let in_exec = |i: usize| cg.files[cg.fns[i].file].ends_with("exec.rs");
    let mut parent: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    let mut visited: HashSet<usize> = entries.iter().copied().collect();
    let mut queue: Vec<usize> = entries;
    while let Some(cur) = queue.pop() {
        for ev in &cg.fns[cur].events {
            let EventKind::Call(c) = &ev.kind else {
                continue;
            };
            for &cal in &c.callees {
                if visited.insert(cal) {
                    parent.insert(cal, (cur, ev.line));
                    queue.push(cal);
                }
            }
        }
    }
    // Fns living in exec.rs are already covered (and flagged) by the
    // intraprocedural `undo-coverage` rule; this pass adds the fns the
    // chain reaches *outside* the executor.
    let mut flagged: Vec<usize> = visited
        .iter()
        .copied()
        .filter(|&i| {
            let f = &cg.fns[i];
            !f.is_test && f.has_mut_catalog && !f.has_undo && !in_exec(i)
        })
        .collect();
    flagged.sort();
    for target in flagged {
        let f = &cg.fns[target];
        let mut rev = vec![format!(
            "{} ({}:{})",
            f.qualified(),
            cg.files[f.file],
            f.line
        )];
        let mut node = target;
        while let Some(&(p, l)) = parent.get(&node) {
            rev.push(chain_entry(cg, p, l));
            node = p;
        }
        rev.reverse();
        let entry_name = cg.fns[node].qualified();
        let path = &cg.files[f.file];
        findings.push(Finding {
            rule: "undo-coverage".into(),
            file: path.clone(),
            line: f.line,
            snippet: files[f.file].1.snippet(f.line),
            message: format!(
                "`{}` takes `&mut Catalog` without threading `Option<&mut UndoLog>` yet is \
                 reachable from exec entry `{entry_name}`: mutations on this path cannot be \
                 rolled back by an open transaction",
                f.name
            ),
            chain: rev,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> (Vec<Finding>, Vec<Summary>, Callgraph) {
        let models: Vec<(String, Model)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), Model::build(s)))
            .collect();
        let cg = Callgraph::build(&models);
        let mut used = AllowUse::new(&models);
        let sums = summarize(&cg, &models, &mut used);
        let findings = check(&cg, &models, &sums, &mut used);
        (findings, sums, cg)
    }

    #[test]
    fn cross_fn_upward_acquisition_with_multihop_chain() {
        let src = "impl Database {\n\
                   fn outer(&self) { let s = self.stats.lock(); self.mid(); }\n\
                   fn mid(&self) { self.inner(); }\n\
                   fn inner(&self) { let c = self.catalog.write(); drop(c); }\n\
                   }";
        let (findings, _s, _cg) = analyze(&[("crates/sdm-metadb/src/db.rs", src)]);
        let f: Vec<_> = findings.iter().filter(|f| f.rule == "ladder").collect();
        assert_eq!(f.len(), 1, "{findings:?}");
        assert!(f[0].message.contains("upward"));
        assert!(f[0].message.contains("catalog(20)"));
        assert!(f[0].message.contains("stats"));
        // Multi-hop witness chain: outer → mid → inner → terminal.
        let chain = f[0].chain.join(" → ");
        assert!(chain.contains("Database::outer"), "{chain}");
        assert!(chain.contains("Database::mid"), "{chain}");
        assert!(chain.contains("Database::inner"), "{chain}");
        assert!(chain.contains("catalog.write() [catalog(20)]"), "{chain}");
    }

    #[test]
    fn downward_call_chain_is_clean() {
        let src = "impl Database {\n\
                   fn outer(&self) { let t = self.tx.lock(); self.inner(); }\n\
                   fn inner(&self) { self.stats.lock().merge(); }\n\
                   }";
        let (findings, _s, _cg) = analyze(&[("crates/sdm-metadb/src/db.rs", src)]);
        assert!(findings.iter().all(|f| f.rule != "ladder"), "{findings:?}");
    }

    #[test]
    fn recursion_converges_and_still_summarizes() {
        let src = "impl Database {\n\
                   fn a(&self) { self.b(); }\n\
                   fn b(&self) { self.a(); self.stats.lock().n += 1; }\n\
                   }";
        let (_f, sums, cg) = analyze(&[("crates/sdm-metadb/src/db.rs", src)]);
        let a = cg.fns.iter().position(|f| f.name == "a").unwrap();
        assert!(sums[a].acquires.contains_key(&sdm_ranks::LEAF));
    }

    #[test]
    fn held_io_direct_and_transitive() {
        let src = "impl Db {\n\
                   fn f(&self) { let c = self.catalog.write(); self.spill(); drop(c); }\n\
                   fn spill(&self) { fs::write(p, b).ok(); }\n\
                   }";
        let (findings, _s, _cg) = analyze(&[("crates/sdm-core/src/cache.rs", src)]);
        let f: Vec<_> = findings.iter().filter(|f| f.rule == "held-io").collect();
        assert_eq!(f.len(), 1, "{findings:?}");
        assert!(f[0].message.contains("fs::write"));
        assert!(f[0].chain.join(" → ").contains("Db::spill"));
    }

    #[test]
    fn io_under_wal_sync_is_sanctioned() {
        let src = "impl Wal {\n\
                   fn sync_to(&self) { let mut t = self.wal_sync.lock(); self.flush(); }\n\
                   fn flush(&self) { h.sync_data().ok(); }\n\
                   }";
        let (findings, _s, _cg) = analyze(&[("crates/sdm-metadb/src/wal/mod.rs", src)]);
        assert!(findings.iter().all(|f| f.rule != "held-io"), "{findings:?}");
    }

    #[test]
    fn panic_under_write_guard_flagged_not_under_read() {
        let src = "impl Db {\n\
                   fn w(&self) { let c = self.catalog.write(); self.help(); drop(c); }\n\
                   fn r(&self) { let c = self.catalog.read(); self.help(); drop(c); }\n\
                   fn help(&self) { v.unwrap(); }\n\
                   }";
        let (findings, _s, _cg) = analyze(&[("crates/sdm-sim/src/grid.rs", src)]);
        let f: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "panic-under-guard")
            .collect();
        assert_eq!(f.len(), 1, "{findings:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].chain.join(" → ").contains("Db::help"));
    }

    #[test]
    fn allow_at_terminal_quiets_every_caller_and_counts_as_used() {
        let src = "impl Db {\n\
                   fn w(&self) { let c = self.catalog.write(); self.help(); drop(c); }\n\
                   fn help(&self) {\n\
                   // analyze:allow(panic-under-guard: slot bounds-checked by the planner)\n\
                   v.unwrap(); }\n\
                   }";
        let models = vec![("crates/sdm-sim/src/grid.rs".to_string(), Model::build(src))];
        let cg = Callgraph::build(&models);
        let mut used = AllowUse::new(&models);
        let sums = summarize(&cg, &models, &mut used);
        let findings = check(&cg, &models, &sums, &mut used);
        assert!(
            findings.iter().all(|f| f.rule != "panic-under-guard"),
            "{findings:?}"
        );
        assert!(used.is_used(0, 0));
    }

    #[test]
    fn undo_break_is_found_across_files_with_chain() {
        let exec = "pub fn execute_mutation(c: &mut Catalog, u: Option<&mut UndoLog>) {\n\
                    table::apply(c);\n\
                    }";
        let table = "pub fn apply(c: &mut Catalog) {}";
        let (findings, _s, _cg) = analyze(&[
            ("crates/sdm-metadb/src/exec.rs", exec),
            ("crates/sdm-metadb/src/table.rs", table),
        ]);
        let f: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "undo-coverage")
            .collect();
        assert_eq!(f.len(), 1, "{findings:?}");
        assert_eq!(f[0].file, "crates/sdm-metadb/src/table.rs");
        let chain = f[0].chain.join(" → ");
        assert!(chain.contains("execute_mutation"), "{chain}");
        assert!(chain.contains("apply"), "{chain}");
    }

    #[test]
    fn indexing_exempt_in_engine_core_only() {
        let engine = "impl Db { fn w(&self, c: C) { let g = self.catalog.write(); rows[0]; } }";
        let (findings, _s, _cg) = analyze(&[("crates/sdm-metadb/src/exec.rs", engine)]);
        assert!(findings.iter().all(|f| f.rule != "panic-under-guard"));
        let (findings2, _s, _cg) = analyze(&[("crates/sdm-metadb/src/undo.rs", engine)]);
        assert!(findings2.iter().any(|f| f.rule == "panic-under-guard"));
    }
}
