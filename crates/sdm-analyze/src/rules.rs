//! Architecture rules: SQL layering, deprecated-veneer opt-ins,
//! `unwrap`/`expect` on library hot paths, and undo-log coverage.
//!
//! Each rule is scoped by repo-relative path (forward slashes). Rule ids
//! are the ones `analyze:allow(id: reason)` suppresses and DESIGN.md
//! documents.

use crate::lexer::Tok;
use crate::report::Finding;
use crate::scopes::Model;

/// Rule ids, in the order they are reported. The last three are the
/// interprocedural / whole-workspace rules run by `analyze_sources`
/// (`crate::dataflow` and the unused-suppression pass), listed here so
/// the registry is the single source of truth for `rules_checked`.
pub const RULES: &[&str] = &[
    "ladder",
    "sql-layering",
    "deprecated-call",
    "unwrap",
    "undo-coverage",
    "compiled-eval",
    "wal-ordering",
    "held-io",
    "panic-under-guard",
    "unused-allow",
];

// ---------------------------------------------------------------- sql-layering

/// Statement prefixes that mark a string literal as raw SQL. Matches the
/// CI grep this rule replaces, so the allowlist carries over unchanged.
const SQL_PREFIXES: &[&str] = &[
    "SELECT ",
    "INSERT INTO ",
    "CREATE TABLE ",
    "DELETE FROM ",
    "UPDATE ",
];

/// Crates and trees that sit *above* `sdm-metadb` and therefore must
/// build statements as typed values, never as SQL text.
const SQL_SCOPE: &[&str] = &[
    "crates/sdm-core/",
    "crates/sdm-sci/",
    "crates/sdm-apps/",
    "crates/sdm-bench/",
    "src/",
    "tests/",
    "examples/",
];

/// The surfaces that exist to exercise SQL text itself.
const SQL_ALLOWLIST: &[&str] = &[
    "crates/sdm-core/src/store.rs",
    "tests/metadb_sql.rs",
    "examples/metadb_tour.rs",
];

/// Rule `sql-layering`: no raw SQL string literals above `sdm-metadb`.
/// Lexer-accurate where the old CI grep was line-based: string literals
/// in comments no longer count, strings split across concatenations do.
pub fn sql_layering(path: &str, model: &Model) -> Vec<Finding> {
    if !SQL_SCOPE.iter().any(|p| path.starts_with(p)) || SQL_ALLOWLIST.contains(&path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for t in &model.tokens {
        if let Tok::Str(s) = &t.tok {
            if SQL_PREFIXES.iter().any(|p| s.starts_with(p)) {
                findings.push(Finding {
                    rule: "sql-layering".into(),
                    file: path.to_string(),
                    line: t.line,
                    snippet: model.snippet(t.line),
                    message: format!(
                        "raw SQL string literal above sdm-metadb (starts with {:?}); build a \
                         typed `Stmt` instead",
                        &s[..s.len().min(24)]
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
    findings
}

// ------------------------------------------------------------- deprecated-call

/// The only files entitled to call the deprecated store/session veneers
/// (equivalently: to write `allow(deprecated)`). The veneers' own
/// definitions carry `#[deprecated]`, not `allow`, so they need no entry.
const DEPRECATED_ALLOWLIST: &[&str] = &[
    "crates/sdm-core/src/store.rs",
    "crates/sdm-core/tests/api.rs",
    "tests/session_api.rs",
];

/// Rule `deprecated-call`: a call site of a `#[deprecated]` veneer
/// outside its designated files. The workspace builds with
/// `-D warnings`, so every such call must carry an `allow(deprecated)`
/// opt-in — which is exactly the token sequence this rule hunts.
pub fn deprecated_call(path: &str, model: &Model) -> Vec<Finding> {
    if DEPRECATED_ALLOWLIST.contains(&path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(w) = &toks[i].tok else {
            continue;
        };
        if w != "allow" || !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        // Scan the argument list for `deprecated`.
        let mut j = i + 2;
        let mut hit = false;
        while let Some(t) = toks.get(j) {
            match &t.tok {
                Tok::Punct(')') => break,
                Tok::Ident(a) if a == "deprecated" => hit = true,
                _ => {}
            }
            j += 1;
        }
        if hit {
            let line = toks[i].line;
            findings.push(Finding {
                rule: "deprecated-call".into(),
                file: path.to_string(),
                line,
                snippet: model.snippet(line),
                message: "deprecated-veneer opt-in (`allow(deprecated)`) outside the designated \
                          veneer/equivalence files; migrate to the typed API"
                    .into(),
                chain: Vec::new(),
            });
        }
    }
    findings
}

// --------------------------------------------------------------------- unwrap

/// The hot-path library trees where a stray panic takes down the whole
/// metadata service rather than one request.
const UNWRAP_SCOPE: &[&str] = &["crates/sdm-metadb/src/", "crates/sdm-core/src/"];

/// Rule `unwrap`: `.unwrap()` / `.expect("…")` in non-test library code
/// on the `sdm-metadb` + `sdm-core` hot paths. `expect` is only flagged
/// when its first argument is a string literal — `Parser::expect(&Token)`
/// is a grammar method, not a panic. Invariants that are genuinely
/// unreachable stay, justified, behind `// analyze:allow(unwrap: …)`.
pub fn unwrap_rule(path: &str, model: &Model) -> Vec<Finding> {
    if !UNWRAP_SCOPE.iter().any(|p| path.starts_with(p)) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if !matches!(toks[i].tok, Tok::Punct('.')) {
            continue;
        }
        let Some(Tok::Ident(m)) = toks.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        let is_unwrap = m == "unwrap"
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('(')))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(')')));
        let is_expect = m == "expect"
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('(')))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Str(_)));
        if (is_unwrap || is_expect) && !model.is_test_token(i) {
            let line = toks[i + 1].line;
            findings.push(Finding {
                rule: "unwrap".into(),
                file: path.to_string(),
                line,
                snippet: model.snippet(line),
                message: format!(
                    "`.{m}(…)` in non-test library code on a hot path; return a typed error, or \
                     justify with `// analyze:allow(unwrap: why this cannot fail)`"
                ),
                chain: Vec::new(),
            });
        }
    }
    findings
}

// -------------------------------------------------------------- undo-coverage

/// Rule `undo-coverage`: every non-test function in the executor that
/// takes `&mut Catalog` must also thread `Option<&mut UndoLog>` — a
/// mutation path that cannot log undo is a mutation a transaction
/// cannot roll back.
pub fn undo_coverage(path: &str, model: &Model) -> Vec<Finding> {
    if !path.ends_with("sdm-metadb/src/exec.rs") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for f in &model.fns {
        if f.is_test {
            continue;
        }
        let sig = &model.tokens[f.sig.0..f.sig.1.min(model.tokens.len())];
        let takes_mut_catalog = sig.windows(3).any(|w| {
            matches!(&w[0].tok, Tok::Punct('&'))
                && matches!(&w[1].tok, Tok::Ident(m) if m == "mut")
                && matches!(&w[2].tok, Tok::Ident(c) if c == "Catalog")
        });
        let threads_undo = sig
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(u) if u == "UndoLog"));
        if takes_mut_catalog && !threads_undo {
            findings.push(Finding {
                rule: "undo-coverage".into(),
                file: path.to_string(),
                line: f.line,
                snippet: model.snippet(f.line),
                message: format!(
                    "`{}` takes `&mut Catalog` without threading `Option<&mut UndoLog>`: its \
                     mutations cannot be rolled back by an open transaction",
                    f.name
                ),
                chain: Vec::new(),
            });
        }
    }
    findings
}

// -------------------------------------------------------------- compiled-eval

/// Rule `compiled-eval`: no direct AST-walk evaluation (`eval_ast(…)`)
/// outside `sdm-metadb/src/eval.rs` and test code. Expressions on the
/// hot path must run as compiled instruction-list programs through
/// `row_truthy`/`row_value`, which fall back to the walker only when
/// compilation itself declined; a direct `eval_ast` call site is the
/// interpreted tree traversal creeping back in. Benchmarks measuring
/// the walker as a baseline justify themselves with
/// `// analyze:allow(compiled-eval: …)`.
pub fn compiled_eval(path: &str, model: &Model) -> Vec<Finding> {
    // eval.rs owns the walker; integration-test trees exercise it as
    // the equivalence oracle (the proptest suite's whole point).
    if path.ends_with("sdm-metadb/src/eval.rs")
        || path.starts_with("tests/")
        || path.contains("/tests/")
    {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(w) = &toks[i].tok else {
            continue;
        };
        if w != "eval_ast" || !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        if model.is_test_token(i) {
            continue;
        }
        let line = toks[i].line;
        findings.push(Finding {
            rule: "compiled-eval".into(),
            file: path.to_string(),
            line,
            snippet: model.snippet(line),
            message: "direct AST-walk evaluation (`eval_ast(…)`) outside eval.rs; go through the \
                      compiled program path (`row_truthy`/`row_value`), or justify with \
                      `// analyze:allow(compiled-eval: why the walker is wanted here)`"
                .into(),
            chain: Vec::new(),
        });
    }
    findings
}

// --------------------------------------------------------------- wal-ordering

/// Where `sdm-metadb` *is* allowed to touch the filesystem directly: the
/// WAL storage backends (the durability layer itself) and the snapshot
/// persistence module (whose save rides the WAL's `write_atomic`).
const WAL_FS_ALLOWLIST_PREFIX: &str = "crates/sdm-metadb/src/wal/";
const WAL_FS_ALLOWLIST: &[&str] = &["crates/sdm-metadb/src/persist.rs"];

/// `std::fs` free functions that mutate the filesystem. Reads
/// (`fs::read`, `fs::read_dir`, …) are deliberately absent: recovery and
/// snapshot loading read from anywhere.
const FS_MUTATORS: &[&str] = &[
    "write",
    "rename",
    "copy",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "set_permissions",
    "hard_link",
];

/// `File` associated functions that open for writing.
const FILE_WRITERS: &[&str] = &["create", "create_new", "options"];

/// Rule `wal-ordering`: no direct filesystem writes in `sdm-metadb`
/// outside `wal/` and `persist.rs`. Durable state must flow through the
/// `WalStorage` seam — a stray `fs::write`/`File::create` elsewhere in
/// the engine is a mutation crash recovery can never replay, silently
/// breaking the append-before-apply invariant.
pub fn wal_ordering(path: &str, model: &Model) -> Vec<Finding> {
    if !path.starts_with("crates/sdm-metadb/src/")
        || path.starts_with(WAL_FS_ALLOWLIST_PREFIX)
        || WAL_FS_ALLOWLIST.contains(&path)
    {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(w) = &toks[i].tok else {
            continue;
        };
        // `::` lexes as two ':' puncts; the call site is
        // `<head> : : <method> (`.
        let is_path_call = |head: &str, methods: &[&str]| {
            w == head
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(
                    toks.get(i + 3).map(|t| &t.tok),
                    Some(Tok::Ident(m)) if methods.contains(&m.as_str())
                )
                && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct('(')))
        };
        let hit = is_path_call("fs", FS_MUTATORS)
            || is_path_call("File", FILE_WRITERS)
            || is_path_call("OpenOptions", &["new"]);
        if hit && !model.is_test_token(i) {
            let line = toks[i].line;
            findings.push(Finding {
                rule: "wal-ordering".into(),
                file: path.to_string(),
                line,
                snippet: model.snippet(line),
                message: "direct filesystem write inside sdm-metadb but outside wal/ and \
                          persist.rs; durable mutations must go through the `WalStorage` seam so \
                          crash recovery can replay them, or justify with \
                          `// analyze:allow(wal-ordering: …)`"
                    .into(),
                chain: Vec::new(),
            });
        }
    }
    findings
}

/// Run every intraprocedural rule over one file, **pre-suppression**.
/// `analyze_sources` merges these with the interprocedural findings,
/// dedups, and only then applies the `analyze:allow` pass — suppression
/// has to happen after the merge so every directive's usage can be
/// tracked for `unused-allow`.
pub fn intra(path: &str, model: &Model) -> Vec<Finding> {
    let mut all = Vec::new();
    all.extend(crate::ladder::check(path, model));
    all.extend(sql_layering(path, model));
    all.extend(deprecated_call(path, model));
    all.extend(unwrap_rule(path, model));
    all.extend(undo_coverage(path, model));
    all.extend(compiled_eval(path, model));
    all.extend(wal_ordering(path, model));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        crate::analyze_file(path, src).0
    }

    #[test]
    fn sql_flagged_above_metadb_only() {
        let src = r#"fn f() { let q = "SELECT x FROM t"; }"#;
        assert_eq!(findings("crates/sdm-core/src/foo.rs", src).len(), 1);
        assert!(findings("crates/sdm-metadb/src/foo.rs", src).is_empty());
        assert!(findings("crates/sdm-core/src/store.rs", src).is_empty());
    }

    #[test]
    fn sql_in_comment_is_not_flagged() {
        let src = "fn f() {} // the old way: \"SELECT x FROM t\"";
        assert!(findings("crates/sdm-core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn deprecated_optin_flagged_outside_allowlist() {
        let src = "#[allow(deprecated)]\nfn f() {}";
        assert_eq!(findings("crates/sdm-apps/src/foo.rs", src).len(), 1);
        assert!(findings("crates/sdm-core/tests/api.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_in_scope_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        assert_eq!(findings("crates/sdm-metadb/src/foo.rs", src).len(), 2);
        assert!(findings("crates/sdm-mesh/src/foo.rs", src).is_empty());
    }

    #[test]
    fn parser_expect_method_not_flagged() {
        let src = "fn f() { self.expect(&Token::LParen)?; x.unwrap_or(0); }";
        assert!(findings("crates/sdm-metadb/src/sql/parser.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_not_flagged() {
        let src = "#[cfg(test)] mod tests { fn t() { x.unwrap(); } }";
        assert!(findings("crates/sdm-metadb/src/foo.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src =
            "fn f() {\n  // analyze:allow(unwrap: slot was bounds-checked above)\n  x.unwrap();\n}";
        assert!(findings("crates/sdm-metadb/src/foo.rs", src).is_empty());
        let (_, suppressed) = crate::analyze_file("crates/sdm-metadb/src/foo.rs", src);
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "fn f() {\n  // analyze:allow(unwrap)\n  x.unwrap();\n}";
        assert_eq!(findings("crates/sdm-metadb/src/foo.rs", src).len(), 1);
    }

    #[test]
    fn eval_ast_call_flagged_outside_eval_rs() {
        let src = "fn f() { let v = eval_ast(e, res, row, params); }";
        assert_eq!(findings("crates/sdm-metadb/src/exec.rs", src).len(), 1);
        assert!(findings("crates/sdm-metadb/src/eval.rs", src).is_empty());
    }

    #[test]
    fn eval_ast_in_tests_or_allowed_is_not_flagged() {
        let test_src = "#[cfg(test)] mod tests { fn t() { eval_ast(e, r, w, p); } }";
        assert!(findings("crates/sdm-metadb/src/exec.rs", test_src).is_empty());
        let allowed = "fn f() {\n  // analyze:allow(compiled-eval: AST-walk baseline twin)\n  \
                       eval_ast(e, r, w, p);\n}";
        assert!(findings("crates/sdm-bench/src/bin/bench_metadb.rs", allowed).is_empty());
        // Mentions in comments and the definition itself don't count.
        let comment = "fn f() {} // eval_ast(…) is the fallback";
        assert!(findings("crates/sdm-metadb/src/exec.rs", comment).is_empty());
    }

    #[test]
    fn wal_ordering_flags_direct_writes_in_engine_code() {
        let src = "fn f(p: &Path) { fs::write(p, b\"x\").ok(); }";
        let f = findings("crates/sdm-metadb/src/table.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("WalStorage"));
        let src2 = "fn f(p: &Path) { let f = File::create(p); }";
        assert_eq!(findings("crates/sdm-metadb/src/exec.rs", src2).len(), 1);
        let src3 = "fn f(p: &Path) { OpenOptions::new().append(true).open(p); }";
        assert_eq!(findings("crates/sdm-metadb/src/db.rs", src3).len(), 1);
    }

    #[test]
    fn wal_ordering_exempts_wal_persist_reads_and_tests() {
        let write = "fn f(p: &Path) { fs::write(p, b\"x\").ok(); }";
        assert!(findings("crates/sdm-metadb/src/wal/storage.rs", write).is_empty());
        assert!(findings("crates/sdm-metadb/src/persist.rs", write).is_empty());
        assert!(findings("crates/sdm-core/src/store.rs", write).is_empty());
        let read = "fn f(p: &Path) { fs::read_to_string(p).ok(); fs::read_dir(p).ok(); }";
        assert!(findings("crates/sdm-metadb/src/table.rs", read).is_empty());
        let test = "#[cfg(test)] mod tests { fn t() { fs::write(\"x\", b\"y\").unwrap(); } }";
        assert!(findings("crates/sdm-metadb/src/table.rs", test).is_empty());
    }

    #[test]
    fn undo_coverage_flags_missing_param() {
        let src = "fn mutate(c: &mut Catalog) {}\n\
                   fn good(c: &mut Catalog, undo: Option<&mut UndoLog>) {}\n\
                   fn read(c: &Catalog) {}";
        let f = findings("crates/sdm-metadb/src/exec.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("mutate"));
        assert!(findings("crates/sdm-metadb/src/undo.rs", src).is_empty());
    }
}
