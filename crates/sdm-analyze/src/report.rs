//! Findings and the machine-readable reports (`ANALYZE.json`, SARIF).
//!
//! The JSON writers are hand-rolled (the analyzer depends on nothing
//! outside the workspace); the `ANALYZE.json` schema is flat and stable
//! so CI can archive and diff it, and [`Report::to_sarif`] emits a
//! minimal SARIF 2.1.0 log for code-scanning UIs.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`ladder`, `held-io`, `panic-under-guard`, …).
    pub rule: String,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// The trimmed source line, for humans reading the report.
    pub snippet: String,
    /// What is wrong and what to do about it.
    pub message: String,
    /// Witness chain for interprocedural findings: each element is one
    /// hop (`Database::run_statement (crates/…/db.rs:545)`) ending at
    /// the terminal effect (`catalog.write() [catalog(20)] (…)`).
    /// Empty for findings proven inside one body.
    pub chain: Vec<String>,
}

/// One `// analyze:allow(rule: reason)` directive found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// Rule id it suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Whether the directive actually suppressed or filtered anything
    /// this run; `false` feeds the `unused-allow` rule.
    pub used: bool,
}

/// The full analysis result for a workspace.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub analyzed_files: usize,
    /// Number of non-test functions in the call graph.
    pub analyzed_fns: usize,
    /// Number of resolved call edges (ambiguous calls count every
    /// candidate).
    pub call_edges: usize,
    /// Rule ids that ran.
    pub rules_checked: Vec<String>,
    /// Findings suppressed by `analyze:allow` directives.
    pub suppressed: usize,
    /// Every suppression directive in the workspace, with usage.
    pub allows: Vec<AllowSite>,
    /// Surviving findings, ordered by file then line.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Serialize to the `ANALYZE.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"analyzed_files\": {},", self.analyzed_files);
        let _ = writeln!(out, "  \"analyzed_fns\": {},", self.analyzed_fns);
        let _ = writeln!(out, "  \"call_edges\": {},", self.call_edges);
        out.push_str("  \"rules_checked\": [");
        for (i, r) in self.rules_checked.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(r));
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "{{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}, \"used\": {}}}",
                json_string(&a.file),
                a.line,
                json_string(&a.rule),
                json_string(&a.reason),
                a.used
            );
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}",
                json_string(&f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.snippet),
                json_string(&f.message)
            );
            out.push_str(", \"chain\": [");
            for (j, hop) in f.chain.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(hop));
            }
            out.push_str("]}");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Serialize to a minimal SARIF 2.1.0 log (one run, one rule entry
    /// per checked rule, one result per finding; witness chains ride in
    /// the result message).
    pub fn to_sarif(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        out.push_str("  \"runs\": [{\n");
        out.push_str("    \"tool\": {\"driver\": {\"name\": \"sdm-analyze\", \"rules\": [");
        for (i, r) in self.rules_checked.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"id\": {}}}", json_string(r));
        }
        out.push_str("]}},\n");
        out.push_str("    \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n      " } else { "\n      " });
            let mut text = f.message.clone();
            if !f.chain.is_empty() {
                text.push_str(" [witness: ");
                text.push_str(&f.chain.join(" → "));
                text.push(']');
            }
            let _ = write!(
                out,
                "{{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_string(&f.rule),
                json_string(&text),
                json_string(&f.file),
                f.line
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }]\n}\n");
        out
    }

    /// The one-line human summary CI prints.
    pub fn summary(&self) -> String {
        format!(
            "analyzed_files={} analyzed_fns={} call_edges={} rules_checked={} suppressed={} \
             findings={}",
            self.analyzed_files,
            self.analyzed_fns,
            self.call_edges,
            self.rules_checked.len(),
            self.suppressed,
            self.findings.len()
        )
    }
}

/// Escape a string per JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            analyzed_files: 2,
            analyzed_fns: 7,
            call_edges: 11,
            rules_checked: vec!["ladder".into()],
            suppressed: 1,
            allows: vec![AllowSite {
                file: "a.rs".into(),
                line: 2,
                rule: "unwrap".into(),
                reason: "checked above".into(),
                used: true,
            }],
            findings: vec![Finding {
                rule: "unwrap".into(),
                file: "a.rs".into(),
                line: 3,
                snippet: "x.unwrap();".into(),
                message: "no".into(),
                chain: vec!["f (a.rs:3)".into(), ".unwrap(…) (a.rs:9)".into()],
            }],
        }
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_round_trip_shape() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains("\"analyzed_files\": 2"));
        assert!(j.contains("\"analyzed_fns\": 7"));
        assert!(j.contains("\"call_edges\": 11"));
        assert!(j.contains("\"rules_checked\": [\"ladder\"]"));
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\"used\": true"));
        assert!(j.contains("\"chain\": [\"f (a.rs:3)\", \".unwrap(…) (a.rs:9)\"]"));
        assert_eq!(
            r.summary(),
            "analyzed_files=2 analyzed_fns=7 call_edges=11 rules_checked=1 suppressed=1 \
             findings=1"
        );
    }

    #[test]
    fn empty_findings_is_empty_array() {
        let r = Report {
            analyzed_files: 0,
            analyzed_fns: 0,
            call_edges: 0,
            rules_checked: vec![],
            suppressed: 0,
            allows: vec![],
            findings: vec![],
        };
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(r.to_json().contains("\"allows\": []"));
    }

    #[test]
    fn sarif_carries_rule_location_and_witness() {
        let s = sample().to_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"sdm-analyze\""));
        assert!(s.contains("\"ruleId\": \"unwrap\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("witness: f (a.rs:3) → .unwrap(…) (a.rs:9)"));
    }
}
