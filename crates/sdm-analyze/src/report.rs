//! Findings and the machine-readable report (`ANALYZE.json`).
//!
//! The JSON writer is hand-rolled (the analyzer is dependency-free);
//! the schema is flat and stable so CI can archive and diff it.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`ladder`, `sql-layering`, `deprecated-call`, `unwrap`,
    /// `undo-coverage`).
    pub rule: String,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// The trimmed source line, for humans reading the report.
    pub snippet: String,
    /// What is wrong and what to do about it.
    pub message: String,
}

/// The full analysis result for a workspace.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub analyzed_files: usize,
    /// Rule ids that ran.
    pub rules_checked: Vec<String>,
    /// Findings suppressed by `analyze:allow` directives.
    pub suppressed: usize,
    /// Surviving findings, ordered by file then line.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Serialize to the `ANALYZE.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"analyzed_files\": {},", self.analyzed_files);
        out.push_str("  \"rules_checked\": [");
        for (i, r) in self.rules_checked.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(r));
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
                json_string(&f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.snippet),
                json_string(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The one-line human summary CI prints.
    pub fn summary(&self) -> String {
        format!(
            "analyzed_files={} rules_checked={} suppressed={} findings={}",
            self.analyzed_files,
            self.rules_checked.len(),
            self.suppressed,
            self.findings.len()
        )
    }
}

/// Escape a string per JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_round_trip_shape() {
        let r = Report {
            analyzed_files: 2,
            rules_checked: vec!["ladder".into()],
            suppressed: 1,
            findings: vec![Finding {
                rule: "unwrap".into(),
                file: "a.rs".into(),
                line: 3,
                snippet: "x.unwrap();".into(),
                message: "no".into(),
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"analyzed_files\": 2"));
        assert!(j.contains("\"rules_checked\": [\"ladder\"]"));
        assert!(j.contains("\"line\": 3"));
        assert_eq!(
            r.summary(),
            "analyzed_files=2 rules_checked=1 suppressed=1 findings=1"
        );
    }

    #[test]
    fn empty_findings_is_empty_array() {
        let r = Report {
            analyzed_files: 0,
            rules_checked: vec![],
            suppressed: 0,
            findings: vec![],
        };
        assert!(r.to_json().contains("\"findings\": []"));
    }
}
