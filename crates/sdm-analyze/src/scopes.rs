//! Source model: functions, their signatures and bodies, and test
//! context.
//!
//! Built from the raw token stream in one pass. The model is
//! deliberately shallow — token index ranges, not an AST — but it knows
//! the two things every rule needs: where each function's signature and
//! body live, and whether a given token is test code (inside a
//! `#[cfg(test)]` module or a `#[test]` function).

use crate::lexer::{lex, Allow, Tok, Token};

/// One `fn` item found in the file.
#[derive(Debug)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// The `impl` block's type name when the fn is a method
    /// (`impl Database` / `impl WalStorage for FileStorage` both yield
    /// the implementing type), `None` for free functions.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[start, end)` of the signature: from just after the
    /// name to the body's `{` (or the `;` of a bodyless declaration).
    pub sig: (usize, usize),
    /// Token range `[start, end)` of the body including both braces;
    /// `None` for trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether this is test code (`#[test]`, or any enclosing
    /// `#[cfg(test)]` module).
    pub is_test: bool,
}

/// The lexed file plus structure.
#[derive(Debug)]
pub struct Model {
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Suppression directives from comments.
    pub allows: Vec<Allow>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnInfo>,
    /// Token ranges that are test code (test modules and test fns).
    pub test_spans: Vec<(usize, usize)>,
    /// Source split into lines (for snippets).
    pub lines: Vec<String>,
}

impl Model {
    /// Build the model for one file.
    pub fn build(source: &str) -> Self {
        let lexed = lex(source);
        let (fns, test_spans) = scan_items(&lexed.tokens);
        Model {
            tokens: lexed.tokens,
            allows: lexed.allows,
            fns,
            test_spans,
            lines: source.lines().map(str::to_string).collect(),
        }
    }

    /// Whether token index `i` lies in test code.
    pub fn is_test_token(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// The trimmed source line `line` (1-based), for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Whether source line `line` (1-based) lies in test code: the line
    /// of any token inside a test span. Comment-only lines between two
    /// test tokens count too, which is what directive mining needs.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| {
            let first = self.tokens.get(s).map(|t| t.line);
            let last = e
                .checked_sub(1)
                .and_then(|j| self.tokens.get(j))
                .map(|t| t.line);
            matches!((first, last), (Some(a), Some(b)) if a <= line && line <= b)
        })
    }

    /// Whether a finding of `rule` at `line` is suppressed by an
    /// `analyze:allow(rule: reason)` on the same or the preceding line.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Walk the token stream once, collecting `fn` items and test spans.
fn scan_items(toks: &[Token]) -> (Vec<FnInfo>, Vec<(usize, usize)>) {
    let mut fns = Vec::new();
    let mut test_spans = Vec::new();
    // Stack of open `#[cfg(test)]` module depths (brace depth at entry).
    let mut test_mod_depths: Vec<(usize, usize)> = Vec::new(); // (depth, span start)
                                                               // Stack of open `impl` blocks: (brace depth at entry, type name).
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut depth = 0usize;
    // Attributes seen since the last item boundary, flattened to words.
    let mut pending_attrs: Vec<Vec<String>> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('#') => {
                // `#[...]` or `#![...]`: collect the attribute's idents.
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    let mut words = Vec::new();
                    let mut bdepth = 0usize;
                    while j < toks.len() {
                        match &toks[j].tok {
                            Tok::Punct('[') => bdepth += 1,
                            Tok::Punct(']') => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            Tok::Ident(w) => words.push(w.clone()),
                            Tok::Punct(c @ ('(' | ')')) => words.push(c.to_string()),
                            _ => {}
                        }
                        j += 1;
                    }
                    pending_attrs.push(words);
                    i = j;
                    continue;
                }
                i += 1;
            }
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
                pending_attrs.clear();
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                // A module pushed at depth `d` opens a brace (depth
                // `d + 1`); its closing brace brings depth back *to*
                // `d`, which is when the span ends.
                if let Some(&(d, start)) = test_mod_depths.last() {
                    if depth <= d {
                        test_mod_depths.pop();
                        test_spans.push((start, i + 1));
                    }
                }
                if let Some(&(d, _)) = impl_stack.last() {
                    if depth <= d {
                        impl_stack.pop();
                    }
                }
                i += 1;
                pending_attrs.clear();
            }
            Tok::Ident(w) if w == "mod" => {
                // `mod name {` — enter; `mod name;` — nothing to track.
                let is_test = pending_attrs.iter().any(|a| is_cfg_test(a));
                pending_attrs.clear();
                let mut j = i + 1;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if j < toks.len() && toks[j].tok == Tok::Punct('{') {
                    if is_test {
                        test_mod_depths.push((depth, i));
                    }
                    depth += 1;
                }
                i = j + 1;
            }
            Tok::Ident(w) if w == "impl" && at_item_position(toks, i) => {
                pending_attrs.clear();
                let (owner, j) = parse_impl_header(toks, i + 1);
                if j < toks.len() && toks[j].tok == Tok::Punct('{') {
                    impl_stack.push((depth, owner));
                    depth += 1;
                }
                i = j + 1;
            }
            Tok::Ident(w) if w == "fn" => {
                let line = toks[i].line;
                let in_test_mod = !test_mod_depths.is_empty();
                let has_test_attr = pending_attrs.iter().any(|a| is_test_attr(a));
                pending_attrs.clear();
                let name = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    // `fn` inside a type (`fn(...)` pointers): skip.
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let sig_start = i + 2;
                // The signature runs to the body `{` or a `;`
                // (trait-method declaration). Parens and brackets can
                // nest, but a `{` before `;` at nesting level 0 is the
                // body (const-generic braces hide inside `()`/`<>`-free
                // positions rarely enough for a lint).
                let mut j = sig_start;
                let mut pdepth = 0usize;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => pdepth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => pdepth = pdepth.saturating_sub(1),
                        Tok::Punct(';') if pdepth == 0 => break,
                        Tok::Punct('{') if pdepth == 0 => {
                            // Find the matching close.
                            let mut bdepth = 0usize;
                            let mut k = j;
                            while k < toks.len() {
                                match &toks[k].tok {
                                    Tok::Punct('{') => bdepth += 1,
                                    Tok::Punct('}') => {
                                        bdepth -= 1;
                                        if bdepth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            body = Some((j, (k + 1).min(toks.len())));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let sig_end = j;
                let is_test = in_test_mod || has_test_attr;
                if is_test {
                    if let Some((bs, be)) = body {
                        if !in_test_mod {
                            // A `#[test]` fn outside a test module still
                            // masks its own tokens.
                            test_spans.push((i, be.max(bs)));
                        }
                    }
                }
                fns.push(FnInfo {
                    name,
                    owner: impl_stack.last().and_then(|(_, o)| o.clone()),
                    line,
                    sig: (sig_start, sig_end),
                    body,
                    is_test,
                });
                // Continue scanning *inside* the body too (nested fns,
                // nested modules): just step past the `fn` name.
                i += 2;
            }
            // Qualifiers that may sit between an attribute and the item
            // it decorates (`#[test] pub(crate) async fn …`) must not
            // discard the pending attributes.
            Tok::Ident(w)
                if matches!(
                    w.as_str(),
                    "pub"
                        | "unsafe"
                        | "async"
                        | "const"
                        | "extern"
                        | "crate"
                        | "super"
                        | "in"
                        | "self"
                ) =>
            {
                i += 1;
            }
            Tok::Punct('(') | Tok::Punct(')') | Tok::Str(_) => {
                i += 1;
            }
            _ => {
                pending_attrs.clear();
                i += 1;
            }
        }
    }
    // File ended inside a test module (unbalanced braces): close spans.
    while let Some((_, start)) = test_mod_depths.pop() {
        test_spans.push((start, toks.len()));
    }
    (fns, test_spans)
}

/// Whether the `impl` at token `i` starts an item (an impl block) rather
/// than appearing in type position (`fn f(x: impl Trait)`,
/// `-> impl Iterator`). Item position: start of file, after a closing
/// or opening brace, a `;`, a `]` (attribute close), or `unsafe`.
fn at_item_position(toks: &[Token], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok) {
        None => true,
        Some(Tok::Punct('{' | '}' | ';' | ']')) => true,
        Some(Tok::Ident(w)) => w == "unsafe",
        _ => false,
    }
}

/// Parse an impl header starting just after the `impl` keyword: skip the
/// leading generic parameter list, then take the last ident of the type
/// path — restarting at `for`, so `impl<T> Trait<T> for Type<T>` yields
/// `Type`. Returns the owner and the index of the body `{`.
fn parse_impl_header(toks: &[Token], mut j: usize) -> (Option<String>, usize) {
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        j = skip_generics(toks, j);
    }
    let mut owner: Option<String> = None;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Punct('<') => {
                j = skip_generics(toks, j);
                continue;
            }
            Tok::Ident(w) if w == "for" => owner = None,
            Tok::Ident(w) if w == "where" => {
                while j < toks.len() && toks[j].tok != Tok::Punct('{') {
                    j += 1;
                }
                break;
            }
            Tok::Ident(w) if w == "dyn" || w == "mut" => {}
            // Successive path segments overwrite: `fmt::Display` ends at
            // `Display`, `crate::wal::Wal` at `Wal`.
            Tok::Ident(w) => owner = Some(w.clone()),
            _ => {}
        }
        j += 1;
    }
    (owner, j)
}

/// Skip a balanced `<…>` generic list starting at the `<` at `j`. A `>`
/// preceded by `-` is a return arrow inside an `Fn(...) -> T` bound, not
/// a closer.
fn skip_generics(toks: &[Token], mut j: usize) -> usize {
    let mut adepth = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => adepth += 1,
            Tok::Punct('>') => {
                let arrow = j > 0 && toks[j - 1].tok == Tok::Punct('-');
                if !arrow {
                    adepth -= 1;
                    if adepth == 0 {
                        return j + 1;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// `#[cfg(test)]` — exactly, so `cfg(not(test))` stays non-test.
fn is_cfg_test(words: &[String]) -> bool {
    words.len() == 4
        && words[0] == "cfg"
        && words[1] == "("
        && words[2] == "test"
        && words[3] == ")"
}

/// `#[test]` (or a path ending in `test`, e.g. `tokio::test`).
fn is_test_attr(words: &[String]) -> bool {
    words.last().is_some_and(|w| w == "test") && !words.iter().any(|w| w == "cfg")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_bodies() {
        let m = Model::build("fn a() { 1 }\npub fn b(x: i32) -> i32;\nfn c() {}\n");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[1].body.is_none());
    }

    #[test]
    fn cfg_test_module_marks_tokens() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}\nfn lib2() {}";
        let m = Model::build(src);
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
        assert!(!by_name("lib2").is_test);
        // Tokens inside the module are test tokens; outside not.
        let helper = by_name("helper");
        assert!(m.is_test_token(helper.body.unwrap().0));
        let lib2 = by_name("lib2");
        assert!(!m.is_test_token(lib2.body.unwrap().0));
    }

    #[test]
    fn test_attr_fn_outside_module() {
        let m = Model::build("#[test]\nfn t() { boom(); }\nfn lib() {}");
        assert!(m.fns[0].is_test);
        assert!(!m.fns[1].is_test);
        assert!(m.is_test_token(m.fns[0].body.unwrap().0 + 1));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let m = Model::build("#[cfg(not(test))]\nmod m { fn f() {} }");
        assert!(!m.fns[0].is_test);
    }

    #[test]
    fn allow_applies_same_and_next_line() {
        let m = Model::build("// analyze:allow(unwrap: fine)\nlet x = y.unwrap();\n");
        assert!(m.allowed("unwrap", 1));
        assert!(m.allowed("unwrap", 2));
        assert!(!m.allowed("unwrap", 3));
        assert!(!m.allowed("ladder", 2));
    }

    #[test]
    fn impl_owner_is_tracked() {
        let src = "impl Database { fn method(&self) {} }\n\
                   fn free() {}\n\
                   impl fmt::Display for Value { fn fmt(&self) {} }\n\
                   impl<T: Clone> Handle<T> { fn get(&self) {} }\n\
                   impl WalStorage for FileStorage { fn sync(&mut self) {} }";
        let m = Model::build(src);
        let owner = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap().owner.clone();
        assert_eq!(owner("method").as_deref(), Some("Database"));
        assert_eq!(owner("free"), None);
        assert_eq!(owner("fmt").as_deref(), Some("Value"));
        assert_eq!(owner("get").as_deref(), Some("Handle"));
        assert_eq!(owner("sync").as_deref(), Some("FileStorage"));
    }

    #[test]
    fn impl_in_type_position_is_not_a_block() {
        let src = "fn f(x: impl Iterator<Item = u8>) -> impl Clone { x }\nfn g() {}";
        let m = Model::build(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[1].owner, None);
    }

    #[test]
    fn nested_fn_inherits_then_releases_owner() {
        let src = "impl A { fn m(&self) {} }\nfn free2() {}";
        let m = Model::build(src);
        assert_eq!(m.fns[0].owner.as_deref(), Some("A"));
        assert_eq!(m.fns[1].owner, None);
    }

    #[test]
    fn is_test_line_covers_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\n";
        let m = Model::build(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(4));
    }

    #[test]
    fn sig_range_covers_params() {
        let m = Model::build("fn f(c: &mut Catalog, u: Option<&mut UndoLog>) -> i32 { 0 }");
        let f = &m.fns[0];
        let words: Vec<_> = m.tokens[f.sig.0..f.sig.1]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(words.contains(&"Catalog"));
        assert!(words.contains(&"UndoLog"));
    }
}
