//! CLI for the workspace invariant checker.
//!
//! ```text
//! sdm-analyze [--root DIR] [--json FILE] [--sarif FILE]
//! ```
//!
//! Analyzes the workspace at `--root` (default: current directory),
//! writes the machine-readable report to `--json` (default:
//! `<root>/ANALYZE.json`) and optionally a SARIF 2.1.0 log to
//! `--sarif`, prints each finding (with its witness chain for
//! interprocedural findings) plus a one-line summary, and exits nonzero
//! when findings survive suppression.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut sarif: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a file path"),
            },
            "--sarif" => match args.next() {
                Some(v) => sarif = Some(PathBuf::from(v)),
                None => return usage("--sarif needs a file path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let json = json.unwrap_or_else(|| root.join("ANALYZE.json"));

    let report = match sdm_analyze::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "sdm-analyze: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if let Err(e) = std::fs::write(&json, report.to_json()) {
        eprintln!("sdm-analyze: cannot write {}: {e}", json.display());
        return ExitCode::from(2);
    }
    if let Some(sarif) = &sarif {
        if let Err(e) = std::fs::write(sarif, report.to_sarif()) {
            eprintln!("sdm-analyze: cannot write {}: {e}", sarif.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        println!("    {}", f.snippet);
        if !f.chain.is_empty() {
            println!("    witness: {}", f.chain.join(" → "));
        }
    }
    println!("{}", report.summary());

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("sdm-analyze: {err}");
    eprintln!("usage: sdm-analyze [--root DIR] [--json FILE] [--sarif FILE]");
    ExitCode::from(2)
}
