//! `sdm-analyze`: the workspace invariant checker.
//!
//! A hermetic static-analysis pass over the SDM workspace that enforces
//! the invariants the compiler cannot see. Per-file rules:
//!
//! * **`ladder`** — the lock-acquisition order documented on
//!   `Database` (`tx` → `catalog` → `wal_sync` → `wal_buf` → leaf
//!   mutexes, ranks from `sdm-ranks`), checked per function body with a
//!   guard-scope model (let bindings, statement temporaries, `if
//!   let`/`match` scrutinee temporaries, early `drop`s).
//! * **`sql-layering`** — no raw SQL string literals above
//!   `sdm-metadb`; higher layers build typed `Stmt` values.
//! * **`deprecated-call`** — the `#[deprecated]` compatibility veneers
//!   may only be exercised from their designated files.
//! * **`unwrap`** — no `.unwrap()` / `.expect("…")` in non-test library
//!   code on the `sdm-metadb`/`sdm-core` hot paths.
//! * **`compiled-eval`** — no direct AST-walk evaluation
//!   (`eval_ast(…)`) outside `sdm-metadb/src/eval.rs` and test code;
//!   hot-path expressions run as compiled instruction-list programs.
//! * **`wal-ordering`** — no direct filesystem writes in `sdm-metadb`
//!   outside `wal/` and `persist.rs`.
//!
//! Interprocedural rules (built on [`callgraph`] + [`dataflow`], each
//! finding carrying a witness chain):
//!
//! * **`ladder`** (cross-function) — a call whose callee transitively
//!   acquires a rank not strictly below everything held at the call.
//! * **`held-io`** — blocking I/O reachable while the catalog or a leaf
//!   lock is held (the WAL group-commit leader path is the sanctioned
//!   exception).
//! * **`undo-coverage`** — intra: executor fns taking `&mut Catalog`
//!   must thread `Option<&mut UndoLog>`; inter: any such fn reachable
//!   from an exec entry point without undo threaded the whole way.
//! * **`panic-under-guard`** — a panic site reachable while the
//!   `catalog` write guard is held.
//! * **`unused-allow`** — a suppression directive that suppressed
//!   nothing this run.
//!
//! Findings can be suppressed, with a mandatory justification, by
//! `// analyze:allow(rule-id: reason)` on the same or preceding line;
//! for the interprocedural rules the directive goes on the *terminal*
//! site and quiets every caller. The binary writes `ANALYZE.json` (and
//! optionally SARIF) and exits nonzero when findings survive; CI runs
//! it in the lint job.

pub mod callgraph;
pub mod dataflow;
pub mod ladder;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scopes;

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use report::{AllowSite, Finding, Report};
use scopes::Model;

/// Analyze a set of sources given as `(repo-relative path, text)`
/// pairs: the full pipeline — intraprocedural rules, call graph, effect
/// summaries, interprocedural rules, suppression, unused-allow.
pub fn analyze_sources(files: &[(String, String)]) -> Report {
    let models: Vec<(String, Model)> = files
        .iter()
        .map(|(p, s)| (p.clone(), Model::build(s)))
        .collect();

    let mut findings: Vec<Finding> = Vec::new();
    for (path, model) in &models {
        findings.extend(rules::intra(path, model));
    }

    let cg = callgraph::Callgraph::build(&models);
    let mut allow_use = dataflow::AllowUse::new(&models);
    let sums = dataflow::summarize(&cg, &models, &mut allow_use);
    findings.extend(dataflow::check(&cg, &models, &sums, &mut allow_use));

    // Suppression pass, tracking which directives earned their keep.
    // (The intra and inter halves of each rule are disjoint by
    // construction — e.g. the BFS `undo-coverage` pass skips exec.rs,
    // which the per-signature rule owns — so no dedup is needed.)
    let index_of: HashMap<&str, usize> = models
        .iter()
        .enumerate()
        .map(|(i, (p, _))| (p.as_str(), i))
        .collect();
    let mut suppressed = 0usize;
    findings.retain(|f| {
        let fi = index_of[f.file.as_str()];
        let model = &models[fi].1;
        if model.allowed(&f.rule, f.line) {
            allow_use.mark(fi, model, &f.rule, f.line);
            suppressed += 1;
            false
        } else {
            true
        }
    });

    // Unused suppressions. Directives in test code are exempt (the
    // rules skip test code, so they can never be "used"), and a stale
    // directive can itself be suppressed while it is being cleaned up.
    let mut allows: Vec<AllowSite> = Vec::new();
    for (fi, (path, model)) in models.iter().enumerate() {
        for (ai, a) in model.allows.iter().enumerate() {
            let used = allow_use.is_used(fi, ai);
            allows.push(AllowSite {
                file: path.clone(),
                line: a.line,
                rule: a.rule.clone(),
                reason: a.reason.clone(),
                used,
            });
            if used || model.is_test_line(a.line) || a.rule == "unused-allow" {
                continue;
            }
            if model.allowed("unused-allow", a.line) {
                suppressed += 1;
                continue;
            }
            findings.push(Finding {
                rule: "unused-allow".into(),
                file: path.clone(),
                line: a.line,
                snippet: model.snippet(a.line),
                message: format!(
                    "`analyze:allow({}: …)` suppressed nothing this run; remove the stale \
                     directive (or fix its rule id / move it to the offending line)",
                    a.rule
                ),
                chain: Vec::new(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Report {
        analyzed_files: models.len(),
        analyzed_fns: cg.analyzed_fns(),
        call_edges: cg.call_edges,
        rules_checked: rules::RULES.iter().map(|r| r.to_string()).collect(),
        suppressed,
        allows,
        findings,
    }
}

/// Analyze one file's source under its repo-relative path (forward
/// slashes). Returns surviving findings and the suppressed count.
/// Interprocedural rules see only this file's call graph.
pub fn analyze_file(rel_path: &str, source: &str) -> (Vec<Finding>, usize) {
    let r = analyze_sources(&[(rel_path.to_string(), source.to_string())]);
    (r.findings, r.suppressed)
}

/// Analyze every `.rs` file under `root` and assemble the report.
///
/// Walks `crates/`, `src/`, `tests/`, and `examples/`, skipping
/// `target/` and dot-directories. Files are visited in sorted path
/// order so the report (and the call-graph indices behind the witness
/// chains) is deterministic.
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut paths);
    }
    paths.sort();

    let mut files = Vec::new();
    for path in &paths {
        let source = fs::read_to_string(path)?;
        files.push((rel_path(root, path), source));
    }
    Ok(analyze_sources(&files))
}

/// Recursively collect `.rs` files, skipping `target` and dotted names.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Repo-relative path with forward slashes (rule scopes are defined on
/// this form).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_file_runs_all_rules() {
        let (findings, _) = analyze_file("crates/sdm-metadb/src/foo.rs", "fn f() { x.unwrap(); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unwrap");
    }

    #[test]
    fn unused_allow_is_flagged_and_used_allow_is_not() {
        let stale = "fn f() {\n  // analyze:allow(unwrap: nothing here unwraps)\n  let x = 1;\n}";
        let (findings, _) = analyze_file("crates/sdm-metadb/src/foo.rs", stale);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unused-allow");
        assert_eq!(findings[0].line, 2);

        let used = "fn f() {\n  // analyze:allow(unwrap: checked above)\n  x.unwrap();\n}";
        let (findings, suppressed) = analyze_file("crates/sdm-metadb/src/foo.rs", used);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unused_allow_skips_test_code() {
        let src = "#[cfg(test)] mod tests {\n  // analyze:allow(unwrap: fixture)\n  fn t() {}\n}";
        let (findings, _) = analyze_file("crates/sdm-metadb/src/foo.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn report_carries_allow_sites() {
        let src = "fn f() {\n  // analyze:allow(unwrap: checked)\n  x.unwrap();\n}";
        let r = analyze_sources(&[("crates/sdm-metadb/src/foo.rs".into(), src.into())]);
        assert_eq!(r.allows.len(), 1);
        assert!(r.allows[0].used);
        assert_eq!(r.allows[0].rule, "unwrap");
        assert_eq!(r.rules_checked.len(), 10);
    }

    #[test]
    fn rel_path_is_forward_slashed() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/x/src/lib.rs");
        assert_eq!(rel_path(root, p), "crates/x/src/lib.rs");
    }
}
