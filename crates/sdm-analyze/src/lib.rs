//! `sdm-analyze`: the workspace invariant checker.
//!
//! A hermetic static-analysis pass over the SDM workspace that enforces
//! the invariants the compiler cannot see:
//!
//! * **`ladder`** — the lock-acquisition order documented on
//!   `Database` (`tx` → `catalog` → leaf mutexes), checked per function
//!   body with a guard-scope model (let bindings, statement
//!   temporaries, `if let`/`match` scrutinee temporaries, early
//!   `drop`s).
//! * **`sql-layering`** — no raw SQL string literals above
//!   `sdm-metadb`; higher layers build typed `Stmt` values.
//! * **`deprecated-call`** — the `#[deprecated]` compatibility veneers
//!   may only be exercised from their designated files.
//! * **`unwrap`** — no `.unwrap()` / `.expect("…")` in non-test library
//!   code on the `sdm-metadb`/`sdm-core` hot paths.
//! * **`undo-coverage`** — executor functions taking `&mut Catalog`
//!   must thread `Option<&mut UndoLog>`.
//! * **`compiled-eval`** — no direct AST-walk evaluation
//!   (`eval_ast(…)`) outside `sdm-metadb/src/eval.rs` and test code;
//!   hot-path expressions run as compiled instruction-list programs.
//!
//! Findings can be suppressed, with a mandatory justification, by
//! `// analyze:allow(rule-id: reason)` on the same or preceding line.
//! The binary writes `ANALYZE.json` and exits nonzero when findings
//! survive; CI runs it in the lint job.

pub mod ladder;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scopes;

use std::fs;
use std::path::{Path, PathBuf};

use report::{Finding, Report};
use scopes::Model;

/// Analyze one file's source under its repo-relative path (forward
/// slashes). Returns surviving findings and the suppressed count.
pub fn analyze_file(rel_path: &str, source: &str) -> (Vec<Finding>, usize) {
    let model = Model::build(source);
    rules::analyze_model(rel_path, &model)
}

/// Analyze every `.rs` file under `root` and assemble the report.
///
/// Walks `crates/`, `src/`, `tests/`, and `examples/`, skipping
/// `target/` and dot-directories. Files are visited in sorted path
/// order so the report is deterministic.
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for path in &files {
        let source = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let (mut f, s) = analyze_file(&rel, &source);
        findings.append(&mut f);
        suppressed += s;
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        analyzed_files: files.len(),
        rules_checked: rules::RULES.iter().map(|r| r.to_string()).collect(),
        suppressed,
        findings,
    })
}

/// Recursively collect `.rs` files, skipping `target` and dotted names.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Repo-relative path with forward slashes (rule scopes are defined on
/// this form).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_file_runs_all_rules() {
        let (findings, _) = analyze_file("crates/sdm-metadb/src/foo.rs", "fn f() { x.unwrap(); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unwrap");
    }

    #[test]
    fn rel_path_is_forward_slashed() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/x/src/lib.rs");
        assert_eq!(rel_path(root, p), "crates/x/src/lib.rs");
    }
}
