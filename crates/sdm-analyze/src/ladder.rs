//! Rule `ladder` (intraprocedural half): static lock-ladder order
//! checking within one function body.
//!
//! The documented ladder in `sdm-metadb/src/db.rs` (a thread only ever
//! acquires downward), with ranks from the shared `sdm-ranks` registry:
//!
//! | rank | lock       | acquired via                      |
//! |------|------------|-----------------------------------|
//! | 10   | `tx`       | `tx.lock()`                       |
//! | 20   | `catalog`  | `catalog.read()` / `catalog.write()` |
//! | 24   | `wal_sync` | `wal_sync.lock()`                 |
//! | 26   | `wal_buf`  | `wal_buf.lock()`                  |
//! | 30   | `stats`    | `stats.lock()`                    |
//! | 30   | `plans`    | `plans.lock()`                    |
//!
//! `stats` and `plans` share a rank on purpose: leaves are taken alone,
//! never nested — under the other leaf or under themselves.
//!
//! The guard-scope model (named bindings, statement temporaries,
//! construct-scrutinee temporaries, early `drop`s) lives in
//! [`crate::callgraph::walk_body`], which replays each body as an event
//! stream; this rule just compares every [`EventKind::Acquire`] against
//! the guards held at that point. An acquisition whose rank is not
//! strictly greater than every rank currently held is a finding: upward
//! acquisition, same-`RwLock` re-entry (self-deadlock on `std`
//! primitives), or a leaf held across another acquisition. The
//! cross-function half of the rule lives in [`crate::dataflow`]; the
//! runtime rank checker in the `parking_lot` shim enforces the identical
//! policy dynamically.

use crate::callgraph::{walk_body, Event, EventKind};
use crate::report::Finding;
use crate::scopes::Model;

/// Run the ladder rule over every non-test function of `model`.
pub fn check(path: &str, model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        walk_body(&model.tokens, start, end, &mut |ev: Event| {
            let EventKind::Acquire { lock, rank, .. } = ev.kind else {
                return;
            };
            for h in &ev.held {
                let message = if h.rank > rank {
                    format!(
                        "upward lock acquisition: `{lock}` ({}) acquired while `{}` ({}) is \
                         held — the ladder runs tx → catalog → wal_sync → wal_buf → \
                         stats/plans",
                        sdm_ranks::describe(rank),
                        h.lock,
                        sdm_ranks::describe(h.rank),
                    )
                } else if h.rank == rank && h.lock == lock {
                    format!(
                        "nested acquisition of `{lock}`: re-entering the same lock on one \
                         thread self-deadlocks"
                    )
                } else if h.rank == rank {
                    format!(
                        "leaf `{}` held across acquisition of `{lock}`: leaf mutexes are taken \
                         alone, never nested",
                        h.lock
                    )
                } else {
                    continue;
                };
                findings.push(Finding {
                    rule: "ladder".into(),
                    file: path.to_string(),
                    line: ev.line,
                    snippet: model.snippet(ev.line),
                    message,
                    chain: Vec::new(),
                });
            }
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(body: &str) -> Vec<Finding> {
        let src = format!("impl Database {{ fn f(&self) {{ {body} }} }}");
        let model = Model::build(&src);
        check("crates/sdm-metadb/src/db.rs", &model)
    }

    #[test]
    fn sequential_temporaries_pass() {
        assert!(
            run("self.stats.lock().n += 1; self.plans.lock().insert(k); \
                     let c = self.catalog.read(); drop(c); self.tx.lock().take();")
            .is_empty()
        );
    }

    #[test]
    fn downward_nesting_passes() {
        assert!(run("let mut tx = self.tx.lock(); \
                     let mut catalog = self.catalog.write(); \
                     drop(catalog); drop(tx); self.stats.lock().merge();")
        .is_empty());
    }

    #[test]
    fn upward_acquisition_is_flagged() {
        let f = run("let c = self.catalog.write(); let t = self.tx.lock();");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("upward"));
        // Registry names, not bare numbers.
        assert!(f[0].message.contains("tx(10)"), "{}", f[0].message);
        assert!(f[0].message.contains("catalog(20)"), "{}", f[0].message);
    }

    #[test]
    fn same_rwlock_reentry_is_flagged() {
        let f = run("let a = self.catalog.read(); let b = self.catalog.read();");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("nested acquisition"));
    }

    #[test]
    fn leaf_across_leaf_is_flagged() {
        let f = run("let s = self.stats.lock(); self.plans.lock().get(k);");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("taken alone"));
    }

    #[test]
    fn early_drop_releases() {
        assert!(run("let s = self.stats.lock(); drop(s); let c = self.catalog.read();").is_empty());
    }

    #[test]
    fn block_scope_releases_at_close() {
        assert!(run("{ let c = self.catalog.write(); } let t = self.tx.lock();").is_empty());
    }

    #[test]
    fn statement_temp_dies_at_semicolon() {
        assert!(run("self.stats.lock().n += 1; let c = self.catalog.read();").is_empty());
    }

    #[test]
    fn if_let_scrutinee_lives_through_body() {
        let f = run("if let Some(x) = self.plans.lock().get(k) { self.stats.lock().hits += 1; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("taken alone"));
    }

    #[test]
    fn if_let_scrutinee_dies_after_construct() {
        assert!(
            run("if let Some(x) = self.plans.lock().get(k) { use_it(x); } \
                 self.stats.lock().hits += 1;")
            .is_empty()
        );
    }

    #[test]
    fn else_chain_extends_scrutinee() {
        let f = run("if let Some(x) = self.plans.lock().get(k) { a(); } \
                     else { self.stats.lock().miss += 1; }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn impure_let_rhs_is_statement_temp() {
        // The guard in `let cached = self.plans.lock().get(k);` dies at
        // the `;` — the binding holds the *result*, not the guard.
        assert!(run("let cached = self.plans.lock().get(k); self.stats.lock().n += 1;").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)] mod tests { fn t(&self) { let s = self.stats.lock(); \
                   self.tx.lock(); } }";
        let model = Model::build(src);
        assert!(check("crates/sdm-metadb/src/db.rs", &model).is_empty());
    }

    #[test]
    fn wal_sync_then_wal_buf_is_downward() {
        // The group-commit leader: drain the buffer while holding the
        // sync tail — rank 24 then 26, strictly increasing.
        assert!(run("let mut tail = self.wal_sync.lock(); \
                     let mut b = self.wal_buf.lock(); \
                     drop(b); drop(tail);")
        .is_empty());
    }

    #[test]
    fn wal_buf_then_wal_sync_is_flagged() {
        let f = run("let b = self.wal_buf.lock(); let t = self.wal_sync.lock();");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("upward"));
    }

    #[test]
    fn wal_sync_under_catalog_is_downward() {
        // Appending redo under the catalog write lock is legal: 20 → 24.
        assert!(run("let c = self.catalog.write(); let t = self.wal_sync.lock();").is_empty());
    }

    #[test]
    fn downward_into_catalog_while_tx_held_passes() {
        assert!(run("let mut tx = self.tx.lock(); \
                     let n = state.undo.rollback(&mut self.catalog.write()); \
                     drop(tx);")
        .is_empty());
    }
}
