//! Rule `ladder`: static lock-ladder order checking.
//!
//! The documented ladder in `sdm-metadb/src/db.rs` (a thread only ever
//! acquires downward):
//!
//! | rank | lock       | acquired via                      |
//! |------|------------|-----------------------------------|
//! | 10   | `tx`       | `tx.lock()`                       |
//! | 20   | `catalog`  | `catalog.read()` / `catalog.write()` |
//! | 24   | `wal_sync` | `wal_sync.lock()`                 |
//! | 26   | `wal_buf`  | `wal_buf.lock()`                  |
//! | 30   | `stats`    | `stats.lock()`                    |
//! | 30   | `plans`    | `plans.lock()`                    |
//!
//! `stats` and `plans` share a rank on purpose: leaves are taken alone,
//! never nested — under the other leaf or under themselves.
//!
//! Per non-test function body the checker models acquisitions as ranked
//! events and tracks guard scopes:
//!
//! * `let g = self.catalog.write();` — named guard, lives to the end of
//!   its block (or an explicit `drop(g)`);
//! * `self.stats.lock().n += 1;` — temporary guard, dies at the end of
//!   the statement;
//! * `if let Some(x) = self.plans.lock().get(k) { … }` — scrutinee
//!   temporary, lives through the whole construct (including an `else`
//!   chain), exactly as Rust extends it;
//! * `drop(g)` — early release.
//!
//! An acquisition whose rank is not strictly greater than every rank
//! currently held is a finding: upward acquisition, same-`RwLock`
//! re-entry (self-deadlock on `std` primitives), or a leaf held across
//! another acquisition. The runtime rank checker in the `parking_lot`
//! shim enforces the identical policy dynamically.

use crate::lexer::Tok;
use crate::report::Finding;
use crate::scopes::Model;

/// The ranked locks: name, methods that acquire them, rank.
const RANKED: &[(&str, &[&str], u32)] = &[
    ("tx", &["lock"], 10),
    ("catalog", &["read", "write"], 20),
    ("wal_sync", &["lock"], 24),
    ("wal_buf", &["lock"], 26),
    ("stats", &["lock"], 30),
    ("plans", &["lock"], 30),
];

/// How long a guard lives.
#[derive(Debug, Clone, Copy, PartialEq)]
enum End {
    /// Named binding: until its block closes (depth falls below).
    Block(usize),
    /// Statement temporary: until the `;` at this depth (or block end).
    Stmt(usize),
    /// `if let`/`match`/`while` scrutinee temporary: until the construct
    /// whose body opened at this depth closes (tracking `else` chains).
    Construct(usize),
}

#[derive(Debug)]
struct Guard {
    name: Option<String>,
    lock: &'static str,
    rank: u32,
    end: End,
}

/// Run the ladder rule over every non-test function of `model`.
pub fn check(path: &str, model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        check_body(path, model, start, end, &mut findings);
    }
    findings
}

fn check_body(path: &str, model: &Model, start: usize, end: usize, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Start of the current statement (token index) and its depth.
    let mut stmt_start = start;
    let mut stmt_depth = 0usize;
    // A construct keyword (`if`/`match`/`while`/`for`) seen at `depth`,
    // whose `{` has not been consumed yet.
    let mut pending_construct: Option<usize> = None;
    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                if pending_construct.take().is_some() {
                    // Construct body opens: scrutinee temps recorded with
                    // End::Construct(depth) die when this depth closes.
                }
                stmt_start = i + 1;
                stmt_depth = depth;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| match g.end {
                    End::Block(d) | End::Stmt(d) => d <= depth,
                    End::Construct(d) => {
                        // The construct's body closed when depth falls
                        // below d; keep alive through an `else` chain.
                        if depth < d {
                            matches!(toks.get(i + 1).map(|t| &t.tok),
                                     Some(Tok::Ident(w)) if w == "else")
                        } else {
                            true
                        }
                    }
                });
                stmt_start = i + 1;
                stmt_depth = depth;
            }
            Tok::Punct(';') => {
                guards.retain(|g| !matches!(g.end, End::Stmt(d) if d >= depth));
                stmt_start = i + 1;
                stmt_depth = depth;
            }
            Tok::Ident(w) if matches!(w.as_str(), "if" | "match" | "while" | "for") => {
                pending_construct = Some(depth);
            }
            // `drop(name)` — early release of a named guard.
            Tok::Ident(w) if w == "drop" => {
                if let (Some(Tok::Punct('(')), Some(Tok::Ident(name)), Some(Tok::Punct(')'))) = (
                    toks.get(i + 1).map(|t| &t.tok),
                    toks.get(i + 2).map(|t| &t.tok),
                    toks.get(i + 3).map(|t| &t.tok),
                ) {
                    if let Some(pos) = guards
                        .iter()
                        .rposition(|g| g.name.as_deref() == Some(name.as_str()))
                    {
                        guards.remove(pos);
                    }
                }
            }
            // Acquisition: `<name> . <method> ( )`.
            Tok::Ident(obj) => {
                if let Some((lock, rank)) = ranked(obj) {
                    let is_acq = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.')))
                        && matches!(
                            toks.get(i + 2).map(|t| &t.tok),
                            Some(Tok::Ident(m)) if RANKED
                                .iter()
                                .any(|(n, ms, _)| *n == lock && ms.contains(&m.as_str()))
                        )
                        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct(')')));
                    if is_acq {
                        let line = toks[i].line;
                        report_violations(path, model, line, lock, rank, &guards, findings);
                        let end_kind = classify_scope(
                            toks,
                            stmt_start,
                            i,
                            depth,
                            stmt_depth,
                            pending_construct,
                        );
                        guards.push(Guard {
                            name: binding_name(toks, stmt_start, &end_kind),
                            lock,
                            rank,
                            end: end_kind,
                        });
                        i += 5;
                        continue;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn ranked(name: &str) -> Option<(&'static str, u32)> {
    RANKED
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(n, _, r)| (n, r))
}

fn report_violations(
    path: &str,
    model: &Model,
    line: u32,
    lock: &str,
    rank: u32,
    guards: &[Guard],
    findings: &mut Vec<Finding>,
) {
    for g in guards {
        let message = if g.rank > rank {
            format!(
                "upward lock acquisition: `{lock}` (rank {rank}) acquired while `{}` (rank {}) \
                 is held — the ladder runs tx → catalog → wal_sync → wal_buf → stats/plans",
                g.lock, g.rank
            )
        } else if g.rank == rank && g.lock == lock {
            format!(
                "nested acquisition of `{lock}`: re-entering the same lock on one thread \
                 self-deadlocks"
            )
        } else if g.rank == rank {
            format!(
                "leaf `{}` held across acquisition of `{lock}`: leaf mutexes are taken alone, \
                 never nested",
                g.lock
            )
        } else {
            continue;
        };
        findings.push(Finding {
            rule: "ladder".into(),
            file: path.to_string(),
            line,
            snippet: model.snippet(line),
            message,
        });
    }
}

/// Decide the guard's scope from the shape of the current statement.
fn classify_scope(
    toks: &[crate::lexer::Token],
    stmt_start: usize,
    event: usize,
    depth: usize,
    stmt_depth: usize,
    pending_construct: Option<usize>,
) -> End {
    if let Some(d) = pending_construct {
        // Inside a construct header: the scrutinee temporary lives
        // through the construct's body (depth d + 1 closes at d).
        return End::Construct(d + 1);
    }
    // `let <pat> = <pure lock expr> ;` binds the guard for the block.
    // "Pure" means: nothing but a path between `=` and the lock call,
    // and the call's `()` is immediately followed by `;` — otherwise
    // (`.get(k)` chains, call arguments) the guard is a temporary that
    // dies with the statement.
    if matches!(toks.get(stmt_start).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "let") {
        let eq = (stmt_start..event).find(|&j| toks[j].tok == Tok::Punct('='));
        if let Some(eq) = eq {
            let pure_prefix = (eq + 1..event).all(|j| {
                matches!(&toks[j].tok, Tok::Punct('.')) || matches!(&toks[j].tok, Tok::Ident(_))
            });
            let ends_stmt = matches!(toks.get(event + 5).map(|t| &t.tok), Some(Tok::Punct(';')));
            if pure_prefix && ends_stmt {
                return End::Block(depth);
            }
        }
    }
    let _ = stmt_depth;
    End::Stmt(depth)
}

/// The binding name for a block-scoped guard (`let mut <name> = …`).
fn binding_name(toks: &[crate::lexer::Token], stmt_start: usize, end: &End) -> Option<String> {
    if !matches!(end, End::Block(_)) {
        return None;
    }
    let mut j = stmt_start + 1; // past `let`
    while let Some(Tok::Ident(w)) = toks.get(j).map(|t| &t.tok) {
        if w == "mut" {
            j += 1;
            continue;
        }
        return Some(w.clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(body: &str) -> Vec<Finding> {
        let src = format!("impl Database {{ fn f(&self) {{ {body} }} }}");
        let model = Model::build(&src);
        check("crates/sdm-metadb/src/db.rs", &model)
    }

    #[test]
    fn sequential_temporaries_pass() {
        assert!(
            run("self.stats.lock().n += 1; self.plans.lock().insert(k); \
                     let c = self.catalog.read(); drop(c); self.tx.lock().take();")
            .is_empty()
        );
    }

    #[test]
    fn downward_nesting_passes() {
        assert!(run("let mut tx = self.tx.lock(); \
                     let mut catalog = self.catalog.write(); \
                     drop(catalog); drop(tx); self.stats.lock().merge();")
        .is_empty());
    }

    #[test]
    fn upward_acquisition_is_flagged() {
        let f = run("let c = self.catalog.write(); let t = self.tx.lock();");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("upward"));
    }

    #[test]
    fn same_rwlock_reentry_is_flagged() {
        let f = run("let a = self.catalog.read(); let b = self.catalog.read();");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("nested acquisition"));
    }

    #[test]
    fn leaf_across_leaf_is_flagged() {
        let f = run("let s = self.stats.lock(); self.plans.lock().get(k);");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("taken alone"));
    }

    #[test]
    fn early_drop_releases() {
        assert!(run("let s = self.stats.lock(); drop(s); let c = self.catalog.read();").is_empty());
    }

    #[test]
    fn block_scope_releases_at_close() {
        assert!(run("{ let c = self.catalog.write(); } let t = self.tx.lock();").is_empty());
    }

    #[test]
    fn statement_temp_dies_at_semicolon() {
        assert!(run("self.stats.lock().n += 1; let c = self.catalog.read();").is_empty());
    }

    #[test]
    fn if_let_scrutinee_lives_through_body() {
        let f = run("if let Some(x) = self.plans.lock().get(k) { self.stats.lock().hits += 1; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("taken alone"));
    }

    #[test]
    fn if_let_scrutinee_dies_after_construct() {
        assert!(
            run("if let Some(x) = self.plans.lock().get(k) { use_it(x); } \
                 self.stats.lock().hits += 1;")
            .is_empty()
        );
    }

    #[test]
    fn else_chain_extends_scrutinee() {
        let f = run("if let Some(x) = self.plans.lock().get(k) { a(); } \
                     else { self.stats.lock().miss += 1; }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn impure_let_rhs_is_statement_temp() {
        // The guard in `let cached = self.plans.lock().get(k);` dies at
        // the `;` — the binding holds the *result*, not the guard.
        assert!(run("let cached = self.plans.lock().get(k); self.stats.lock().n += 1;").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)] mod tests { fn t(&self) { let s = self.stats.lock(); \
                   self.tx.lock(); } }";
        let model = Model::build(src);
        assert!(check("crates/sdm-metadb/src/db.rs", &model).is_empty());
    }

    #[test]
    fn wal_sync_then_wal_buf_is_downward() {
        // The group-commit leader: drain the buffer while holding the
        // sync tail — rank 24 then 26, strictly increasing.
        assert!(run("let mut tail = self.wal_sync.lock(); \
                     let mut b = self.wal_buf.lock(); \
                     drop(b); drop(tail);")
        .is_empty());
    }

    #[test]
    fn wal_buf_then_wal_sync_is_flagged() {
        let f = run("let b = self.wal_buf.lock(); let t = self.wal_sync.lock();");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("upward"));
    }

    #[test]
    fn wal_sync_under_catalog_is_downward() {
        // Appending redo under the catalog write lock is legal: 20 → 24.
        assert!(run("let c = self.catalog.write(); let t = self.wal_sync.lock();").is_empty());
    }

    #[test]
    fn downward_into_catalog_while_tx_held_passes() {
        assert!(run("let mut tx = self.tx.lock(); \
                     let n = state.undo.rollback(&mut self.catalog.write()); \
                     drop(tx);")
        .is_empty());
    }
}
