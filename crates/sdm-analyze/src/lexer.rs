//! A minimal Rust token scanner.
//!
//! In-house and dependency-free, in the same spirit as `sdm-metadb`'s
//! `sql/lexer.rs`: the rules below need token streams with line numbers
//! — identifiers, string literals, punctuation — not a full grammar.
//! Comments are stripped here, but not before being mined for
//! `analyze:allow(rule: reason)` suppression directives.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// Lifetime (`'a`), kept distinct so it never looks like a char.
    Lifetime(String),
    /// String literal content (plain, raw, or byte form).
    Str(String),
    /// Character or byte-character literal.
    Char,
    /// Numeric literal (value not interpreted).
    Num,
    /// Any other single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A suppression directive mined from a comment:
/// `// analyze:allow(rule: reason)`. A directive with an empty reason is
/// **not** honored — the justification is the point — so it is simply
/// never recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// The rule id being suppressed.
    pub rule: String,
    /// The (non-empty) justification.
    pub reason: String,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Suppression directives found in comments.
    pub allows: Vec<Allow>,
}

/// Scan `source` into tokens and allow-directives. The scanner is total:
/// unterminated literals simply end at EOF rather than erroring, since a
/// lint must never be the thing that fails to parse the tree it guards
/// (rustc will reject genuinely malformed files on its own).
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                // Doc comments (`///`, `//!`) are prose — they *mention*
                // the directive syntax without enacting it.
                if !text.starts_with("///") && !text.starts_with("//!") {
                    mine_allows(text, line, &mut out.allows);
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                if !text.starts_with("/**") && !text.starts_with("/*!") {
                    mine_allows(text, start_line, &mut out.allows);
                }
            }
            '"' => {
                let (s, ni, nl) = lex_plain_string(source, i, line);
                out.tokens.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime or char literal. `'\...'` and `'x'` are
                // chars; `'ident` with no closing quote is a lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    i = skip_char_literal(b, i);
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i += 3;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime(source[start..j].to_string()),
                        line,
                    });
                    i = j;
                }
            }
            '0'..='9' => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // A fraction continues the number only when a digit
                // follows the dot (so `1..n` and `1.method()` survive).
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &source[start..i];
                // String-literal prefixes: r"", r#""#, b"", br#""#, b''.
                // `r#` is ambiguous: `r#"…"#` is a raw string, `r#type`
                // a raw identifier — peek past the `#`s for a quote.
                let raw_string_follows = i < b.len()
                    && (b[i] == b'"' || {
                        let mut j = i;
                        while j < b.len() && b[j] == b'#' {
                            j += 1;
                        }
                        j > i && j < b.len() && b[j] == b'"'
                    });
                if (ident == "r" || ident == "br") && raw_string_follows {
                    let (s, ni, nl) = lex_raw_string(source, i, line);
                    out.tokens.push(Token {
                        tok: Tok::Str(s),
                        line,
                    });
                    i = ni;
                    line = nl;
                } else if ident == "b" && i < b.len() && b[i] == b'"' {
                    let (s, ni, nl) = lex_plain_string(source, i, line);
                    out.tokens.push(Token {
                        tok: Tok::Str(s),
                        line,
                    });
                    i = ni;
                    line = nl;
                } else if ident == "b" && i < b.len() && b[i] == b'\'' {
                    i = skip_char_literal(b, i);
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                } else if ident == "r"
                    && i + 1 < b.len()
                    && b[i] == b'#'
                    && is_ident_start(b[i + 1])
                {
                    // Raw identifier `r#ident`: store without the prefix.
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Ident(source[start..i].to_string()),
                        line,
                    });
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Ident(ident.to_string()),
                        line,
                    });
                }
            }
            other => {
                out.tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

/// Lex a `"..."` literal starting at the opening quote; returns the
/// content, the index past the closing quote, and the updated line.
fn lex_plain_string(source: &str, start: usize, mut line: u32) -> (String, usize, u32) {
    let b = source.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'"' => return (s, i + 1, line),
            b'\\' => {
                // Keep the common escapes literal enough for prefix
                // checks; exotic ones degrade to their raw char.
                if i + 1 < b.len() {
                    match b[i + 1] {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'0' => s.push('\0'),
                        b'\n' => line += 1, // line-continuation escape
                        c => s.push(c as char),
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            b'\n' => {
                line += 1;
                s.push('\n');
                i += 1;
            }
            c => {
                s.push(c as char);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Lex a raw string starting at the `#`s or quote (the `r`/`br` prefix
/// is already consumed); no escapes, closed by `"` plus the same number
/// of `#`s.
fn lex_raw_string(source: &str, start: usize, mut line: u32) -> (String, usize, u32) {
    let b = source.as_bytes();
    let mut i = start;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    let content_start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"'
            && b.len() - (i + 1) >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
        {
            let content = source[content_start..i].to_string();
            return (content, i + 1 + hashes, line);
        }
        i += 1;
    }
    (source[content_start..i].to_string(), i, line)
}

/// Skip a (possibly escaped) char literal starting at the quote.
fn skip_char_literal(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if i < b.len() && b[i] == b'\\' {
        i += 1;
        if i < b.len() && b[i] == b'u' {
            // \u{...}
            while i < b.len() && b[i] != b'}' && b[i] != b'\'' {
                i += 1;
            }
        } else if i < b.len() && b[i] == b'x' {
            i += 2;
        }
        i += 1;
    } else {
        i += 1;
    }
    while i < b.len() && b[i] != b'\'' {
        i += 1;
    }
    i + 1
}

/// Scan a comment's text for `analyze:allow(rule: reason)` directives.
fn mine_allows(comment: &str, line: u32, out: &mut Vec<Allow>) {
    const MARK: &str = "analyze:allow(";
    let mut rest = comment;
    while let Some(pos) = rest.find(MARK) {
        let after = &rest[pos + MARK.len()..];
        // The reason runs to the *last* close paren so it can itself
        // mention calls, e.g. a reason of `begin() reserved the bytes`.
        if let Some(close) = after.rfind(')') {
            let inner = &after[..close];
            if let Some((rule, reason)) = inner.split_once(':') {
                let (rule, reason) = (rule.trim(), reason.trim());
                if !rule.is_empty() && !reason.is_empty() {
                    out.push(Allow {
                        line,
                        rule: rule.to_string(),
                        reason: reason.to_string(),
                    });
                }
            }
            rest = &after[close..];
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_stripped_strings_kept() {
        let l = lex("let x = \"SELECT 1\"; // let y = \"INSERT INTO t\"");
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["SELECT 1"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Lifetime("a".into())));
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::Char).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r####"let a = r#"UPDATE "x""#; let b = b"bytes";"####);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["UPDATE \"x\"", "bytes"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let l = lex(r#""a\"b""#);
        assert_eq!(l.tokens[0].tok, Tok::Str("a\"b".into()));
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n  c");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn raw_idents_lose_prefix() {
        assert_eq!(idents("r#type"), vec!["type"]);
    }

    #[test]
    fn allow_directives_need_rule_and_reason() {
        let l = lex("// analyze:allow(unwrap: slot checked above)\n\
             // analyze:allow(unwrap)\n\
             /* analyze:allow(ladder: fixture) */");
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].rule, "unwrap");
        assert_eq!(l.allows[0].line, 1);
        assert_eq!(l.allows[1].rule, "ladder");
        assert_eq!(l.allows[1].line, 3);
    }

    #[test]
    fn allow_reasons_may_contain_parens() {
        let l = lex("// analyze:allow(panic-under-guard: begin() reserved 8 bytes at `at`)");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].reason, "begin() reserved 8 bytes at `at`");
    }

    #[test]
    fn doc_comments_are_not_mined_for_allows() {
        let l = lex("/// justified behind `// analyze:allow(unwrap: why)`\n\
             //! see analyze:allow(ladder: reasons) for details\n\
             /** analyze:allow(unwrap: prose) */\n\
             // analyze:allow(unwrap: the real one)");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].line, 4);
        assert_eq!(l.allows[0].reason, "the real one");
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ ident");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].tok, Tok::Ident("ident".into()));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let l = lex("1..2 3.max(4) 5.5");
        let nums = l.tokens.iter().filter(|t| t.tok == Tok::Num).count();
        assert_eq!(nums, 5); // 1, 2, 3, 4, 5.5
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Ident("max".into())));
    }
}
