//! Call-graph extraction: every workspace fn, its body as an event
//! stream, and call sites resolved to candidate definitions.
//!
//! This is the structural half of the interprocedural analyzer. For each
//! non-test function body the **event walker** ([`walk_body`]) replays
//! the guard-scope model the `ladder` rule established (named bindings,
//! statement temporaries, `if let`/`match` scrutinee temporaries, early
//! `drop`s) and emits a flat stream of [`Event`]s — ranked lock
//! acquisitions, calls, and potential panic sites — each carrying a
//! snapshot of the guards held at that point. [`Callgraph::build`] then
//! resolves every call event to candidate [`FnNode`]s by name.
//!
//! Resolution is deliberately conservative (this is a lint over tokens,
//! not a type checker). Call sites resolve through tiers, taking the
//! first non-empty one and keeping **every** candidate in it:
//!
//! * `self.method(…)` — methods of the caller's own `impl` owner;
//! * `Type::method(…)` — methods whose impl owner is exactly `Type`
//!   (`Self::` uses the caller's owner);
//! * `module::func(…)` (lowercase head) — free fns in the file named
//!   after the module (`exec::execute_mutation` → `exec.rs`); paths
//!   with no matching in-tree file (`std`'s `fs::write`, `mem::take`)
//!   resolve to nothing;
//! * bare `.method(…)` / `free(…)` — same file, then same crate, then
//!   the whole workspace.
//!
//! Ambiguity therefore over-approximates: an effect attributed to any
//! candidate is attributed to the call. That errs toward false
//! positives, which suits a lint whose findings can be justified with
//! `analyze:allow`; the tiering keeps the noise down by preferring the
//! nearest definitions.

use crate::lexer::{Tok, Token};
use crate::scopes::Model;

/// The ranked locks: field name, methods that acquire them, rank. The
/// ranks come from the workspace-wide `sdm_ranks` registry the
/// `parking_lot` shim's runtime checker shares.
pub const RANKED: &[(&str, &[&str], u32)] = &[
    ("tx", &["lock"], sdm_ranks::TX),
    ("catalog", &["read", "write"], sdm_ranks::CATALOG),
    ("wal_sync", &["lock"], sdm_ranks::WAL_SYNC),
    ("wal_buf", &["lock"], sdm_ranks::WAL_BUF),
    ("stats", &["lock"], sdm_ranks::LEAF),
    ("plans", &["lock"], sdm_ranks::LEAF),
];

/// Look up a ranked lock by field name.
pub fn ranked(name: &str) -> Option<(&'static str, u32)> {
    RANKED
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(n, _, r)| (n, r))
}

/// A guard held at an event: which lock, its rank, and whether it is
/// exclusive (`.write()` / `.lock()` — everything but `.read()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Held {
    /// Ranked lock field name (`catalog`, `stats`, …).
    pub lock: &'static str,
    /// Ladder rank from the `sdm_ranks` registry.
    pub rank: u32,
    /// Exclusive acquisition (write guard or mutex).
    pub write: bool,
}

/// A call site found in a body.
#[derive(Debug, Clone)]
pub struct CallEv {
    /// Callee name as written.
    pub name: String,
    /// The path segment directly before `::name(`, if any
    /// (`Wal::sync_to` → `Wal`, `fs::write` → `fs`).
    pub qual: Option<String>,
    /// Whether the call is a method call (`recv.name(…)`).
    pub method: bool,
    /// Whether the receiver is a plain `self.`.
    pub recv_self: bool,
    /// Ranked acquisitions inside the argument list — an argument
    /// temporary like `rollback(&mut self.catalog.write())` holds its
    /// guard across the whole call.
    pub arg_acquires: Vec<Held>,
    /// Candidate callees (indexes into [`Callgraph::fns`]), filled in by
    /// resolution.
    pub callees: Vec<usize>,
}

/// What happened at an event site.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A ranked lock acquisition.
    Acquire {
        /// Lock field name.
        lock: &'static str,
        /// Ladder rank.
        rank: u32,
        /// Exclusive acquisition.
        write: bool,
    },
    /// A call.
    Call(CallEv),
    /// A potential panic site: `.unwrap()`, `.expect("…")`, a panicking
    /// macro, or slice/map indexing.
    Panic {
        /// Human-readable site description (`.unwrap()`,
        /// `unreachable!(…)`, `indexing (`buf[…]`)`).
        what: String,
        /// Whether this is a plain indexing expression (exemptable per
        /// file: the slot-resolved engine core indexes by construction).
        index: bool,
    },
}

/// One body event with the guards held when it fires.
#[derive(Debug, Clone)]
pub struct Event {
    /// 1-based source line.
    pub line: u32,
    /// Guards held at this point (acquisition events exclude
    /// themselves).
    pub held: Vec<Held>,
    /// The event.
    pub kind: EventKind,
}

/// How long a guard lives.
#[derive(Debug, Clone, Copy, PartialEq)]
enum End {
    /// Named binding: until its block closes (depth falls below).
    Block(usize),
    /// Statement temporary: until the `;` at this depth (or block end).
    Stmt(usize),
    /// `if let`/`match`/`while` scrutinee temporary: until the construct
    /// whose body opened at this depth closes (tracking `else` chains).
    Construct(usize),
}

#[derive(Debug)]
struct Guard {
    name: Option<String>,
    lock: &'static str,
    rank: u32,
    write: bool,
    end: End,
}

/// Keywords that can be directly followed by `(` without being calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "move", "mut", "ref", "await", "yield", "unsafe", "where", "impl", "dyn", "fn", "use",
    "pub", "mod", "box",
];

/// Macros whose invocation is a panic site.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names owned by the std prelude: iterator adapters,
/// `Option`/`Result` combinators, slice/str methods. An unqualified
/// `.filter(…)` or `.take(…)` on an arbitrary receiver is almost always
/// the prelude method, not a workspace method that happens to share the
/// name — resolving it at *any* tier stitches iterator pipelines into
/// the call graph as phantom edges. (A workspace method with one of
/// these names can still be reached via `self.` with a matching owner
/// or an explicit `Type::name(…)` qualifier.)
const PRELUDE_METHODS: &[&str] = &[
    "filter",
    "map",
    "take",
    "skip",
    "zip",
    "rev",
    "fold",
    "find",
    "position",
    "count",
    "sum",
    "all",
    "any",
    "collect",
    "extend",
    "last",
    "chain",
    "flatten",
    "flat_map",
    "take_while",
    "skip_while",
    "enumerate",
    "cloned",
    "copied",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "map_err",
    "map_or",
    "as_ref",
    "as_mut",
    "as_deref",
    "as_str",
    "as_bytes",
    "to_vec",
    "to_string",
    "into_iter",
    "chars",
    "bytes",
    "split",
    "rsplit",
    "join",
    "trim",
    "starts_with",
    "ends_with",
    "parse",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "binary_search",
    "retain",
    "truncate",
    "resize",
    "swap",
    "replace",
];

/// Method/function names too generic to resolve at the *workspace* tier
/// (cross-crate, last resort). Within a file or a crate these resolve
/// normally; across crate boundaries, with no type information, a
/// `.get(…)` or `.wait(…)` matching some unrelated subsystem's method
/// would fabricate call chains between components that never touch.
const WORKSPACE_OPAQUE: &[&str] = &[
    "get", "set", "len", "read", "write", "open", "close", "create", "new", "wait", "notify",
    "push", "pop", "insert", "remove", "clear", "next", "peek", "expect", "run", "sync", "flush",
    "entry", "append", "merge", "apply", "reset", "load", "store", "tick", "lookup", "init",
    "build", "contains", "is_empty", "iter", "clone", "fmt", "eq", "hash", "default", "drain",
    "send", "recv", "start", "stop", "add", "put", "name", "id", "key", "value",
];

/// Walk one fn body `[start, end)`, emitting events with held-guard
/// snapshots. The guard-scope model matches the `ladder` rule's
/// documentation: named `let` bindings of a pure lock expression live to
/// the end of their block (or an explicit `drop(name)`), other guards
/// are statement temporaries, and construct-scrutinee temporaries live
/// through the construct including its `else` chain.
pub fn walk_body(toks: &[Token], start: usize, end: usize, sink: &mut dyn FnMut(Event)) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = start;
    let mut stmt_depth = 0usize;
    // A construct keyword (`if`/`match`/`while`/`for`) seen at `depth`,
    // whose `{` has not been consumed yet.
    let mut pending_construct: Option<usize> = None;
    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                pending_construct = None;
                stmt_start = i + 1;
                stmt_depth = depth;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| match g.end {
                    End::Block(d) | End::Stmt(d) => d <= depth,
                    End::Construct(d) => {
                        // The construct's body closed when depth falls
                        // below d; keep alive through an `else` chain.
                        if depth < d {
                            matches!(toks.get(i + 1).map(|t| &t.tok),
                                     Some(Tok::Ident(w)) if w == "else")
                        } else {
                            true
                        }
                    }
                });
                stmt_start = i + 1;
                stmt_depth = depth;
            }
            Tok::Punct(';') => {
                guards.retain(|g| !matches!(g.end, End::Stmt(d) if d >= depth));
                stmt_start = i + 1;
                stmt_depth = depth;
            }
            Tok::Ident(w) if matches!(w.as_str(), "if" | "match" | "while" | "for") => {
                pending_construct = Some(depth);
            }
            // `drop(name)` — early release of a named guard.
            Tok::Ident(w) if w == "drop" => {
                if let (Some(Tok::Punct('(')), Some(Tok::Ident(name)), Some(Tok::Punct(')'))) = (
                    toks.get(i + 1).map(|t| &t.tok),
                    toks.get(i + 2).map(|t| &t.tok),
                    toks.get(i + 3).map(|t| &t.tok),
                ) {
                    if let Some(pos) = guards
                        .iter()
                        .rposition(|g| g.name.as_deref() == Some(name.as_str()))
                    {
                        guards.remove(pos);
                    }
                }
            }
            Tok::Ident(obj) => {
                // Acquisition: `<name> . <method> ( )`.
                if let Some((lock, rank)) = ranked(obj) {
                    let method = match toks.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(m)) => Some(m.as_str()),
                        _ => None,
                    };
                    let is_acq = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.')))
                        && method.is_some_and(|m| {
                            RANKED
                                .iter()
                                .any(|(n, ms, _)| *n == lock && ms.contains(&m))
                        })
                        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct(')')));
                    if is_acq {
                        let write = method != Some("read");
                        sink(Event {
                            line: toks[i].line,
                            held: snapshot(&guards),
                            kind: EventKind::Acquire { lock, rank, write },
                        });
                        let end_kind = classify_scope(
                            toks,
                            stmt_start,
                            i,
                            depth,
                            stmt_depth,
                            pending_construct,
                        );
                        guards.push(Guard {
                            name: binding_name(toks, stmt_start, &end_kind),
                            lock,
                            rank,
                            write,
                            end: end_kind,
                        });
                        i += 5;
                        continue;
                    }
                }
                // Panic macro: `name!(…)` / `name![…]`.
                if PANIC_MACROS.contains(&obj.as_str())
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                {
                    sink(Event {
                        line: toks[i].line,
                        held: snapshot(&guards),
                        kind: EventKind::Panic {
                            what: format!("{obj}!(…)"),
                            index: false,
                        },
                    });
                    i += 2;
                    continue;
                }
                // Indexing: `name[…]` can panic out of range.
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    sink(Event {
                        line: toks[i].line,
                        held: snapshot(&guards),
                        kind: EventKind::Panic {
                            what: format!("indexing (`{obj}[…]`)"),
                            index: true,
                        },
                    });
                }
                // Call: `name(…)`, skipping keywords and definitions.
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                    && !NOT_CALLS.contains(&obj.as_str())
                    && !matches!(
                        i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok),
                        Some(Tok::Ident(k)) if k == "fn"
                    )
                {
                    let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok);
                    let method = matches!(prev, Some(Tok::Punct('.')));
                    let qual = if !method
                        && matches!(prev, Some(Tok::Punct(':')))
                        && matches!(
                            i.checked_sub(2).and_then(|p| toks.get(p)).map(|t| &t.tok),
                            Some(Tok::Punct(':'))
                        ) {
                        match i.checked_sub(3).and_then(|p| toks.get(p)).map(|t| &t.tok) {
                            Some(Tok::Ident(q)) => Some(q.clone()),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let recv_self = method
                        && matches!(
                            i.checked_sub(2).and_then(|p| toks.get(p)).map(|t| &t.tok),
                            Some(Tok::Ident(s)) if s == "self"
                        )
                        && !matches!(
                            i.checked_sub(3).and_then(|p| toks.get(p)).map(|t| &t.tok),
                            Some(Tok::Punct('.' | ')' | ']'))
                        );
                    let close = matching_paren(toks, i + 1, end);
                    // `.unwrap()` / `.expect("…")` are panic sites, not
                    // calls worth edges.
                    let is_unwrap = method && obj == "unwrap" && close == i + 2;
                    let is_expect = method
                        && obj == "expect"
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Str(_)));
                    if is_unwrap || is_expect {
                        sink(Event {
                            line: toks[i].line,
                            held: snapshot(&guards),
                            kind: EventKind::Panic {
                                what: format!(".{obj}(…)"),
                                index: false,
                            },
                        });
                    } else {
                        sink(Event {
                            line: toks[i].line,
                            held: snapshot(&guards),
                            kind: EventKind::Call(CallEv {
                                name: obj.clone(),
                                qual,
                                method,
                                recv_self,
                                arg_acquires: arg_acquisitions(toks, i + 1, close),
                                callees: Vec::new(),
                            }),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// The held-set snapshot attached to an event.
fn snapshot(guards: &[Guard]) -> Vec<Held> {
    guards
        .iter()
        .map(|g| Held {
            lock: g.lock,
            rank: g.rank,
            write: g.write,
        })
        .collect()
}

/// Index of the `)` matching the `(` at `open` (or `end` if unmatched).
fn matching_paren(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end
}

/// Ranked acquisitions inside a call's argument range `(open, close)`:
/// these guards are argument temporaries held across the call itself.
fn arg_acquisitions(toks: &[Token], open: usize, close: usize) -> Vec<Held> {
    let mut out = Vec::new();
    let mut j = open;
    while j + 4 < close {
        if let Tok::Ident(obj) = &toks[j].tok {
            if let Some((lock, rank)) = ranked(obj) {
                let method = match toks.get(j + 2).map(|t| &t.tok) {
                    Some(Tok::Ident(m)) => Some(m.as_str()),
                    _ => None,
                };
                let is_acq = matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('.')))
                    && method.is_some_and(|m| {
                        RANKED
                            .iter()
                            .any(|(n, ms, _)| *n == lock && ms.contains(&m))
                    })
                    && matches!(toks.get(j + 3).map(|t| &t.tok), Some(Tok::Punct('(')))
                    && matches!(toks.get(j + 4).map(|t| &t.tok), Some(Tok::Punct(')')));
                if is_acq {
                    out.push(Held {
                        lock,
                        rank,
                        write: method != Some("read"),
                    });
                    j += 5;
                    continue;
                }
            }
        }
        j += 1;
    }
    out
}

/// Decide the guard's scope from the shape of the current statement.
fn classify_scope(
    toks: &[Token],
    stmt_start: usize,
    event: usize,
    depth: usize,
    stmt_depth: usize,
    pending_construct: Option<usize>,
) -> End {
    if let Some(d) = pending_construct {
        // Inside a construct header: the scrutinee temporary lives
        // through the construct's body (depth d + 1 closes at d).
        return End::Construct(d + 1);
    }
    // `let <pat> = <pure lock expr> ;` binds the guard for the block.
    // "Pure" means: nothing but a path between `=` and the lock call,
    // and the call's `()` is immediately followed by `;` — otherwise
    // (`.get(k)` chains, call arguments) the guard is a temporary that
    // dies with the statement.
    if matches!(toks.get(stmt_start).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "let") {
        let eq = (stmt_start..event).find(|&j| toks[j].tok == Tok::Punct('='));
        if let Some(eq) = eq {
            let pure_prefix = (eq + 1..event).all(|j| {
                matches!(&toks[j].tok, Tok::Punct('.')) || matches!(&toks[j].tok, Tok::Ident(_))
            });
            let ends_stmt = matches!(toks.get(event + 5).map(|t| &t.tok), Some(Tok::Punct(';')));
            if pure_prefix && ends_stmt {
                return End::Block(depth);
            }
        }
    }
    let _ = stmt_depth;
    End::Stmt(depth)
}

/// The binding name for a block-scoped guard (`let mut <name> = …`).
fn binding_name(toks: &[Token], stmt_start: usize, end: &End) -> Option<String> {
    if !matches!(end, End::Block(_)) {
        return None;
    }
    let mut j = stmt_start + 1; // past `let`
    while let Some(Tok::Ident(w)) = toks.get(j).map(|t| &t.tok) {
        if w == "mut" {
            j += 1;
            continue;
        }
        return Some(w.clone());
    }
    None
}

// ------------------------------------------------------------------ callgraph

/// One workspace function in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Impl-block owner (`Database` for `impl Database` methods).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Test code (excluded from bodies and from resolution candidates).
    pub is_test: bool,
    /// `&mut Catalog` appears in the signature (not `&mut self`).
    pub has_mut_catalog: bool,
    /// `UndoLog` appears in the signature.
    pub has_undo: bool,
    /// Body events, in source order; empty for test fns and bodyless
    /// declarations.
    pub events: Vec<Event>,
}

impl FnNode {
    /// Impl-qualified display name (`Database::checkpoint`, or the bare
    /// name for free fns).
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Callgraph {
    /// Repo-relative file paths, parallel to the models it was built
    /// from.
    pub files: Vec<String>,
    /// Every fn in the workspace, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// Total resolved call edges (sum of candidate sets).
    pub call_edges: usize,
}

impl Callgraph {
    /// Build the graph over a set of files and resolve every call site.
    pub fn build(files: &[(String, Model)]) -> Callgraph {
        let mut fns = Vec::new();
        for (fi, (_path, model)) in files.iter().enumerate() {
            for f in &model.fns {
                let sig = &model.tokens[f.sig.0..f.sig.1.min(model.tokens.len())];
                let has_mut_catalog = sig.windows(3).any(|w| {
                    matches!(&w[0].tok, Tok::Punct('&'))
                        && matches!(&w[1].tok, Tok::Ident(m) if m == "mut")
                        && matches!(&w[2].tok, Tok::Ident(c) if c == "Catalog")
                });
                let has_undo = sig
                    .iter()
                    .any(|t| matches!(&t.tok, Tok::Ident(u) if u == "UndoLog"));
                let mut events = Vec::new();
                if !f.is_test {
                    if let Some((start, end)) = f.body {
                        walk_body(&model.tokens, start, end, &mut |e| events.push(e));
                    }
                }
                fns.push(FnNode {
                    file: fi,
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    line: f.line,
                    is_test: f.is_test,
                    has_mut_catalog,
                    has_undo,
                    events,
                });
            }
        }
        let mut cg = Callgraph {
            files: files.iter().map(|(p, _)| p.clone()).collect(),
            fns,
            call_edges: 0,
        };
        cg.resolve_calls();
        cg
    }

    /// Fill in `CallEv::callees` for every call site.
    fn resolve_calls(&mut self) {
        // Candidate index: non-test fns only (test helpers never shadow
        // library definitions), and nothing from `crates/shims/` — the
        // shims stand in for external crates, so a name colliding with
        // one of theirs (`serde_json`'s `Parser::expect` vs the SQL
        // grammar's) must not leak shim bodies into workspace chains.
        let candidates: Vec<usize> = (0..self.fns.len())
            .filter(|&i| {
                !self.fns[i].is_test && !self.files[self.fns[i].file].starts_with("crates/shims/")
            })
            .collect();
        let stem_of = |path: &str| -> String {
            let parts: Vec<&str> = path.split('/').collect();
            let last = parts.last().copied().unwrap_or("");
            let base = last.strip_suffix(".rs").unwrap_or(last);
            if base == "mod" || base == "lib" || base == "main" {
                parts
                    .len()
                    .checked_sub(2)
                    .and_then(|i| parts.get(i))
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| base.to_string())
            } else {
                base.to_string()
            }
        };
        let crate_of = |path: &str| -> String {
            let mut it = path.split('/');
            match (it.next(), it.next(), it.next()) {
                (Some("crates"), Some("shims"), Some(c)) => format!("shims/{c}"),
                (Some("crates"), Some(c), _) => c.to_string(),
                _ => "root".to_string(),
            }
        };
        let file_stems: Vec<String> = self.files.iter().map(|p| stem_of(p)).collect();
        let file_crates: Vec<String> = self.files.iter().map(|p| crate_of(p)).collect();

        let mut edges = 0usize;
        for caller in 0..self.fns.len() {
            let caller_file = self.fns[caller].file;
            let caller_owner = self.fns[caller].owner.clone();
            // Split borrow: take the events out, resolve, put back.
            let mut events = std::mem::take(&mut self.fns[caller].events);
            for ev in &mut events {
                let EventKind::Call(call) = &mut ev.kind else {
                    continue;
                };
                let named: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].name == call.name)
                    .collect();
                let resolved: Vec<usize> = match &call.qual {
                    Some(q) if q == "Self" || q == "self" => {
                        // `Self::assoc(…)` / `self::free(…)`.
                        match &caller_owner {
                            Some(o) if q == "Self" => named
                                .iter()
                                .copied()
                                .filter(|&i| self.fns[i].owner.as_deref() == Some(o))
                                .collect(),
                            _ => named
                                .iter()
                                .copied()
                                .filter(|&i| {
                                    self.fns[i].file == caller_file && self.fns[i].owner.is_none()
                                })
                                .collect(),
                        }
                    }
                    Some(q) if q.chars().next().is_some_and(|c| c.is_uppercase()) => {
                        // `Type::method(…)`: exact owner match.
                        named
                            .iter()
                            .copied()
                            .filter(|&i| self.fns[i].owner.as_deref() == Some(q.as_str()))
                            .collect()
                    }
                    Some(q) => {
                        // `module::func(…)`: free fns in the module's
                        // file; no in-tree file means `std` (no edge).
                        named
                            .iter()
                            .copied()
                            .filter(|&i| {
                                self.fns[i].owner.is_none() && file_stems[self.fns[i].file] == *q
                            })
                            .collect()
                    }
                    None => {
                        // Owner tier for `self.method(…)`, then
                        // file → crate → workspace among the right kind.
                        if call.recv_self {
                            if let Some(o) = &caller_owner {
                                let own: Vec<usize> = named
                                    .iter()
                                    .copied()
                                    .filter(|&i| self.fns[i].owner.as_deref() == Some(o.as_str()))
                                    .collect();
                                if !own.is_empty() {
                                    call.callees = own;
                                    edges += call.callees.len();
                                    continue;
                                }
                            }
                        }
                        if call.method && PRELUDE_METHODS.contains(&call.name.as_str()) {
                            // A prelude-shadowed adapter name on a
                            // non-`self` receiver (or one the owner tier
                            // above could not claim): treat as std.
                            call.callees = Vec::new();
                            continue;
                        }
                        let kind_ok = |i: usize| -> bool {
                            if call.method {
                                self.fns[i].owner.is_some()
                            } else {
                                self.fns[i].owner.is_none()
                            }
                        };
                        let same_file: Vec<usize> = named
                            .iter()
                            .copied()
                            .filter(|&i| kind_ok(i) && self.fns[i].file == caller_file)
                            .collect();
                        if !same_file.is_empty() {
                            same_file
                        } else {
                            let same_crate: Vec<usize> = named
                                .iter()
                                .copied()
                                .filter(|&i| {
                                    kind_ok(i)
                                        && file_crates[self.fns[i].file] == file_crates[caller_file]
                                })
                                .collect();
                            if !same_crate.is_empty() {
                                same_crate
                            } else if WORKSPACE_OPAQUE.contains(&call.name.as_str()) {
                                // A name this generic crossing a crate
                                // boundary is almost never the workspace
                                // definition (`.wait()` on a condvar,
                                // `.get()` on a map); resolving it would
                                // wire unrelated subsystems together.
                                Vec::new()
                            } else {
                                let ws: Vec<usize> =
                                    named.iter().copied().filter(|&i| kind_ok(i)).collect();
                                // Same reasoning for a name defined in
                                // many places: with no type information
                                // the union would be noise, not an
                                // over-approximation worth having.
                                if ws.len() > 2 {
                                    Vec::new()
                                } else {
                                    ws
                                }
                            }
                        }
                    }
                };
                call.callees = resolved;
                edges += call.callees.len();
            }
            self.fns[caller].events = events;
        }
        self.call_edges = edges;
    }

    /// Number of non-test fns (the denominator CI prints).
    pub fn analyzed_fns(&self) -> usize {
        self.fns.iter().filter(|f| !f.is_test).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> (Vec<(String, Model)>, Callgraph) {
        let models: Vec<(String, Model)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), Model::build(s)))
            .collect();
        let cg = Callgraph::build(&models);
        (models, cg)
    }

    fn find<'a>(cg: &'a Callgraph, name: &str) -> &'a FnNode {
        cg.fns.iter().find(|f| f.name == name).unwrap()
    }

    fn callees_of(cg: &Callgraph, caller: &str, callee_name: &str) -> Vec<String> {
        find(cg, caller)
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call(c) if c.name == callee_name => Some(c),
                _ => None,
            })
            .flat_map(|c| c.callees.iter().map(|&i| cg.fns[i].qualified()))
            .collect()
    }

    #[test]
    fn self_calls_resolve_to_own_impl() {
        let (_m, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "impl Db { fn f(&self) { self.g(); } fn g(&self) {} }\n\
             impl Other { fn g(&self) {} }",
        )]);
        assert_eq!(callees_of(&cg, "f", "g"), vec!["Db::g"]);
    }

    #[test]
    fn type_qualified_calls_resolve_exactly() {
        let (_m, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "impl Wal { fn sync_to(&self) {} }\n\
             impl Db { fn f(&self) { Wal::sync_to(w); } }",
        )]);
        assert_eq!(callees_of(&cg, "f", "sync_to"), vec!["Wal::sync_to"]);
    }

    #[test]
    fn module_qualified_calls_resolve_by_file_stem() {
        let (_m, cg) = graph(&[
            ("crates/a/src/exec.rs", "pub fn run(c: &mut Catalog) {}"),
            (
                "crates/a/src/db.rs",
                "fn f() { exec::run(c); fs::write(p, b); }",
            ),
        ]);
        assert_eq!(callees_of(&cg, "f", "run"), vec!["run"]);
        // `fs` has no in-tree file: std call, no edge.
        assert!(callees_of(&cg, "f", "write").is_empty());
    }

    #[test]
    fn method_calls_tier_file_then_crate_then_workspace() {
        let (_m, cg) = graph(&[
            (
                "crates/a/src/wal.rs",
                "impl Wal { fn f(&self, s: &S) { s.append(x); } }\n\
                 impl FileStorage { fn append(&mut self) {} }",
            ),
            (
                "crates/b/src/lib.rs",
                "impl Remote { fn append(&mut self) {} }",
            ),
        ]);
        // Same-file candidate wins; the other crate's `append` is not
        // in the set.
        assert_eq!(callees_of(&cg, "f", "append"), vec!["FileStorage::append"]);
    }

    #[test]
    fn ambiguous_methods_keep_every_candidate_in_tier() {
        let (_m, cg) = graph(&[(
            "crates/a/src/storage.rs",
            "impl FileStorage { fn sync(&mut self) {} }\n\
             impl MemStorage { fn sync(&mut self) {} }\n\
             impl Wal { fn flush(&self, t: &T) { t.storage.sync(); } }",
        )]);
        let mut got = callees_of(&cg, "flush", "sync");
        got.sort();
        assert_eq!(got, vec!["FileStorage::sync", "MemStorage::sync"]);
    }

    #[test]
    fn prelude_adapter_names_never_resolve_by_name() {
        let (_m, cg) = graph(&[(
            "crates/a/src/exec.rs",
            "impl Update { fn filter(&self) {} }\n\
             impl Cursor { fn take(&mut self) {} }\n\
             impl Rel { fn f(&self, rows: &[R]) { rows.iter().filter(p); it.take(2); \
             Cursor::take(c); } }",
        )]);
        // `.filter(…)` / `.take(…)` on arbitrary receivers are the std
        // adapters, even though same-crate methods share the names…
        assert!(callees_of(&cg, "f", "filter").is_empty());
        // …but an explicit `Type::name(…)` qualifier still resolves.
        assert_eq!(callees_of(&cg, "f", "take"), vec!["Cursor::take"]);
    }

    #[test]
    fn test_fns_are_not_candidates() {
        let (_m, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "fn f() { helper(); }\n\
             #[cfg(test)] mod tests { fn helper() {} }",
        )]);
        assert!(callees_of(&cg, "f", "helper").is_empty());
    }

    #[test]
    fn arg_acquisitions_are_recorded() {
        let (_m, cg) = graph(&[(
            "crates/a/src/db.rs",
            "impl Db { fn f(&mut self) { state.undo.rollback(&mut self.catalog.write()); } }",
        )]);
        let f = find(&cg, "f");
        let call = f
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Call(c) if c.name == "rollback" => Some(c),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            call.arg_acquires,
            vec![Held {
                lock: "catalog",
                rank: sdm_ranks::CATALOG,
                write: true
            }]
        );
    }

    #[test]
    fn events_carry_held_snapshots() {
        let (_m, cg) = graph(&[(
            "crates/a/src/db.rs",
            "impl Db { fn f(&self) { let c = self.catalog.write(); self.helper(); } \
             fn helper(&self) {} }",
        )]);
        let f = find(&cg, "f");
        let call = f
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call(c) if c.name == "helper"))
            .unwrap();
        assert_eq!(
            call.held,
            vec![Held {
                lock: "catalog",
                rank: sdm_ranks::CATALOG,
                write: true
            }]
        );
    }

    #[test]
    fn unwrap_and_macros_are_panic_events() {
        let (_m, cg) = graph(&[(
            "crates/a/src/db.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); unreachable!(\"arm\"); buf[0]; }",
        )]);
        let f = find(&cg, "f");
        let panics: Vec<&str> = f
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Panic { what, .. } => Some(what.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            panics,
            vec![
                ".unwrap(…)",
                ".expect(…)",
                "unreachable!(…)",
                "indexing (`buf[…]`)"
            ]
        );
    }
}
