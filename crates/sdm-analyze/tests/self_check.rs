//! End-to-end self-tests: each rule trips on a known-bad fixture and
//! stays quiet on its known-good twin, and the real workspace analyzes
//! clean.
//!
//! Fixtures are inline strings, not files on disk — a standalone `.rs`
//! fixture would itself be scanned by the workspace walk and break the
//! clean-workspace test.

use sdm_analyze::analyze_file;

fn rules_hit(path: &str, src: &str) -> Vec<String> {
    let (findings, _) = analyze_file(path, src);
    findings.into_iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- ladder

#[test]
fn ladder_bad_upward_acquisition_is_flagged() {
    let src = "impl Database {\n\
               fn f(&self) {\n\
               let s = self.stats.lock();\n\
               let c = self.catalog.write();\n\
               }\n\
               }";
    assert_eq!(rules_hit("crates/sdm-metadb/src/db.rs", src), ["ladder"]);
}

#[test]
fn ladder_bad_nested_same_rwlock_is_flagged() {
    let src = "fn f(&self) {\n\
               let a = self.catalog.read();\n\
               let b = self.catalog.read();\n\
               }";
    assert_eq!(rules_hit("crates/sdm-metadb/src/db.rs", src), ["ladder"]);
}

#[test]
fn ladder_good_downward_with_drop_passes() {
    let src = "fn f(&self) {\n\
               let tx = self.tx.lock();\n\
               let c = self.catalog.write();\n\
               drop(c);\n\
               drop(tx);\n\
               self.stats.lock().n += 1;\n\
               }";
    assert!(rules_hit("crates/sdm-metadb/src/db.rs", src).is_empty());
}

// ---------------------------------------------------------- sql-layering

#[test]
fn sql_layering_bad_literal_is_flagged() {
    let src = "fn q() -> &'static str { \"SELECT id FROM runs\" }";
    assert_eq!(
        rules_hit("crates/sdm-core/src/history.rs", src),
        ["sql-layering"]
    );
}

#[test]
fn sql_layering_good_typed_stmt_passes() {
    let src = "fn q() { let s = Stmt::select(\"runs\").column(\"id\"); }";
    assert!(rules_hit("crates/sdm-core/src/history.rs", src).is_empty());
}

// ------------------------------------------------------- deprecated-call

#[test]
fn deprecated_call_bad_optin_is_flagged() {
    let src = "fn f(s: &Store) { #[allow(deprecated)] s.exec(\"x\"); }";
    assert_eq!(
        rules_hit("crates/sdm-sci/src/lib.rs", src),
        ["deprecated-call"]
    );
}

#[test]
fn deprecated_call_good_in_designated_file_passes() {
    let src = "fn f(s: &Store) { #[allow(deprecated)] s.exec(\"x\"); }";
    assert!(rules_hit("crates/sdm-core/src/store.rs", src).is_empty());
}

// --------------------------------------------------------------- unwrap

#[test]
fn unwrap_bad_library_code_is_flagged() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }";
    assert_eq!(rules_hit("crates/sdm-core/src/sdm.rs", src), ["unwrap"]);
}

#[test]
fn unwrap_good_test_code_passes() {
    let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { Some(1).unwrap(); }\n}";
    assert!(rules_hit("crates/sdm-core/src/sdm.rs", src).is_empty());
}

// -------------------------------------------------------- undo-coverage

#[test]
fn undo_coverage_bad_signature_is_flagged() {
    let src = "pub fn apply(catalog: &mut Catalog, stmt: &Statement) {}";
    assert_eq!(
        rules_hit("crates/sdm-metadb/src/exec.rs", src),
        ["undo-coverage"]
    );
}

#[test]
fn undo_coverage_good_signature_passes() {
    let src =
        "pub fn apply(catalog: &mut Catalog, stmt: &Statement, undo: Option<&mut UndoLog>) {}";
    assert!(rules_hit("crates/sdm-metadb/src/exec.rs", src).is_empty());
}

// -------------------------------------------------------- compiled-eval

#[test]
fn compiled_eval_bad_direct_walk_is_flagged() {
    let src = "pub fn f() { let v = eval_ast(expr, rel, row, params); }";
    assert_eq!(
        rules_hit("crates/sdm-metadb/src/exec.rs", src),
        ["compiled-eval"]
    );
}

#[test]
fn compiled_eval_good_in_eval_rs_tests_or_allowed_passes() {
    let src = "pub fn f() { let v = eval_ast(expr, rel, row, params); }";
    assert!(rules_hit("crates/sdm-metadb/src/eval.rs", src).is_empty());
    assert!(rules_hit("crates/sdm-metadb/tests/eval_equiv.rs", src).is_empty());
    let allowed = "fn bench() {\n\
                   // analyze:allow(compiled-eval: the AST-walk twin this bench measures)\n\
                   let v = eval_ast(expr, rel, row, params);\n\
                   }";
    assert!(rules_hit("crates/sdm-bench/src/bin/bench_metadb.rs", allowed).is_empty());
}

// --------------------------------------------------------- wal-ordering

#[test]
fn wal_ordering_bad_direct_write_is_flagged() {
    let src = "pub fn spill(p: &Path, bytes: &[u8]) { std::fs::write(p, bytes).ok(); }";
    assert_eq!(
        rules_hit("crates/sdm-metadb/src/table.rs", src),
        ["wal-ordering"]
    );
}

#[test]
fn wal_ordering_good_in_wal_or_persist_passes() {
    let src = "pub fn spill(p: &Path, bytes: &[u8]) { std::fs::write(p, bytes).ok(); }";
    assert!(rules_hit("crates/sdm-metadb/src/wal/storage.rs", src).is_empty());
    assert!(rules_hit("crates/sdm-metadb/src/persist.rs", src).is_empty());
}

// ------------------------------------------------------------ workspace

/// The repo's own sources must satisfy every rule — this is the same
/// check CI runs via the binary, kept in-suite so a violation fails
/// `cargo test` even before CI.
#[test]
fn workspace_analyzes_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = sdm_analyze::analyze_root(&root).expect("workspace readable");
    assert!(report.analyzed_files > 100, "walk found the workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "workspace has analyzer findings:\n{}",
        rendered.join("\n")
    );
}
