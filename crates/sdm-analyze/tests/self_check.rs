//! End-to-end self-tests: each rule trips on a known-bad fixture and
//! stays quiet on its known-good twin, and the real workspace analyzes
//! clean.
//!
//! Fixtures are inline strings, not files on disk — a standalone `.rs`
//! fixture would itself be scanned by the workspace walk and break the
//! clean-workspace test.

use sdm_analyze::{analyze_file, analyze_sources};

fn rules_hit(path: &str, src: &str) -> Vec<String> {
    let (findings, _) = analyze_file(path, src);
    findings.into_iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- ladder

#[test]
fn ladder_bad_upward_acquisition_is_flagged() {
    let src = "impl Database {\n\
               fn f(&self) {\n\
               let s = self.stats.lock();\n\
               let c = self.catalog.write();\n\
               }\n\
               }";
    assert_eq!(rules_hit("crates/sdm-metadb/src/db.rs", src), ["ladder"]);
}

#[test]
fn ladder_bad_nested_same_rwlock_is_flagged() {
    let src = "fn f(&self) {\n\
               let a = self.catalog.read();\n\
               let b = self.catalog.read();\n\
               }";
    assert_eq!(rules_hit("crates/sdm-metadb/src/db.rs", src), ["ladder"]);
}

#[test]
fn ladder_good_downward_with_drop_passes() {
    let src = "fn f(&self) {\n\
               let tx = self.tx.lock();\n\
               let c = self.catalog.write();\n\
               drop(c);\n\
               drop(tx);\n\
               self.stats.lock().n += 1;\n\
               }";
    assert!(rules_hit("crates/sdm-metadb/src/db.rs", src).is_empty());
}

// ---------------------------------------------------------- sql-layering

#[test]
fn sql_layering_bad_literal_is_flagged() {
    let src = "fn q() -> &'static str { \"SELECT id FROM runs\" }";
    assert_eq!(
        rules_hit("crates/sdm-core/src/history.rs", src),
        ["sql-layering"]
    );
}

#[test]
fn sql_layering_good_typed_stmt_passes() {
    let src = "fn q() { let s = Stmt::select(\"runs\").column(\"id\"); }";
    assert!(rules_hit("crates/sdm-core/src/history.rs", src).is_empty());
}

// ------------------------------------------------------- deprecated-call

#[test]
fn deprecated_call_bad_optin_is_flagged() {
    let src = "fn f(s: &Store) { #[allow(deprecated)] s.exec(\"x\"); }";
    assert_eq!(
        rules_hit("crates/sdm-sci/src/lib.rs", src),
        ["deprecated-call"]
    );
}

#[test]
fn deprecated_call_good_in_designated_file_passes() {
    let src = "fn f(s: &Store) { #[allow(deprecated)] s.exec(\"x\"); }";
    assert!(rules_hit("crates/sdm-core/src/store.rs", src).is_empty());
}

// --------------------------------------------------------------- unwrap

#[test]
fn unwrap_bad_library_code_is_flagged() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }";
    assert_eq!(rules_hit("crates/sdm-core/src/sdm.rs", src), ["unwrap"]);
}

#[test]
fn unwrap_good_test_code_passes() {
    let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { Some(1).unwrap(); }\n}";
    assert!(rules_hit("crates/sdm-core/src/sdm.rs", src).is_empty());
}

// -------------------------------------------------------- undo-coverage

#[test]
fn undo_coverage_bad_signature_is_flagged() {
    let src = "pub fn apply(catalog: &mut Catalog, stmt: &Statement) {}";
    assert_eq!(
        rules_hit("crates/sdm-metadb/src/exec.rs", src),
        ["undo-coverage"]
    );
}

#[test]
fn undo_coverage_good_signature_passes() {
    let src =
        "pub fn apply(catalog: &mut Catalog, stmt: &Statement, undo: Option<&mut UndoLog>) {}";
    assert!(rules_hit("crates/sdm-metadb/src/exec.rs", src).is_empty());
}

// -------------------------------------------------------- compiled-eval

#[test]
fn compiled_eval_bad_direct_walk_is_flagged() {
    let src = "pub fn f() { let v = eval_ast(expr, rel, row, params); }";
    assert_eq!(
        rules_hit("crates/sdm-metadb/src/exec.rs", src),
        ["compiled-eval"]
    );
}

#[test]
fn compiled_eval_good_in_eval_rs_tests_or_allowed_passes() {
    let src = "pub fn f() { let v = eval_ast(expr, rel, row, params); }";
    assert!(rules_hit("crates/sdm-metadb/src/eval.rs", src).is_empty());
    assert!(rules_hit("crates/sdm-metadb/tests/eval_equiv.rs", src).is_empty());
    let allowed = "fn bench() {\n\
                   // analyze:allow(compiled-eval: the AST-walk twin this bench measures)\n\
                   let v = eval_ast(expr, rel, row, params);\n\
                   }";
    assert!(rules_hit("crates/sdm-bench/src/bin/bench_metadb.rs", allowed).is_empty());
}

// --------------------------------------------------------- wal-ordering

#[test]
fn wal_ordering_bad_direct_write_is_flagged() {
    let src = "pub fn spill(p: &Path, bytes: &[u8]) { std::fs::write(p, bytes).ok(); }";
    assert_eq!(
        rules_hit("crates/sdm-metadb/src/table.rs", src),
        ["wal-ordering"]
    );
}

#[test]
fn wal_ordering_good_in_wal_or_persist_passes() {
    let src = "pub fn spill(p: &Path, bytes: &[u8]) { std::fs::write(p, bytes).ok(); }";
    assert!(rules_hit("crates/sdm-metadb/src/wal/storage.rs", src).is_empty());
    assert!(rules_hit("crates/sdm-metadb/src/persist.rs", src).is_empty());
}

// ----------------------------------------------- ladder (cross-function)

/// The seeded interprocedural violation: the upward acquisition is
/// three hops away from the lock already held, spanning two files of
/// the same impl, and the finding must name every hop.
#[test]
fn ladder_bad_cross_fn_upward_acquisition_carries_witness_chain() {
    let db = "impl Database {\n\
              fn outer(&self) {\n\
              let s = self.stats.lock();\n\
              self.mid();\n\
              }\n\
              }";
    let cat = "impl Database {\n\
               fn mid(&self) { self.inner(); }\n\
               fn inner(&self) { let c = self.catalog.write(); }\n\
               }";
    let report = analyze_sources(&[
        ("crates/sdm-metadb/src/db.rs".into(), db.into()),
        ("crates/sdm-metadb/src/catalog.rs".into(), cat.into()),
    ]);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "ladder");
    assert_eq!(f.file, "crates/sdm-metadb/src/db.rs");
    let chain = f.chain.join(" → ");
    assert!(chain.contains("Database::outer"), "chain: {chain}");
    assert!(chain.contains("Database::mid"), "chain: {chain}");
    assert!(chain.contains("Database::inner"), "chain: {chain}");
    assert!(chain.contains("catalog(20)"), "chain: {chain}");
}

#[test]
fn ladder_good_cross_fn_downward_chain_passes() {
    let db = "impl Database {\n\
              fn outer(&self) {\n\
              let tx = self.tx.lock();\n\
              self.mid();\n\
              }\n\
              }";
    let cat = "impl Database {\n\
               fn mid(&self) { self.inner(); }\n\
               fn inner(&self) { let c = self.catalog.write(); }\n\
               }";
    let report = analyze_sources(&[
        ("crates/sdm-metadb/src/db.rs".into(), db.into()),
        ("crates/sdm-metadb/src/catalog.rs".into(), cat.into()),
    ]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// -------------------------------------------------------------- held-io

#[test]
fn held_io_bad_fs_call_under_catalog_is_flagged_with_chain() {
    let src = "impl Engine {\n\
               fn checkpoint(&self) {\n\
               let c = self.catalog.write();\n\
               self.spill_segment();\n\
               }\n\
               fn spill_segment(&self) { std::fs::write(path, bytes).ok(); }\n\
               }";
    let (findings, _) = analyze_file("crates/sdm-core/src/engine.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "held-io");
    let chain = findings[0].chain.join(" → ");
    assert!(chain.contains("Engine::spill_segment"), "chain: {chain}");
    assert!(chain.contains("fs::write"), "chain: {chain}");
}

#[test]
fn held_io_good_dropped_guard_or_wal_sync_leader_passes() {
    // Guard released before the I/O helper runs.
    let dropped = "impl Engine {\n\
                   fn checkpoint(&self) {\n\
                   let c = self.catalog.write();\n\
                   drop(c);\n\
                   self.spill_segment();\n\
                   }\n\
                   fn spill_segment(&self) { std::fs::write(path, bytes).ok(); }\n\
                   }";
    assert!(rules_hit("crates/sdm-core/src/engine.rs", dropped).is_empty());
    // The group-commit leader fsyncs under `wal_sync` by design.
    let leader = "impl Engine {\n\
                  fn group_commit(&self) {\n\
                  let g = self.wal_sync.lock();\n\
                  std::fs::write(path, bytes).ok();\n\
                  }\n\
                  }";
    assert!(rules_hit("crates/sdm-core/src/engine.rs", leader).is_empty());
}

// ----------------------------------------------------- panic-under-guard

#[test]
fn panic_under_guard_bad_indexing_under_write_guard_is_flagged() {
    let src = "impl Sim {\n\
               fn commit_epoch(&self) {\n\
               let c = self.catalog.write();\n\
               self.reindex_slots();\n\
               }\n\
               fn reindex_slots(&self) { let v = self.slots[cursor]; }\n\
               }";
    let (findings, _) = analyze_file("crates/sdm-sim/src/lib.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "panic-under-guard");
    let chain = findings[0].chain.join(" → ");
    assert!(chain.contains("Sim::reindex_slots"), "chain: {chain}");
}

#[test]
fn panic_under_guard_good_read_guard_passes() {
    let src = "impl Sim {\n\
               fn commit_epoch(&self) {\n\
               let c = self.catalog.read();\n\
               self.reindex_slots();\n\
               }\n\
               fn reindex_slots(&self) { let v = self.slots[cursor]; }\n\
               }";
    assert!(rules_hit("crates/sdm-sim/src/lib.rs", src).is_empty());
}

// ------------------------------------------- undo-coverage (cross-file)

#[test]
fn undo_coverage_bad_unthreaded_mutator_across_files_is_flagged() {
    let exec = "pub fn apply_batch(catalog: &mut Catalog, undo: Option<&mut UndoLog>) {\n\
                rows::mutate_rows(catalog);\n\
                }";
    let rows = "pub fn mutate_rows(catalog: &mut Catalog) {}";
    let report = analyze_sources(&[
        ("crates/sdm-metadb/src/exec.rs".into(), exec.into()),
        ("crates/sdm-metadb/src/rows.rs".into(), rows.into()),
    ]);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "undo-coverage");
    assert!(f.chain.join(" → ").contains("mutate_rows"), "{:?}", f.chain);
}

#[test]
fn undo_coverage_good_undo_threaded_all_the_way_passes() {
    let exec = "pub fn apply_batch(catalog: &mut Catalog, undo: Option<&mut UndoLog>) {\n\
                rows::mutate_rows(catalog, undo);\n\
                }";
    let rows = "pub fn mutate_rows(catalog: &mut Catalog, undo: Option<&mut UndoLog>) {}";
    let report = analyze_sources(&[
        ("crates/sdm-metadb/src/exec.rs".into(), exec.into()),
        ("crates/sdm-metadb/src/rows.rs".into(), rows.into()),
    ]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --------------------------------------------------------- unused-allow

#[test]
fn unused_allow_bad_stale_directive_is_flagged() {
    let src = "pub fn f() {\n\
               // analyze:allow(ladder: nothing here locks)\n\
               let x = 1;\n\
               }";
    assert_eq!(
        rules_hit("crates/sdm-core/src/sdm.rs", src),
        ["unused-allow"]
    );
}

#[test]
fn unused_allow_good_earning_directive_passes() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               // analyze:allow(unwrap: validated by caller)\n\
               v.unwrap()\n\
               }";
    assert!(rules_hit("crates/sdm-core/src/sdm.rs", src).is_empty());
}

// ------------------------------------------------------------ workspace

/// The repo's own sources must satisfy every rule — this is the same
/// check CI runs via the binary, kept in-suite so a violation fails
/// `cargo test` even before CI.
#[test]
fn workspace_analyzes_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = sdm_analyze::analyze_root(&root).expect("workspace readable");
    assert!(report.analyzed_files > 100, "walk found the workspace");
    assert!(report.analyzed_fns > 500, "call graph covers the workspace");
    assert!(report.call_edges > 1000, "call sites resolved");
    assert_eq!(report.rules_checked.len(), 10);
    assert!(report.suppressed > 0, "justified allows are in effect");
    assert!(
        report
            .allows
            .iter()
            .all(|a| a.used || a.rule == "unused-allow"),
        "stale allow slipped through: {:?}",
        report
            .allows
            .iter()
            .filter(|a| !a.used)
            .map(|a| format!("{}:{} ({})", a.file, a.line, a.rule))
            .collect::<Vec<_>>()
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{}:{} [{}] {}\n    witness: {}",
                f.file,
                f.line,
                f.rule,
                f.message,
                f.chain.join(" → ")
            )
        })
        .collect();
    assert!(
        report.findings.is_empty(),
        "workspace has analyzer findings:\n{}",
        rendered.join("\n")
    );
}
