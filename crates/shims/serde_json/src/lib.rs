//! In-tree stand-in for the `serde_json` crate (see the note in the
//! `parking_lot` shim): prints and parses the `serde` shim's [`Json`]
//! tree as JSON text.

use serde::{Deserialize, Json, Serialize};

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---- writing ----

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::I64(i) => out.push_str(&i.to_string()),
        Json::U64(u) => out.push_str(&u.to_string()),
        Json::F64(d) => {
            if d.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64, and always includes `.` or `e`.
                out.push_str(&format!("{d:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, e);
            }
            out.push(']');
        }
        Json::Obj(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_json(out, e);
            }
            out.push('}');
        }
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&mut out, &value.to_json());
    Ok(out)
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.at))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => {
                self.at += 1;
                let mut arr = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Json::Arr(arr));
                }
                loop {
                    arr.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(arr));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut obj = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(obj));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    obj.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(obj));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // shim's writer; reject them on input.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parse JSON text into the [`Json`] tree.
pub fn parse(s: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let tree = parse(s)?;
    Ok(T::from_json(&tree)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::I64(-3)),
            (
                "b".into(),
                Json::Arr(vec![Json::F64(1.5), Json::Null, Json::Bool(true)]),
            ),
            ("c".into(), Json::Str("x \"y\"\nz".into())),
            ("d".into(), Json::U64(u64::MAX)),
        ]);
        let text = {
            let mut s = String::new();
            super::write_json(&mut s, &v);
            s
        };
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "one".into()), (2, "two".into())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<u32>>("{ not json").is_err());
        assert!(from_str::<Vec<u32>>("[1,2] trailing").is_err());
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }
}
