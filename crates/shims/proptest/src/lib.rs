//! In-tree stand-in for the `proptest` crate (see the note in the
//! `parking_lot` shim).
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! range and tuple strategies, `Just`, `prop_oneof!`, `prop_map`,
//! `proptest::collection::{vec, btree_set}`, and simple
//! `[class]{m,n}`-style string patterns. Cases are generated from a
//! deterministic per-test RNG (seeded by the test name), so runs are
//! reproducible; there is no shrinking.

// The `proptest!` doc example necessarily shows `#[test]` inside the
// macro input; those functions are compiled (not run) by the doctest.
#![allow(clippy::test_attr_in_doctest)]

/// Deterministic RNG and config.
pub mod test_runner {
    /// SplitMix64: tiny, uniform, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded from a test name (stable across runs and platforms).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-proptest-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range strategy for a primitive; see [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Boxed, object-safe strategy (used by `prop_oneof!`).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Box a strategy, erasing its concrete type.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Uniform choice among alternatives (see `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from boxed alternatives (at least one).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// `&str` patterns act as string strategies for the pattern subset
    /// `[class]{m,n}` (character class with ranges, counted repetition).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{m,n}` into (alphabet, min, max).
    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let unsupported = || -> ! {
            panic!(
                "proptest shim: only `[class]{{m,n}}` string patterns are supported, got {pat:?}"
            )
        };
        let rest = pat.strip_prefix('[').unwrap_or_else(|| unsupported());
        let close = rest.find(']').unwrap_or_else(|| unsupported());
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut k = 0;
        while k < class.len() {
            // `a-z` range when `-` sits between two chars; a leading or
            // trailing `-` is literal.
            if k + 2 < class.len() && class[k + 1] == '-' {
                let (a, b) = (class[k], class[k + 2]);
                assert!(a <= b, "bad char range in pattern {pat:?}");
                for c in a..=b {
                    alphabet.push(c);
                }
                k += 3;
            } else {
                alphabet.push(class[k]);
                k += 1;
            }
        }
        let rep = &rest[close + 1..];
        let rep = rep.strip_prefix('{').unwrap_or_else(|| unsupported());
        let rep = rep.strip_suffix('}').unwrap_or_else(|| unsupported());
        let (lo, hi) = match rep.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n: usize = rep.trim().parse().unwrap_or_else(|_| unsupported());
                (n, n)
            }
        };
        assert!(!alphabet.is_empty() && lo <= hi, "bad pattern {pat:?}");
        (alphabet, lo, hi)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec()`] / [`btree_set`]: a
    /// `Range<usize>` or an exact `usize`.
    pub trait IntoSizeRange {
        /// The half-open length range.
        fn into_size_range(self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self..self + 1
        }
    }

    /// `Vec` of `len in range` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` with `len in range` distinct elements (best effort:
    /// if the element domain is too small, the set may come up short of
    /// the drawn target but never empty when `range.start > 0`).
    pub fn btree_set<S>(element: S, len: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.len.clone().sample(rng).max(self.len.start.max(1));
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Full-range strategy for a primitive type.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Choose uniformly among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Assert inside a `proptest!` body; failure reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return ::core::result::Result::Err(
                format!("prop_assert_eq failed: {:?} != {:?}", l, r));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return ::core::result::Result::Err(
                format!("prop_assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)));
        }
    }};
}

/// Define deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn add_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                // A tuple of strategies is itself a strategy producing a
                // tuple; sample it whole to bind all arguments at once.
                let strategies = ( $($strat,)+ );
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&strategies, &mut rng);
                    let outcome: ::core::result::Result<(), String> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, msg);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in -5i64..5, b in 0usize..3, c in 0.0f64..1.0) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((0.0..1.0).contains(&c), "c = {}", c);
        }

        #[test]
        fn collections_and_patterns(
            v in crate::collection::vec(0u32..10, 1..8),
            s in crate::collection::btree_set(0u64..100, 1..10),
            t in "[a-c]{2,4}",
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(!s.is_empty());
            prop_assert!(t.len() >= 2 && t.len() <= 4);
            prop_assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::deterministic("seed");
        let mut r2 = crate::test_runner::TestRng::deterministic("seed");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
