//! In-tree stand-in for the `parking_lot` crate.
//!
//! The workspace builds hermetically (no network, no vendored registry),
//! so the handful of external crates the code uses are provided as thin
//! shims over `std`. This one mirrors the `parking_lot` API surface the
//! workspace actually touches: `Mutex`/`RwLock` whose guards come back
//! without a poison `Result`, and a `Condvar` that waits on a `&mut`
//! guard instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the inner guard
    // (std's wait consumes and returns it); it is `Some` at all other
    // times.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard present outside Condvar::wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
