//! In-tree stand-in for the `parking_lot` crate.
//!
//! The workspace builds hermetically (no network, no vendored registry),
//! so the handful of external crates the code uses are provided as thin
//! shims over `std`. This one mirrors the `parking_lot` API surface the
//! workspace actually touches: `Mutex`/`RwLock` whose guards come back
//! without a poison `Result`, and a `Condvar` that waits on a `&mut`
//! guard instead of consuming it.
//!
//! # Lock ranks (deadlock detection)
//!
//! On top of the `parking_lot` surface, every `Mutex`/`RwLock` can carry
//! a **rank** ([`Mutex::with_rank`] / [`RwLock::with_rank`]): a small
//! integer encoding the lock's position in its owner's documented lock
//! ladder (lower rank = higher in the ladder, acquired first). Under
//! `cfg(debug_assertions)` a thread-local stack of held ranks asserts
//! that every ranked acquisition is **strictly downward** — the new
//! rank must be greater than every rank the thread already holds. An
//! equal rank is also rejected: re-entering the same `Mutex`/`RwLock`
//! self-deadlocks on `std`'s primitives, and two leaf locks sharing a
//! rank are declared "taken alone, never nested". Violations panic with
//! a `lock ladder` message, so an inverted acquisition order is caught
//! the first time any test executes it, not the first time two threads
//! race it. Unranked locks (rank 0, the default) are exempt; release
//! builds compile the checks out entirely.
//!
//! `sdm-metadb`'s `Database` assigns ranks matching the ladder in its
//! documentation, and `crates/sdm-analyze` enforces the same order
//! statically (rule `ladder`) — this module is the dynamic half of that
//! contract.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::PoisonError;

/// Rank bookkeeping: a per-thread stack of the ranks currently held.
/// Only ranked locks (rank != 0) participate, and only in debug builds.
#[cfg(debug_assertions)]
mod rank {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    /// Record an acquisition, panicking on a ladder violation.
    pub(crate) fn acquire(rank: u32) {
        if rank == 0 {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&worst) = held.iter().max() {
                assert!(
                    rank > worst,
                    "lock ladder violation: acquiring {} while {} is held \
                     (ranked locks must be acquired in strictly increasing rank order; \
                     equal ranks never nest)",
                    sdm_ranks::describe(rank),
                    sdm_ranks::describe(worst),
                );
            }
            held.push(rank);
        });
    }

    /// Record a release (guard drop). Guards may be dropped out of
    /// acquisition order, so the *last occurrence* of the rank is
    /// removed, not necessarily the top of the stack.
    pub(crate) fn release(rank: u32) {
        if rank == 0 {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(not(debug_assertions))]
mod rank {
    #[inline(always)]
    pub(crate) fn acquire(_rank: u32) {}
    #[inline(always)]
    pub(crate) fn release(_rank: u32) {}
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    rank: AtomicU32,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    rank: u32,
    // `Option` so `Condvar::wait` can temporarily take the inner guard
    // (std's wait consumes and returns it); it is `Some` at all other
    // times. The rank stays on the thread's held stack across a wait:
    // the `MutexGuard` object is alive the whole time and the lock is
    // re-acquired before `wait` returns.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            rank: AtomicU32::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Assign this lock's position in its owner's lock ladder (builder
    /// form). Rank 0 (the default) opts out of checking; see the module
    /// docs for the enforcement rules.
    pub fn with_rank(self, rank: u32) -> Self {
        self.rank.store(rank, Ordering::Relaxed);
        self
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let rank = self.rank.load(Ordering::Relaxed);
        rank::acquire(rank);
        MutexGuard {
            rank,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rank::release(self.rank);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    rank: AtomicU32,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    rank: u32,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    rank: u32,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            rank: AtomicU32::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Assign this lock's position in its owner's lock ladder (builder
    /// form). Rank 0 (the default) opts out of checking. Read and write
    /// acquisitions share the rank: even a read-after-read re-entry on
    /// one thread is rejected, since a writer arriving between the two
    /// reads deadlocks `std`'s `RwLock`.
    pub fn with_rank(self, rank: u32) -> Self {
        self.rank.store(rank, Ordering::Relaxed);
        self
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let rank = self.rank.load(Ordering::Relaxed);
        rank::acquire(rank);
        RwLockReadGuard {
            rank,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let rank = self.rank.load(Ordering::Relaxed);
        rank::acquire(rank);
        RwLockWriteGuard {
            rank,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        rank::release(self.rank);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        rank::release(self.rank);
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard present outside Condvar::wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    // ---- lock ranks ----

    #[test]
    fn ranked_downward_acquisition_is_allowed() {
        let top = Mutex::new(()).with_rank(10);
        let mid = RwLock::new(()).with_rank(20);
        let leaf = Mutex::new(()).with_rank(30);
        let _t = top.lock();
        let _m = mid.write();
        let _l = leaf.lock();
    }

    #[test]
    fn ranks_release_on_drop_in_any_order() {
        let top = Mutex::new(()).with_rank(10);
        let mid = RwLock::new(()).with_rank(20);
        let t = top.lock();
        let m = mid.read();
        // Drop the *outer* guard first: the remaining rank-20 entry must
        // not block a later rank-20-exceeding acquisition, and releasing
        // 20 afterwards must find its (non-top) entry.
        drop(t);
        let leaf = Mutex::new(()).with_rank(30);
        let l = leaf.lock();
        drop(m);
        drop(l);
        // Everything released: the top of the ladder is reachable again.
        let _t = top.lock();
    }

    #[test]
    fn unranked_locks_are_exempt() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let ranked = Mutex::new(()).with_rank(30);
        let _r = ranked.lock();
        // Unranked locks nest freely in any order, even below a ranked
        // leaf (they are outside the ladder).
        let _a = a.lock();
        let _b = b.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock ladder violation")]
    fn upward_acquisition_panics() {
        let top = Mutex::new(()).with_rank(10);
        let leaf = Mutex::new(()).with_rank(30);
        let _l = leaf.lock();
        let _t = top.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock ladder violation")]
    fn same_rank_nesting_panics() {
        // Re-entering the same RwLock on one thread self-deadlocks once a
        // writer queues between the reads, so even read-read is rejected.
        let l = RwLock::new(()).with_rank(20);
        let _outer = l.read();
        let _inner = l.read();
    }

    #[test]
    fn rank_stack_is_per_thread() {
        let leaf = Arc::new(Mutex::new(0).with_rank(30));
        let top = Arc::new(Mutex::new(0).with_rank(10));
        let _l = leaf.lock();
        let (t2, l2) = (Arc::clone(&top), Arc::clone(&leaf));
        // Another thread holds nothing: it may start at the top of the
        // ladder even while this thread sits on a leaf.
        std::thread::spawn(move || {
            let _t = t2.lock();
            drop(l2); // keep the clone alive into the thread
        })
        .join()
        .unwrap();
    }

    #[test]
    fn condvar_wait_keeps_rank_held() {
        let pair = Arc::new((Mutex::new(false).with_rank(10), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            // After the wait the rank is still held exactly once:
            // descending to a leaf works, re-entering rank 10 would not.
            let leaf = Mutex::new(()).with_rank(30);
            let _l = leaf.lock();
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
