//! In-tree stand-in for the `criterion` crate (see the note in the
//! `parking_lot` shim). Provides the group/bencher API surface used by
//! `benches/micro.rs` with a simple adaptive timing loop: each benchmark
//! runs for a short fixed budget and reports mean time per iteration
//! (plus derived throughput when declared).

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark id.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to benchmark closures; runs the timed loop.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Time `f` repeatedly and record the mean per-iteration cost.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm up once (also forces lazy setup).
        std::hint::black_box(f());
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 100_000 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters.max(1) as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; the shim's timing loop is
    /// budget-based, so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) {}

    fn run(&mut self, name: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b);
        let per = b.mean_secs;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per)
            }
            Some(Throughput::Bytes(n)) if per > 0.0 => {
                format!("  {:>12.1} MB/s", n as f64 / per / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{name}: {:>12.3} us/iter{rate}", self.group, per * 1e6);
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(name.to_string(), f);
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.name.clone(), |b| f(b, input));
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            group: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        BenchmarkGroup {
            group: "bench".into(),
            throughput: None,
        }
        .run(name.to_string(), f);
    }
}

/// Bundle benchmark functions into one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        g.bench_with_input(BenchmarkId::new("with", 7), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(calls > 0);
    }
}
