//! In-tree stand-in for the `crossbeam` crate (see the note in the
//! `parking_lot` shim). Only `crossbeam::channel`'s unbounded MPSC
//! surface is provided, backed by `std::sync::mpsc`.

/// Multi-producer channels.
pub mod channel {
    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; errors only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors once every sender is
        /// dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive, `None` when the queue is empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
