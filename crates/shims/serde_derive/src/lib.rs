//! Derive macros for the in-tree `serde` shim.
//!
//! Written directly against `proc_macro` (no `syn`/`quote` available in
//! the hermetic build): the input item is token-scanned into a small
//! `Item` description, and the generated impl is emitted as a source
//! string parsed back into a `TokenStream`.
//!
//! Supported shapes — exactly what the workspace uses:
//! * non-generic structs with named fields, honoring `#[serde(skip)]`
//!   (not serialized, `Default` on deserialize) and `#[serde(default)]`
//!   (`Default` when the field is missing);
//! * non-generic enums with unit and tuple variants, encoded in serde's
//!   externally-tagged form (`"Variant"` / `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Attributes found while scanning: `(skip, default)`.
fn scan_serde_attr(group: &TokenStream) -> (bool, bool) {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    // Expect `serde ( ... )`.
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            let mut skip = false;
            let mut default = false;
            for t in inner.stream() {
                if let TokenTree::Ident(w) = t {
                    match w.to_string().as_str() {
                        "skip" => skip = true,
                        "default" => default = true,
                        other => panic!("serde shim derive: unsupported attribute `{other}`"),
                    }
                }
            }
            (skip, default)
        }
        _ => (false, false), // some other attribute (doc comment etc.)
    }
}

/// Consume leading attributes at `*i`, returning merged serde flags.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let (mut skip, mut default) = (false, false);
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
            panic!("serde shim derive: `#` not followed by attribute brackets")
        };
        let (s, d) = scan_serde_attr(&g.stream());
        skip |= s;
        default |= d;
        *i += 2;
    }
    (skip, default)
}

/// Skip `pub`, `pub(...)` at `*i`.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, got {other:?}"),
    }
}

/// Split a token group on top-level commas. Commas inside `<...>` type
/// arguments are not split points: `<`/`>` are loose puncts (not token
/// groups), so angle depth is tracked explicitly.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kw = ident_at(&toks, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&toks, i, "item name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type {name})");
        }
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other =>

            panic!("serde shim derive: {name}: expected braced body, got {other:?} (tuple/unit items unsupported)"),
    };
    let shape = match kw.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            for chunk in split_commas(body) {
                let mut j = 0;
                let (skip, default) = take_attrs(&chunk, &mut j);
                skip_visibility(&chunk, &mut j);
                let fname = ident_at(&chunk, j, "field name");
                fields.push(Field {
                    name: fname,
                    skip,
                    default,
                });
            }
            Shape::Struct(fields)
        }
        "enum" => {
            let mut variants = Vec::new();
            for chunk in split_commas(body) {
                let mut j = 0;
                take_attrs(&chunk, &mut j);
                let vname = ident_at(&chunk, j, "variant name");
                j += 1;
                let arity = match chunk.get(j) {
                    None => 0,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        split_commas(g.stream()).len()
                    }
                    other => panic!(
                        "serde shim derive: {name}::{vname}: unsupported variant form {other:?}"
                    ),
                };
                variants.push(Variant { name: vname, arity });
            }
            Shape::Enum(variants)
        }
        other => panic!("serde shim derive: expected struct or enum, got `{other}`"),
    };
    Item { name, shape }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "obj.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_json(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Json::Obj(obj)"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Json::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Json::Obj(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_json(f0))]),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..n).map(|k| format!("f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Json::Obj(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Json::Arr(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::Json {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{0}: match ::serde::json_find(obj, \"{0}\") {{\n\
                         ::core::option::Option::Some(x) => ::serde::Deserialize::from_json(x)?,\n\
                         ::core::option::Option::None => ::core::default::Default::default(),\n}},\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: match ::serde::json_find(obj, \"{0}\") {{\n\
                         ::core::option::Option::Some(x) => ::serde::Deserialize::from_json(x)?,\n\
                         ::core::option::Option::None => return ::core::result::Result::Err(\
                         ::serde::Error::msg(\"missing field `{0}` in {name}\")),\n}},\n",
                        f.name
                    ));
                }
            }
            format!(
                "let obj = v.as_obj().ok_or_else(|| \
                 ::serde::Error::msg(::std::format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => unit_arms.push_str(&format!(
                        "\"{vn}\" => return ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    1 => tagged_arms.push_str(&format!(
                        "\"{vn}\" => return ::core::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_json(inner)?)),\n"
                    )),
                    n => {
                        let elems: Vec<String> = (0..n)
                            .map(|k| format!("::serde::Deserialize::from_json(&arr[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let arr = inner.as_arr().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array payload for {name}::{vn}\"))?;\n\
                             if arr.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::Error::msg(\"wrong payload arity for {name}::{vn}\")); }}\n\
                             return ::core::result::Result::Ok({name}::{vn}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::core::option::Option::Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::core::option::Option::Some(obj) = v.as_obj() {{\n\
                 if obj.len() == 1 {{\n\
                 let (tag, inner) = &obj[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::core::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"no variant of {name} matches {{}}\", v.kind())))"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(v: &::serde::Json) -> ::core::result::Result<{name}, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
