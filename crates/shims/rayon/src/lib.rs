//! In-tree stand-in for the `rayon` crate (see the note in the
//! `parking_lot` shim). `into_par_iter()` simply yields the sequential
//! iterator: the map/collect pipelines written against rayon compile and
//! run unchanged, without the thread pool.

/// Rayon-compatible prelude.
pub mod prelude {
    /// `IntoParallelIterator` mapped onto plain [`IntoIterator`].
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_sequential_iter() {
        let v: Vec<usize> = (0..10).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[9], 18);
    }
}
