//! In-tree stand-in for the `serde` crate (see the note in the
//! `parking_lot` shim).
//!
//! Instead of serde's visitor-based data model, this shim serializes
//! through one concrete tree, [`Json`]: `Serialize` renders a value into
//! the tree, `Deserialize` rebuilds a value from it, and the companion
//! `serde_json` shim prints/parses the tree as JSON text. The derive
//! macros (re-exported from `serde_derive`) understand the attribute
//! subset the workspace uses: `#[serde(skip)]` and `#[serde(default)]`.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the whole serde data model of this shim.
///
/// Integers keep 64-bit precision (separate signed/unsigned variants)
/// so ids and byte offsets survive round trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside the `i64` range (or any `u64`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::I64(_) | Json::U64(_) | Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Find a field in object entries (first match wins).
pub fn json_find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Json`] tree.
pub trait Serialize {
    /// The tree form of `self`.
    fn to_json(&self) -> Json;
}

/// Rebuild `Self` from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Parse the tree form back into a value.
    fn from_json(v: &Json) -> Result<Self, Error>;
}

// ---- primitive impls ----

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                let i = match v {
                    Json::I64(i) => *i,
                    Json::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t))))?,
                    other => return Err(Error::msg(format!("expected integer, got {}", other.kind()))),
                };
                <$t>::try_from(i).map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                let u = match v {
                    Json::U64(u) => *u,
                    Json::I64(i) => u64::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t))))?,
                    other => return Err(Error::msg(format!("expected integer, got {}", other.kind()))),
                };
                <$t>::try_from(u).map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::F64(d) => Ok(*d as $t),
                    Json::I64(i) => Ok(*i as $t),
                    Json::U64(u) => Ok(*u as $t),
                    other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(t) => t.to_json(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Json) -> Result<Self, Error> {
        let arr = v.as_arr().ok_or_else(|| Error::msg("expected array"))?;
        if arr.len() != N {
            return Err(Error::msg(format!(
                "expected array of {N}, got {}",
                arr.len()
            )));
        }
        let mut out = [T::default(); N];
        for (o, j) in out.iter_mut().zip(arr) {
            *o = T::from_json(j)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$i.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::msg("expected array for tuple"))?;
                let want = [$($i),+].len();
                if arr.len() != want {
                    return Err(Error::msg(format!("expected {want}-tuple, got {}", arr.len())));
                }
                Ok(($($t::from_json(&arr[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::msg(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort keys so output is deterministic.
        let mut entries: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::msg(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
        assert_eq!(u64::from_json(&(u64::MAX).to_json()).unwrap(), u64::MAX);
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(
            String::from_json(&"hi".to_string().to_json()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<i64>::from_json(&Json::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_json(&v.to_json()).unwrap(), v);
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_json(&a.to_json()).unwrap(), a);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(i8::from_json(&Json::I64(1000)).is_err());
        assert!(u32::from_json(&Json::I64(-1)).is_err());
    }
}
