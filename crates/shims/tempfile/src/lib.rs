//! In-tree stand-in for the `tempfile` crate (see the note in the
//! `parking_lot` shim). Provides `tempdir()`: a uniquely named directory
//! under the system temp dir, removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory removed (recursively, best-effort) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Create a fresh temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let base = std::env::temp_dir();
    // Process id + sequence number + a clock component make collisions
    // with leftovers from dead processes practically impossible; loop in
    // case of a live collision anyway.
    let pid = std::process::id();
    loop {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let clk = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = base.join(format!(".sdm-tmp-{pid}-{n}-{clk:08x}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_cleanup() {
        let keep;
        {
            let d = tempdir().unwrap();
            keep = d.path().to_path_buf();
            std::fs::write(d.path().join("x.txt"), "hi").unwrap();
            assert!(keep.exists());
        }
        assert!(!keep.exists(), "dropped TempDir must remove its directory");
    }

    #[test]
    fn distinct_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
