//! Two-phase collective I/O (ROMIO's generalized collective
//! read/write), the optimization the paper's results rest on.
//!
//! Phase 1 (exchange): ranks compute their flattened file segments,
//! agree on the global byte range, split it into contiguous *file
//! domains* (one per aggregator), and ship segment descriptors plus data
//! (for writes) to the owning aggregators with a pairwise alltoallv.
//!
//! Phase 2 (access): each aggregator moves its domain through a staging
//! buffer of `cb_buffer_size` bytes, issuing large contiguous PFS
//! requests — with read-modify-write only where the received segments
//! leave holes. For reads the phases run in the other order, ending with
//! a second alltoallv that returns extracted bytes to the requesting
//! ranks.
//!
//! Overlapping writes resolve lower-source-rank-first (higher ranks win),
//! deterministically.

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};
use crate::io::MpiFile;
use crate::pod::{as_bytes, as_bytes_mut, vec_from_bytes, Pod};

/// One segment owned by an aggregator, tagged with its origin.
#[derive(Debug, Clone, Copy)]
struct AggSeg {
    off: u64,
    len: u64,
    src: usize,
    /// Byte position of this segment within the source's (clipped)
    /// per-aggregator stream.
    stream_pos: u64,
}

/// Split `[gmin, gmax)` into `naggs` contiguous file domains.
fn domain_of(gmin: u64, gmax: u64, naggs: usize, d: usize) -> (u64, u64) {
    let total = gmax - gmin;
    let share = total.div_ceil(naggs as u64).max(1);
    let lo = gmin + (d as u64 * share).min(total);
    let hi = gmin + ((d as u64 + 1) * share).min(total);
    (lo, hi)
}

/// Clip `(off, len)` to `[lo, hi)`; returns `None` if disjoint.
fn clip(off: u64, len: u64, lo: u64, hi: u64) -> Option<(u64, u64)> {
    let s = off.max(lo);
    let e = (off + len).min(hi);
    (s < e).then(|| (s, e - s))
}

fn encode_header(segs: &[(u64, u64)]) -> Vec<u8> {
    let mut words: Vec<u64> = Vec::with_capacity(1 + segs.len() * 2);
    words.push(segs.len() as u64);
    for &(o, l) in segs {
        words.push(o);
        words.push(l);
    }
    as_bytes(&words).to_vec()
}

fn decode_header(bytes: &[u8]) -> MpiResult<(Vec<(u64, u64)>, usize)> {
    if bytes.len() < 8 {
        return Err(MpiError::LengthMismatch {
            expected: 8,
            got: bytes.len(),
        });
    }
    let n = u64::from_ne_bytes(bytes[..8].try_into().unwrap()) as usize;
    let header_len = 8 + n * 16;
    if bytes.len() < header_len {
        return Err(MpiError::LengthMismatch {
            expected: header_len,
            got: bytes.len(),
        });
    }
    let words: Vec<u64> = vec_from_bytes(&bytes[8..header_len]);
    let segs = words.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    Ok((segs, header_len))
}

impl MpiFile {
    /// Collective write through the view: every rank of the communicator
    /// must call this ("collective" in the MPI sense). `view_off` is the
    /// rank's starting position in visible bytes; ranks may pass
    /// different offsets and lengths, including empty.
    pub fn write_all<T: Pod>(&self, comm: &mut Comm, view_off: u64, data: &[T]) -> MpiResult<()> {
        let bytes = as_bytes(data);
        let my_segs = self.view().segments(view_off, bytes.len() as u64);
        self.two_phase_write(comm, &my_segs, bytes)
    }

    /// Collective read through the view (counterpart of
    /// [`MpiFile::write_all`]). Fails if any requested byte lies past EOF.
    pub fn read_all<T: Pod>(&self, comm: &mut Comm, view_off: u64, buf: &mut [T]) -> MpiResult<()> {
        let nbytes = std::mem::size_of_val(buf) as u64;
        let my_segs = self.view().segments(view_off, nbytes);
        let bytes = as_bytes_mut(buf);
        self.two_phase_read(comm, &my_segs, bytes)
    }

    /// Collective write of explicit absolute segments (used by SDM's
    /// import path where the segment list is already computed).
    pub fn write_all_segments(
        &self,
        comm: &mut Comm,
        segs: &[(u64, u64)],
        data: &[u8],
    ) -> MpiResult<()> {
        self.two_phase_write(comm, segs, data)
    }

    /// Collective read of explicit absolute segments.
    pub fn read_all_segments(
        &self,
        comm: &mut Comm,
        segs: &[(u64, u64)],
        buf: &mut [u8],
    ) -> MpiResult<()> {
        self.two_phase_read(comm, segs, buf)
    }

    /// Global byte range of all ranks' requests; `None` if all are empty.
    fn global_range(&self, comm: &mut Comm, segs: &[(u64, u64)]) -> Option<(u64, u64)> {
        let lo = segs.first().map_or(u64::MAX, |&(o, _)| o);
        let hi = segs.last().map_or(0, |&(o, l)| o + l);
        let gmin = comm.allreduce_min(&[lo])[0];
        let gmax = comm.allreduce_max(&[hi])[0];
        (gmin < gmax).then_some((gmin, gmax))
    }

    /// Split this rank's segments by destination aggregator domain.
    fn split_by_domain(
        &self,
        segs: &[(u64, u64)],
        gmin: u64,
        gmax: u64,
        naggs: usize,
    ) -> Vec<Vec<(u64, u64)>> {
        let total = gmax - gmin;
        let share = total.div_ceil(naggs as u64).max(1);
        let mut per_agg: Vec<Vec<(u64, u64)>> = vec![Vec::new(); naggs];
        for &(off, len) in segs {
            let d0 = ((off - gmin) / share) as usize;
            let d1 = ((off + len - 1 - gmin) / share) as usize;
            let d1 = d1.min(naggs - 1);
            for (d, agg) in per_agg.iter_mut().enumerate().take(d1 + 1).skip(d0) {
                let (dlo, dhi) = domain_of(gmin, gmax, naggs, d);
                if let Some(c) = clip(off, len, dlo, dhi) {
                    agg.push(c);
                }
            }
        }
        per_agg
    }

    fn two_phase_write(&self, comm: &mut Comm, segs: &[(u64, u64)], data: &[u8]) -> MpiResult<()> {
        debug_assert_eq!(
            segs.iter().map(|&(_, l)| l).sum::<u64>() as usize,
            data.len()
        );
        let size = comm.size();
        let Some((gmin, gmax)) = self.global_range(comm, segs) else {
            comm.barrier();
            return Ok(());
        };
        let naggs = self.hints().aggregators(size);

        // Phase 1: build per-aggregator messages (header + payload).
        let per_agg = self.split_by_domain(segs, gmin, gmax, naggs);
        let mut msgs: Vec<Vec<u8>> = vec![Vec::new(); size];
        {
            // Map from absolute file offset back into `data`: walk the
            // original segments, tracking each one's position in `data`.
            let mut seg_data_pos = Vec::with_capacity(segs.len());
            let mut acc = 0u64;
            for &(_, l) in segs {
                seg_data_pos.push(acc);
                acc += l;
            }
            for (d, dsegs) in per_agg.iter().enumerate() {
                if dsegs.is_empty() {
                    continue;
                }
                let mut msg = encode_header(dsegs);
                for &(off, len) in dsegs {
                    // Find the original segment containing this clip.
                    let i = segs.partition_point(|&(o, _)| o <= off) - 1;
                    let (so, _) = segs[i];
                    let dpos = (seg_data_pos[i] + (off - so)) as usize;
                    msg.extend_from_slice(&data[dpos..dpos + len as usize]);
                }
                msgs[d] = msg;
            }
        }
        let received = comm.alltoallv_bytes(msgs)?;

        // Phase 2: aggregators apply their domain through the staging buffer.
        if comm.rank() < naggs {
            let (dlo, dhi) = domain_of(gmin, gmax, naggs, comm.rank());
            let mut agg_segs: Vec<AggSeg> = Vec::new();
            let mut payloads: Vec<(usize, Vec<u8>)> = Vec::new(); // (src, data stream)
            for (src, msg) in received.iter().enumerate() {
                if msg.is_empty() {
                    continue;
                }
                let (hsegs, header_len) = decode_header(msg)?;
                let mut pos = 0u64;
                for &(o, l) in &hsegs {
                    agg_segs.push(AggSeg {
                        off: o,
                        len: l,
                        src,
                        stream_pos: pos,
                    });
                    pos += l;
                }
                payloads.push((src, msg[header_len..].to_vec()));
            }
            agg_segs.sort_by_key(|s| (s.off, s.src));
            let stream_of = |src: usize| -> &[u8] {
                payloads
                    .iter()
                    .find(|&&(s, _)| s == src)
                    .map(|(_, d)| d.as_slice())
                    .unwrap()
            };
            let cb = self.hints().cb_buffer_size.max(1) as u64;
            let mut now = comm.now();
            let mut win = dlo;
            let mut next_seg = 0usize;
            while win < dhi && next_seg < agg_segs.len() {
                let wlo = win;
                let whi = (win + cb).min(dhi);
                // Segments overlapping this window (they're sorted by off;
                // a segment can span multiple windows, so scan from the
                // first not-yet-finished one).
                let mut touched_lo = u64::MAX;
                let mut touched_hi = 0u64;
                let mut useful = 0u64;
                let mut in_window: Vec<(u64, u64, usize, u64)> = Vec::new(); // off, len, src, stream_pos
                for s in &agg_segs[next_seg..] {
                    if s.off >= whi {
                        break;
                    }
                    if let Some((co, cl)) = clip(s.off, s.len, wlo, whi) {
                        touched_lo = touched_lo.min(co);
                        touched_hi = touched_hi.max(co + cl);
                        useful += cl;
                        in_window.push((co, cl, s.src, s.stream_pos + (co - s.off)));
                    }
                }
                // Advance next_seg past segments fully consumed by this window.
                while next_seg < agg_segs.len()
                    && agg_segs[next_seg].off + agg_segs[next_seg].len <= whi
                {
                    next_seg += 1;
                }
                if touched_lo < touched_hi {
                    let span = (touched_hi - touched_lo) as usize;
                    let mut staging = vec![0u8; span];
                    if useful < span as u64 {
                        // Holes: read-modify-write (short read leaves zeros
                        // past EOF, matching extension semantics).
                        let (_n, t) =
                            self.pfs()
                                .read_at(self.pfs_file(), touched_lo, &mut staging, now)?;
                        now = t;
                        self.pfs().counters().incr("mpi.twophase_rmw");
                    }
                    for (co, cl, src, spos) in in_window {
                        let s = (co - touched_lo) as usize;
                        let stream = stream_of(src);
                        staging[s..s + cl as usize]
                            .copy_from_slice(&stream[spos as usize..(spos + cl) as usize]);
                    }
                    now = self
                        .pfs()
                        .write_at(self.pfs_file(), touched_lo, &staging, now)?;
                }
                win = whi;
            }
            comm.sync_to(now);
            comm.counters().incr("mpi.write_alls");
        }
        comm.barrier();
        Ok(())
    }

    fn two_phase_read(
        &self,
        comm: &mut Comm,
        segs: &[(u64, u64)],
        buf: &mut [u8],
    ) -> MpiResult<()> {
        debug_assert_eq!(
            segs.iter().map(|&(_, l)| l).sum::<u64>() as usize,
            buf.len()
        );
        let size = comm.size();
        let Some((gmin, gmax)) = self.global_range(comm, segs) else {
            comm.barrier();
            return Ok(());
        };
        let naggs = self.hints().aggregators(size);

        // Phase 1: send segment requests to aggregators.
        let per_agg = self.split_by_domain(segs, gmin, gmax, naggs);
        let mut msgs: Vec<Vec<u8>> = vec![Vec::new(); size];
        for (d, dsegs) in per_agg.iter().enumerate() {
            if !dsegs.is_empty() {
                msgs[d] = encode_header(dsegs);
            }
        }
        let received = comm.alltoallv_bytes(msgs)?;

        // Phase 2: aggregators read their domain and extract per-source data.
        let mut replies: Vec<Vec<u8>> = vec![Vec::new(); size];
        if comm.rank() < naggs {
            let (dlo, dhi) = domain_of(gmin, gmax, naggs, comm.rank());
            let mut agg_segs: Vec<AggSeg> = Vec::new();
            let mut reply_len = vec![0u64; size];
            for (src, msg) in received.iter().enumerate() {
                if msg.is_empty() {
                    continue;
                }
                let (hsegs, _) = decode_header(msg)?;
                for &(o, l) in &hsegs {
                    agg_segs.push(AggSeg {
                        off: o,
                        len: l,
                        src,
                        stream_pos: reply_len[src],
                    });
                    reply_len[src] += l;
                }
            }
            for (src, &l) in reply_len.iter().enumerate() {
                replies[src] = vec![0u8; l as usize];
            }
            agg_segs.sort_by_key(|s| (s.off, s.src));
            let cb = self.hints().cb_buffer_size.max(1) as u64;
            let mut now = comm.now();
            let mut win = dlo;
            let mut next_seg = 0usize;
            while win < dhi && next_seg < agg_segs.len() {
                let wlo = win;
                let whi = (win + cb).min(dhi);
                let mut touched_lo = u64::MAX;
                let mut touched_hi = 0u64;
                let mut in_window: Vec<(u64, u64, usize, u64)> = Vec::new();
                for s in &agg_segs[next_seg..] {
                    if s.off >= whi {
                        break;
                    }
                    if let Some((co, cl)) = clip(s.off, s.len, wlo, whi) {
                        touched_lo = touched_lo.min(co);
                        touched_hi = touched_hi.max(co + cl);
                        in_window.push((co, cl, s.src, s.stream_pos + (co - s.off)));
                    }
                }
                while next_seg < agg_segs.len()
                    && agg_segs[next_seg].off + agg_segs[next_seg].len <= whi
                {
                    next_seg += 1;
                }
                if touched_lo < touched_hi {
                    let span = (touched_hi - touched_lo) as usize;
                    let mut staging = vec![0u8; span];
                    now =
                        self.pfs()
                            .read_exact_at(self.pfs_file(), touched_lo, &mut staging, now)?;
                    for (co, cl, src, spos) in in_window {
                        let s = (co - touched_lo) as usize;
                        replies[src][spos as usize..(spos + cl) as usize]
                            .copy_from_slice(&staging[s..s + cl as usize]);
                    }
                }
                win = whi;
            }
            comm.sync_to(now);
            comm.counters().incr("mpi.read_alls");
        }

        // Phase 3: replies back to requesters, then reassemble in view order.
        let replies = comm.alltoallv_bytes(replies)?;
        let mut stream_pos = vec![0usize; size];
        let total = gmax - gmin;
        let share = total.div_ceil(naggs as u64).max(1);
        let mut cursor = 0usize;
        for &(off, len) in segs {
            let d0 = ((off - gmin) / share) as usize;
            let d1 = ((off + len - 1 - gmin) / share) as usize;
            for d in d0..=d1.min(naggs - 1) {
                let (dlo, dhi) = domain_of(gmin, gmax, naggs, d);
                if let Some((_, cl)) = clip(off, len, dlo, dhi) {
                    let p = stream_pos[d];
                    buf[cursor..cursor + cl as usize]
                        .copy_from_slice(&replies[d][p..p + cl as usize]);
                    stream_pos[d] += cl as usize;
                    cursor += cl as usize;
                }
            }
        }
        comm.barrier();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use crate::datatype::Datatype;
    use sdm_pfs::Pfs;
    use sdm_sim::MachineConfig;
    use std::sync::Arc;

    fn tiny_pfs() -> Arc<Pfs> {
        Pfs::new(MachineConfig::test_tiny())
    }

    /// `clip` on a disjoint range must be `None`, including when the
    /// segment ends *before* the window (regression: the subtraction in
    /// the `Some` arm must not be evaluated eagerly).
    #[test]
    fn clip_disjoint_is_none() {
        assert_eq!(clip(0, 10, 20, 30), None); // ends before window
        assert_eq!(clip(40, 10, 20, 30), None); // starts after window
        assert_eq!(clip(0, 0, 0, 10), None); // empty segment
        assert_eq!(clip(5, 10, 8, 12), Some((8, 4))); // straddles lo
        assert_eq!(clip(9, 10, 8, 12), Some((9, 3))); // straddles hi
        assert_eq!(clip(9, 1, 8, 12), Some((9, 1))); // interior
    }

    /// Each rank writes an interleaved view; reading back the whole file
    /// must reproduce the interleaving.
    #[test]
    fn collective_interleaved_write() {
        let pfs = tiny_pfs();
        let n = 4usize;
        World::run(n, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "inter.bin", true).unwrap();
                // Rank r owns element r of every 4-element f64 record.
                let t = Datatype::resized(
                    (n * 8) as u64,
                    Datatype::indexed_block(1, vec![c.rank() as u64], Datatype::double()),
                );
                f.set_view(c, 0, t.flatten().unwrap()).unwrap();
                let mine: Vec<f64> = (0..8).map(|i| (c.rank() * 100 + i) as f64).collect();
                f.write_all(c, 0, &mine).unwrap();
                f.close(c);
            }
        });
        // Validate the raw file layout.
        let (f, _) = pfs.open("inter.bin", 0.0).unwrap();
        let mut raw = vec![0u8; 4 * 8 * 8];
        pfs.read_exact_at(&f, 0, &mut raw, 0.0).unwrap();
        let vals: Vec<f64> = crate::pod::vec_from_bytes(&raw);
        for rec in 0..8 {
            for r in 0..4 {
                assert_eq!(vals[rec * 4 + r], (r * 100 + rec) as f64, "rec={rec} r={r}");
            }
        }
    }

    #[test]
    fn collective_read_matches_written() {
        let pfs = tiny_pfs();
        let n = 4usize;
        let out = World::run(n, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "rr.bin", true).unwrap();
                if c.rank() == 0 {
                    let all: Vec<u64> = (0..64).collect();
                    f.write_at(c, 0, &all).unwrap();
                }
                c.barrier();
                // Rank r reads elements r, r+4, r+8, ... (strided view).
                let t = Datatype::resized(
                    (n * 8) as u64,
                    Datatype::indexed_block(1, vec![c.rank() as u64], Datatype::int64()),
                );
                f.set_view(c, 0, t.flatten().unwrap()).unwrap();
                let mut mine = vec![0u64; 16];
                f.read_all(c, 0, &mut mine).unwrap();
                f.close(c);
                mine
            }
        });
        for (r, v) in out.iter().enumerate() {
            let want: Vec<u64> = (0..16).map(|i| (i * 4 + r) as u64).collect();
            assert_eq!(v, &want, "rank {r}");
        }
    }

    #[test]
    fn empty_participants_are_fine() {
        let pfs = tiny_pfs();
        World::run(3, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "e.bin", true).unwrap();
                // Only rank 1 writes anything.
                if c.rank() == 1 {
                    f.write_all_segments(c, &[(8, 8)], &7u64.to_ne_bytes())
                        .unwrap();
                } else {
                    f.write_all_segments(c, &[], &[]).unwrap();
                }
                let mut back = [0u64; 1];
                if c.rank() == 2 {
                    f.read_all_segments(c, &[(8, 8)], as_bytes_mut(&mut back))
                        .unwrap();
                    assert_eq!(back[0], 7);
                } else {
                    f.read_all_segments(c, &[], &mut []).unwrap();
                }
                f.close(c);
            }
        });
    }

    #[test]
    fn all_empty_collective_is_noop() {
        let pfs = tiny_pfs();
        World::run(2, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "z.bin", true).unwrap();
                f.write_all_segments(c, &[], &[]).unwrap();
                f.read_all_segments(c, &[], &mut []).unwrap();
                f.close(c);
            }
        });
    }

    #[test]
    fn rmw_preserves_untouched_bytes() {
        let pfs = tiny_pfs();
        World::run(2, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "rmw.bin", true).unwrap();
                if c.rank() == 0 {
                    f.write_at(c, 0, &[0xAAu8; 64]).unwrap();
                }
                c.barrier();
                // Sparse collective write leaving holes.
                if c.rank() == 0 {
                    f.write_all_segments(c, &[(4, 4)], &[1, 2, 3, 4]).unwrap();
                } else {
                    f.write_all_segments(c, &[(40, 4)], &[5, 6, 7, 8]).unwrap();
                }
                c.barrier();
                let mut raw = vec![0u8; 64];
                f.read_at(c, 0, &mut raw).unwrap();
                assert_eq!(&raw[4..8], &[1, 2, 3, 4]);
                assert_eq!(&raw[40..44], &[5, 6, 7, 8]);
                assert_eq!(raw[0], 0xAA);
                assert_eq!(raw[20], 0xAA);
                assert_eq!(raw[63], 0xAA);
                f.close(c);
            }
        });
    }

    #[test]
    fn reduced_aggregator_count_still_correct() {
        let pfs = tiny_pfs();
        World::run(6, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "agg.bin", true).unwrap();
                f.set_hints(crate::io::Hints {
                    cb_nodes: Some(2),
                    ..Default::default()
                });
                let mine = vec![c.rank() as u64; 10];
                f.write_all_segments(c, &[(c.rank() as u64 * 80, 80)], as_bytes(&mine))
                    .unwrap();
                let mut back = vec![0u64; 10];
                f.read_all_segments(
                    c,
                    &[(((c.rank() + 1) % 6) as u64 * 80, 80)],
                    as_bytes_mut(&mut back),
                )
                .unwrap();
                assert_eq!(back, vec![((c.rank() + 1) % 6) as u64; 10]);
                f.close(c);
            }
        });
    }

    #[test]
    fn small_cb_buffer_stages_correctly() {
        let pfs = tiny_pfs();
        World::run(3, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "cb.bin", true).unwrap();
                f.set_hints(crate::io::Hints {
                    cb_buffer_size: 16,
                    ..Default::default()
                });
                let mine: Vec<u8> = (0..50).map(|i| (c.rank() * 50 + i) as u8).collect();
                f.write_all_segments(c, &[(c.rank() as u64 * 50, 50)], &mine)
                    .unwrap();
                let mut all = vec![0u8; 150];
                if c.rank() == 0 {
                    f.read_at(c, 0, &mut all).unwrap();
                    assert_eq!(all, (0..150).map(|i| i as u8).collect::<Vec<_>>());
                }
                f.close(c);
            }
        });
    }

    #[test]
    fn segment_spanning_domain_boundary() {
        let pfs = tiny_pfs();
        World::run(2, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "span.bin", true).unwrap();
                // One rank writes a segment crossing the middle of the
                // global range, which is exactly the domain boundary.
                if c.rank() == 0 {
                    let data: Vec<u8> = (0..100).collect();
                    f.write_all_segments(c, &[(0, 100)], &data).unwrap();
                } else {
                    let data = [200u8; 100];
                    f.write_all_segments(c, &[(100, 100)], &data).unwrap();
                }
                // Read a window crossing the boundary.
                let mut buf = vec![0u8; 60];
                f.read_all_segments(c, &[(70, 60)], &mut buf).unwrap();
                let want: Vec<u8> = (70..100)
                    .map(|i| i as u8)
                    .chain(std::iter::repeat_n(200, 30))
                    .collect();
                assert_eq!(buf, want);
                f.close(c);
            }
        });
    }

    #[test]
    fn overlapping_writes_resolve_by_rank_order() {
        let pfs = tiny_pfs();
        World::run(2, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "ovl.bin", true).unwrap();
                let mine = vec![c.rank() as u8 + 1; 8];
                f.write_all_segments(c, &[(0, 8)], &mine).unwrap();
                let mut raw = [0u8; 8];
                f.read_at(c, 0, &mut raw).unwrap();
                // Higher source rank applied last wins.
                assert_eq!(raw, [2u8; 8]);
                f.close(c);
            }
        });
    }

    #[test]
    fn collective_beats_independent_on_interleaved_pattern() {
        // The paper's core performance claim: collective I/O on an
        // interleaved irregular pattern beats per-rank noncontiguous I/O.
        let cfg = MachineConfig::origin2000();
        let n = 8usize;
        let elems_per_rank = 4096usize;
        let run = |collective: bool| -> f64 {
            let pfs = Pfs::new(MachineConfig::origin2000());
            let times = World::run(n, cfg.clone(), {
                let pfs = Arc::clone(&pfs);
                move |c| {
                    let mut f = MpiFile::open_collective(c, &pfs, "perf.bin", true).unwrap();
                    let t = Datatype::resized(
                        (n * 8) as u64,
                        Datatype::indexed_block(1, vec![c.rank() as u64], Datatype::double()),
                    );
                    f.set_view(c, 0, t.flatten().unwrap()).unwrap();
                    let mine = vec![c.rank() as f64; elems_per_rank];
                    c.barrier();
                    let t0 = c.now();
                    if collective {
                        f.write_all(c, 0, &mine).unwrap();
                    } else {
                        f.write_view(c, 0, &mine).unwrap();
                        c.barrier();
                    }
                    let t1 = c.now();
                    f.close(c);
                    t1 - t0
                }
            });
            times.iter().cloned().fold(0.0, f64::max)
        };
        let coll = run(true);
        let indep = run(false);
        assert!(
            coll < indep,
            "two-phase ({coll}s) should beat independent sieved writes ({indep}s) on interleaved data"
        );
    }
}
