//! File views: tiled noncontiguous windows onto a file.
//!
//! An MPI file view is `(displacement, etype, filetype)`: starting at
//! `displacement`, the flattened filetype tiles the file with period
//! `extent`, and only the filetype's segments are *visible*. A view
//! linearizes the visible bytes; I/O operates in that linear space. This
//! is how SDM makes "write my nodes at their global positions" a single
//! request.

use crate::datatype::Flattened;
use crate::error::{MpiError, MpiResult};

/// An installed file view.
#[derive(Debug, Clone)]
pub struct FileView {
    /// Byte displacement where the view begins.
    pub disp: u64,
    /// Flattened filetype (tiles with period `ftype.extent`).
    pub ftype: Flattened,
    /// Cumulative visible bytes before each segment (same length as
    /// `ftype.segments`), precomputed for binary search.
    cum: Vec<u64>,
}

impl FileView {
    /// A contiguous byte view starting at `disp` (the default view).
    pub fn contiguous(disp: u64) -> Self {
        // A zero-segment contiguous view is special-cased in `segments`.
        Self {
            disp,
            ftype: Flattened {
                segments: vec![],
                extent: 0,
                size: 0,
            },
            cum: vec![],
        }
    }

    /// A view with the given flattened filetype at `disp`.
    pub fn new(disp: u64, ftype: Flattened) -> MpiResult<Self> {
        if ftype.size > 0 && ftype.extent < ftype.segments.last().map_or(0, |&(o, l)| o + l) {
            return Err(MpiError::InvalidDatatype(
                "filetype extent smaller than its last segment end".into(),
            ));
        }
        let mut cum = Vec::with_capacity(ftype.segments.len());
        let mut acc = 0;
        for &(_, len) in &ftype.segments {
            cum.push(acc);
            acc += len;
        }
        Ok(Self { disp, ftype, cum })
    }

    /// Whether this view linearizes to plain contiguous bytes. A
    /// filetype whose segments are gap-free is still *tiled* if its
    /// extent exceeds its size — the hole between tile instances makes
    /// the view noncontiguous — so the extent must equal the size too.
    pub fn is_contiguous(&self) -> bool {
        self.ftype.segments.is_empty()
            || (self.ftype.is_contiguous() && self.ftype.extent == self.ftype.size)
    }

    /// Map the visible range `[view_off, view_off + len)` to absolute file
    /// segments, coalescing adjacent runs.
    pub fn segments(&self, view_off: u64, len: u64) -> Vec<(u64, u64)> {
        if len == 0 {
            return vec![];
        }
        if self.is_contiguous() {
            return vec![(self.disp + view_off, len)];
        }
        let tsize = self.ftype.size;
        debug_assert!(tsize > 0);
        let extent = self.ftype.extent;
        let end = view_off + len;
        let t0 = view_off / tsize;
        let t1 = (end - 1) / tsize;
        let mut out: Vec<(u64, u64)> = Vec::new();
        for tile in t0..=t1 {
            let vis_base = tile * tsize;
            let lo = view_off.max(vis_base) - vis_base; // within-tile visible range
            let hi = end.min(vis_base + tsize) - vis_base;
            let file_base = self.disp + tile * extent;
            // First segment whose visible span ends after `lo`.
            let mut i = self.cum.partition_point(|&c| c <= lo);
            i = i.saturating_sub(1);
            // cum[i] <= lo < cum[i] + seg_len (or lo lands after seg i, advance)
            while i < self.ftype.segments.len() && self.cum[i] < hi {
                let (soff, slen) = self.ftype.segments[i];
                let seg_vis_lo = self.cum[i];
                let seg_vis_hi = seg_vis_lo + slen;
                let take_lo = lo.max(seg_vis_lo);
                let take_hi = hi.min(seg_vis_hi);
                if take_lo < take_hi {
                    let fo = file_base + soff + (take_lo - seg_vis_lo);
                    let flen = take_hi - take_lo;
                    match out.last_mut() {
                        Some((loff, llen)) if *loff + *llen == fo => *llen += flen,
                        _ => out.push((fo, flen)),
                    }
                }
                i += 1;
            }
        }
        out
    }

    /// Total visible bytes per tile (0 means contiguous/unbounded).
    pub fn tile_size(&self) -> u64 {
        self.ftype.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::Datatype;

    fn view_every_other_f64(disp: u64, n: usize) -> FileView {
        // Visible: elements 0, 2, 4, ... of an array of 2n f64s per tile.
        let displs: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
        let t = Datatype::resized(
            (2 * n) as u64 * 8,
            Datatype::indexed_block(1, displs, Datatype::double()),
        );
        FileView::new(disp, t.flatten().unwrap()).unwrap()
    }

    #[test]
    fn contiguous_view_passthrough() {
        let v = FileView::contiguous(100);
        assert!(v.is_contiguous());
        assert_eq!(v.segments(10, 20), vec![(110, 20)]);
        assert_eq!(v.segments(0, 0), vec![]);
    }

    #[test]
    fn strided_view_single_tile() {
        let v = view_every_other_f64(0, 4); // visible 4 f64 per 8-f64 tile
                                            // First 16 visible bytes = elements 0 and 2 of the file.
        assert_eq!(v.segments(0, 16), vec![(0, 8), (16, 8)]);
        // Visible bytes 8..24 = elements 2 and 4.
        assert_eq!(v.segments(8, 16), vec![(16, 8), (32, 8)]);
    }

    #[test]
    fn strided_view_crosses_tiles() {
        let v = view_every_other_f64(0, 2); // tile: 2 visible f64 in 4 (32B extent, 16B visible)
                                            // Visible 0..32 spans two tiles: file elements 0,2 then 4,6.
        assert_eq!(v.segments(0, 32), vec![(0, 8), (16, 8), (32, 8), (48, 8)]);
    }

    #[test]
    fn view_with_displacement() {
        let v = view_every_other_f64(1000, 2);
        assert_eq!(v.segments(0, 8), vec![(1000, 8)]);
        assert_eq!(v.segments(16, 8), vec![(1032, 8)]);
    }

    #[test]
    fn partial_segment_access() {
        let v = view_every_other_f64(0, 2);
        // Bytes 4..12 visible: second half of elem 0, first half of elem 2.
        assert_eq!(v.segments(4, 8), vec![(4, 4), (16, 4)]);
    }

    #[test]
    fn adjacent_tiles_coalesce_when_layout_allows() {
        // Filetype = first 8 bytes visible of a 16-byte extent; tiles at
        // 0..8, 16..24 — never coalesce.
        let t = Datatype::resized(16, Datatype::contiguous(8, Datatype::byte()));
        let v = FileView::new(0, t.flatten().unwrap()).unwrap();
        assert_eq!(v.segments(0, 16), vec![(0, 8), (16, 8)]);
        // Filetype covering its whole extent coalesces across tiles.
        let t2 = Datatype::contiguous(16, Datatype::byte());
        let v2 = FileView::new(0, t2.flatten().unwrap()).unwrap();
        assert_eq!(v2.segments(0, 64), vec![(0, 64)]);
    }

    #[test]
    fn bad_extent_rejected() {
        let f = Flattened {
            segments: vec![(0, 16)],
            extent: 8,
            size: 16,
        };
        assert!(FileView::new(0, f).is_err());
    }

    #[test]
    fn total_bytes_conserved() {
        let v = view_every_other_f64(64, 5);
        for (off, len) in [(0u64, 80u64), (8, 72), (40, 33), (3, 9)] {
            let segs = v.segments(off, len);
            assert_eq!(
                segs.iter().map(|&(_, l)| l).sum::<u64>(),
                len,
                "off={off} len={len}"
            );
            // Monotone, non-overlapping.
            for w in segs.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0);
            }
        }
    }
}
