//! Data sieving for independent noncontiguous I/O.
//!
//! ROMIO's trick for noncontiguous *independent* access: instead of one
//! small request per segment, read the whole covering extent in one large
//! request and pick out the useful bytes (for writes: read-modify-write).
//! Profitable when the useful-byte density is high enough and the extent
//! fits the sieve buffer; otherwise fall back to per-segment requests.

use std::sync::Arc;

use sdm_pfs::{Pfs, PfsFile, PfsResult};
use sdm_sim::Seconds;

use crate::io::hints::Hints;

/// Group consecutive segments so each group's covering extent fits the
/// sieve buffer. Returns index ranges into `segs`.
fn group_by_extent(segs: &[(u64, u64)], max_extent: u64) -> Vec<std::ops::Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0;
    while start < segs.len() {
        let lo = segs[start].0;
        let mut end = start + 1;
        while end < segs.len() && segs[end].0 + segs[end].1 - lo <= max_extent {
            end += 1;
        }
        groups.push(start..end);
        start = end;
    }
    groups
}

/// Useful-byte density of a segment group.
fn density(segs: &[(u64, u64)]) -> f64 {
    let useful: u64 = segs.iter().map(|&(_, l)| l).sum();
    let span = segs.last().map_or(0, |&(o, l)| o + l) - segs.first().map_or(0, |&(o, _)| o);
    if span == 0 {
        1.0
    } else {
        useful as f64 / span as f64
    }
}

/// Noncontiguous read of `segs` (absolute file segments, in order) into
/// the contiguous `buf` (which must be exactly as long as the summed
/// segment lengths). Returns the completion time.
pub fn sieved_read(
    pfs: &Arc<Pfs>,
    file: &PfsFile,
    segs: &[(u64, u64)],
    buf: &mut [u8],
    hints: &Hints,
    now: Seconds,
) -> PfsResult<Seconds> {
    debug_assert_eq!(
        segs.iter().map(|&(_, l)| l).sum::<u64>() as usize,
        buf.len()
    );
    let mut t = now;
    let mut cursor = 0usize;
    for range in group_by_extent(segs, hints.sieve_buffer_size as u64) {
        let group = &segs[range];
        let useful: usize = group.iter().map(|&(_, l)| l as usize).sum();
        if group.len() > 1 && density(group) >= hints.sieve_min_density {
            // Sieve: one large read of the covering extent.
            let lo = group[0].0;
            let hi = group.last().unwrap().0 + group.last().unwrap().1;
            let mut staging = vec![0u8; (hi - lo) as usize];
            t = pfs.read_exact_at(file, lo, &mut staging, t)?;
            for &(off, len) in group {
                let s = (off - lo) as usize;
                buf[cursor..cursor + len as usize].copy_from_slice(&staging[s..s + len as usize]);
                cursor += len as usize;
            }
            t += pfs.config().io.client_copy(useful);
            pfs.counters().incr("mpi.sieve_reads");
        } else {
            // Direct per-segment reads.
            for &(off, len) in group {
                t = pfs.read_exact_at(file, off, &mut buf[cursor..cursor + len as usize], t)?;
                cursor += len as usize;
            }
        }
    }
    Ok(t)
}

/// Noncontiguous write of the contiguous `data` to `segs` (absolute file
/// segments, in order). Uses read-modify-write over covering extents when
/// dense. Returns the completion time.
///
/// Note: like ROMIO without file locking, concurrent sieved writes to
/// overlapping extents are not atomic; SDM only issues non-overlapping
/// independent writes.
pub fn sieved_write(
    pfs: &Arc<Pfs>,
    file: &PfsFile,
    segs: &[(u64, u64)],
    data: &[u8],
    hints: &Hints,
    now: Seconds,
) -> PfsResult<Seconds> {
    debug_assert_eq!(
        segs.iter().map(|&(_, l)| l).sum::<u64>() as usize,
        data.len()
    );
    let mut t = now;
    let mut cursor = 0usize;
    for range in group_by_extent(segs, hints.sieve_buffer_size as u64) {
        let group = &segs[range];
        if group.len() > 1 && density(group) >= hints.sieve_min_density {
            let lo = group[0].0;
            let hi = group.last().unwrap().0 + group.last().unwrap().1;
            let mut staging = vec![0u8; (hi - lo) as usize];
            // Read-modify-write: fetch existing bytes for the holes (the
            // file may be shorter than the extent; short reads are fine —
            // the tail is zeros, matching write-extension semantics).
            let (_n, rt) = pfs.read_at(file, lo, &mut staging, t)?;
            t = rt;
            for &(off, len) in group {
                let s = (off - lo) as usize;
                staging[s..s + len as usize].copy_from_slice(&data[cursor..cursor + len as usize]);
                cursor += len as usize;
            }
            t = pfs.write_at(file, lo, &staging, t)?;
            pfs.counters().incr("mpi.sieve_writes");
        } else {
            for &(off, len) in group {
                t = pfs.write_at(file, off, &data[cursor..cursor + len as usize], t)?;
                cursor += len as usize;
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_sim::MachineConfig;

    fn setup() -> (Arc<Pfs>, PfsFile) {
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let (f, _) = pfs.open_or_create("sieve.dat", 0.0).unwrap();
        (pfs, f)
    }

    #[test]
    fn group_by_extent_respects_limit() {
        let segs = vec![(0u64, 10u64), (20, 10), (100, 10), (120, 10)];
        let groups = group_by_extent(&segs, 64);
        assert_eq!(groups, vec![0..2, 2..4]);
        let one = group_by_extent(&segs, 1000);
        assert_eq!(one, vec![0..4]);
    }

    #[test]
    fn density_of_dense_and_sparse() {
        assert!((density(&[(0, 10), (10, 10)]) - 1.0).abs() < 1e-12);
        assert!(density(&[(0, 1), (99, 1)]) < 0.03);
    }

    #[test]
    fn sieved_write_then_read_round_trip() {
        let (pfs, f) = setup();
        // Preexisting content to verify RMW preserves holes.
        pfs.write_at(&f, 0, &[9u8; 64], 0.0).unwrap();
        let segs = vec![(4u64, 4u64), (16, 8), (40, 4)];
        let data: Vec<u8> = (1..=16).collect();
        sieved_write(&pfs, &f, &segs, &data, &Hints::default(), 0.0).unwrap();
        let mut back = vec![0u8; 16];
        sieved_read(&pfs, &f, &segs, &mut back, &Hints::default(), 0.0).unwrap();
        assert_eq!(back, data);
        // Holes untouched.
        let mut hole = [0u8; 4];
        pfs.read_exact_at(&f, 8, &mut hole, 0.0).unwrap();
        assert_eq!(hole, [9; 4]);
    }

    #[test]
    fn sparse_segments_take_direct_path() {
        let (pfs, f) = setup();
        pfs.write_at(&f, 0, &vec![0u8; 100_000], 0.0).unwrap();
        let hints = Hints {
            sieve_min_density: 0.5,
            ..Default::default()
        };
        // Two 1-byte segments 50KB apart: density ~0, must go direct.
        let segs = vec![(0u64, 1u64), (50_000, 1)];
        sieved_write(&pfs, &f, &segs, &[7, 8], &hints, 0.0).unwrap();
        assert_eq!(pfs.counters().get("mpi.sieve_writes"), 0);
        let mut b = [0u8; 1];
        pfs.read_exact_at(&f, 50_000, &mut b, 0.0).unwrap();
        assert_eq!(b[0], 8);
    }

    #[test]
    fn dense_segments_use_sieve() {
        let (pfs, f) = setup();
        let segs: Vec<(u64, u64)> = (0..100u64).map(|i| (i * 10, 8)).collect();
        let data = vec![1u8; 800];
        sieved_write(&pfs, &f, &segs, &data, &Hints::default(), 0.0).unwrap();
        assert!(pfs.counters().get("mpi.sieve_writes") >= 1);
        let mut back = vec![0u8; 800];
        sieved_read(&pfs, &f, &segs, &mut back, &Hints::default(), 0.0).unwrap();
        assert_eq!(back, data);
        assert!(pfs.counters().get("mpi.sieve_reads") >= 1);
    }

    #[test]
    fn sieve_beats_per_segment_in_virtual_time() {
        let cfg = MachineConfig::origin2000();
        let per_req = cfg.io.request_latency;
        let pfs = Pfs::new(cfg);
        let (f, _) = pfs.open_or_create("t.dat", 0.0).unwrap();
        pfs.write_at(&f, 0, &vec![0u8; 1 << 20], 0.0).unwrap();
        pfs.reset_timing();
        let segs: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * 1000, 800)).collect();
        let mut buf = vec![0u8; 800_000];
        let sieved = sieved_read(&pfs, &f, &segs, &mut buf, &Hints::default(), 0.0).unwrap();
        pfs.reset_timing();
        let direct = sieved_read(
            &pfs,
            &f,
            &segs,
            &mut buf,
            &Hints {
                sieve_min_density: 2.0,
                ..Default::default()
            }, // force direct
            0.0,
        )
        .unwrap();
        assert!(
            sieved < direct / 5.0,
            "sieving ({sieved}s) should dodge ~1000 request latencies ({direct}s, {per_req}s each)"
        );
    }

    #[test]
    fn empty_request_is_noop() {
        let (pfs, f) = setup();
        let t = sieved_read(&pfs, &f, &[], &mut [], &Hints::default(), 5.0).unwrap();
        assert_eq!(t, 5.0);
    }
}
