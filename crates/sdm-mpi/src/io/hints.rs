//! I/O hints (the MPI `Info` knobs SDM passes through).
//!
//! The paper's Section 2 lists "the ability to pass hints to the
//! implementation about access patterns, file-striping parameters, and so
//! forth" among the MPI-IO optimizations SDM exploits. These are the
//! ROMIO hints that matter for the reproduced experiments.

/// Collective-buffering and data-sieving parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Hints {
    /// Number of aggregator ranks in two-phase collective I/O
    /// (`cb_nodes`). `None` means every rank aggregates.
    pub cb_nodes: Option<usize>,
    /// Aggregator staging-buffer size in bytes (`cb_buffer_size`). Each
    /// aggregator moves its file domain through a buffer of this size.
    pub cb_buffer_size: usize,
    /// Maximum covering-extent size for independent data sieving
    /// (`ind_rd_buffer_size`/`ind_wr_buffer_size` folded into one knob).
    pub sieve_buffer_size: usize,
    /// Minimum useful-byte fraction of a sieved extent; below this the
    /// runtime reads segments individually instead.
    pub sieve_min_density: f64,
}

impl Default for Hints {
    fn default() -> Self {
        Self {
            cb_nodes: None,
            cb_buffer_size: 16 << 20, // ROMIO default: 16 MB
            sieve_buffer_size: 4 << 20,
            sieve_min_density: 0.25,
        }
    }
}

impl Hints {
    /// Effective aggregator count for a world of `size` ranks.
    pub fn aggregators(&self, size: usize) -> usize {
        self.cb_nodes.unwrap_or(size).clamp(1, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_aggregators_is_world_size() {
        assert_eq!(Hints::default().aggregators(64), 64);
    }

    #[test]
    fn cb_nodes_clamped() {
        let h = Hints {
            cb_nodes: Some(100),
            ..Default::default()
        };
        assert_eq!(h.aggregators(8), 8);
        let h = Hints {
            cb_nodes: Some(0),
            ..Default::default()
        };
        assert_eq!(h.aggregators(8), 1);
        let h = Hints {
            cb_nodes: Some(4),
            ..Default::default()
        };
        assert_eq!(h.aggregators(8), 4);
    }
}
