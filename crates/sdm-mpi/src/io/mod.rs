//! MPI-IO over the simulated PFS: open/close, file views, independent
//! I/O with data sieving, and two-phase collective I/O.

pub mod hints;
pub mod sieve;
pub mod twophase;
pub mod view;

use std::sync::Arc;

use sdm_pfs::{Pfs, PfsFile};

use crate::comm::Comm;
use crate::datatype::Flattened;
use crate::error::MpiResult;
use crate::pod::{as_bytes, as_bytes_mut, Pod};

pub use hints::Hints;
pub use view::FileView;

/// An open MPI file: one per rank, sharing the PFS image.
///
/// Mirrors the `MPI_File` surface SDM uses: collective open,
/// `set_view`, independent `read_at`/`write_at`, independent
/// noncontiguous I/O through the view (data sieving), and collective
/// `read_all`/`write_all` (two-phase).
#[derive(Debug)]
pub struct MpiFile {
    pfs: Arc<Pfs>,
    file: PfsFile,
    view: FileView,
    hints: Hints,
}

impl MpiFile {
    /// Collective open: every rank of `comm` calls this. Charges each
    /// rank's open at the (serializing) metadata service and synchronizes,
    /// like `MPI_File_open` on a real system.
    pub fn open_collective(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        name: &str,
        create: bool,
    ) -> MpiResult<Self> {
        let (file, t) = if create {
            pfs.open_or_create(name, comm.now())?
        } else {
            pfs.open(name, comm.now())?
        };
        comm.sync_to(t);
        comm.barrier();
        Ok(Self {
            pfs: Arc::clone(pfs),
            file,
            view: FileView::contiguous(0),
            hints: Hints::default(),
        })
    }

    /// Independent open (no synchronization) — used by rank 0 in the
    /// "original application" baselines.
    pub fn open_independent(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        name: &str,
        create: bool,
    ) -> MpiResult<Self> {
        let (file, t) = if create {
            pfs.open_or_create(name, comm.now())?
        } else {
            pfs.open(name, comm.now())?
        };
        comm.sync_to(t);
        Ok(Self {
            pfs: Arc::clone(pfs),
            file,
            view: FileView::contiguous(0),
            hints: Hints::default(),
        })
    }

    /// Replace the I/O hints.
    pub fn set_hints(&mut self, hints: Hints) {
        self.hints = hints;
    }

    /// Current hints.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// Underlying PFS handle (for length queries etc.).
    pub fn pfs_file(&self) -> &PfsFile {
        &self.file
    }

    /// The file system this file lives on.
    pub fn pfs(&self) -> &Arc<Pfs> {
        &self.pfs
    }

    /// Install a file view (`MPI_File_set_view`): `disp` plus a flattened
    /// filetype. Charges the view cost.
    pub fn set_view(&mut self, comm: &mut Comm, disp: u64, ftype: Flattened) -> MpiResult<()> {
        self.view = FileView::new(disp, ftype)?;
        let t = self.pfs.view_cost(comm.now());
        comm.sync_to(t);
        Ok(())
    }

    /// Reset to the default contiguous view at displacement `disp`.
    pub fn set_contiguous_view(&mut self, comm: &mut Comm, disp: u64) {
        self.view = FileView::contiguous(disp);
        let t = self.pfs.view_cost(comm.now());
        comm.sync_to(t);
    }

    /// The installed view.
    pub fn view(&self) -> &FileView {
        &self.view
    }

    /// Independent contiguous write at an absolute byte offset (ignores
    /// the view), like `MPI_File_write_at`.
    pub fn write_at<T: Pod>(&self, comm: &mut Comm, offset: u64, data: &[T]) -> MpiResult<()> {
        let t = self
            .pfs
            .write_at(&self.file, offset, as_bytes(data), comm.now())?;
        comm.sync_to(t);
        Ok(())
    }

    /// Independent contiguous read at an absolute byte offset (ignores the
    /// view), like `MPI_File_read_at`. Fails on short reads.
    pub fn read_at<T: Pod>(&self, comm: &mut Comm, offset: u64, buf: &mut [T]) -> MpiResult<()> {
        let t = self
            .pfs
            .read_exact_at(&self.file, offset, as_bytes_mut(buf), comm.now())?;
        comm.sync_to(t);
        Ok(())
    }

    /// Independent noncontiguous write through the view starting at
    /// visible byte `view_off`, using data sieving where profitable.
    pub fn write_view<T: Pod>(&self, comm: &mut Comm, view_off: u64, data: &[T]) -> MpiResult<()> {
        let bytes = as_bytes(data);
        let segs = self.view.segments(view_off, bytes.len() as u64);
        let t = sieve::sieved_write(&self.pfs, &self.file, &segs, bytes, &self.hints, comm.now())?;
        comm.sync_to(t);
        Ok(())
    }

    /// Independent noncontiguous read through the view starting at visible
    /// byte `view_off`, using data sieving where profitable.
    pub fn read_view<T: Pod>(
        &self,
        comm: &mut Comm,
        view_off: u64,
        buf: &mut [T],
    ) -> MpiResult<()> {
        let nbytes = std::mem::size_of_val(buf) as u64;
        let segs = self.view.segments(view_off, nbytes);
        let bytes = as_bytes_mut(buf);
        let t = sieve::sieved_read(&self.pfs, &self.file, &segs, bytes, &self.hints, comm.now())?;
        comm.sync_to(t);
        Ok(())
    }

    /// Collective close.
    pub fn close(self, comm: &mut Comm) {
        let t = self.pfs.close(&self.file, comm.now());
        comm.sync_to(t);
        comm.barrier();
    }

    /// Independent close (no synchronization).
    pub fn close_independent(self, comm: &mut Comm) {
        let t = self.pfs.close(&self.file, comm.now());
        comm.sync_to(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use crate::datatype::Datatype;
    use sdm_sim::MachineConfig;

    fn pfs() -> Arc<Pfs> {
        Pfs::new(MachineConfig::test_tiny())
    }

    #[test]
    fn collective_open_write_read() {
        let pfs = pfs();
        World::run(4, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "data.bin", true).unwrap();
                // Each rank writes its rank id at its slot.
                f.write_at(c, c.rank() as u64 * 8, &[c.rank() as u64])
                    .unwrap();
                c.barrier();
                let mut all = vec![0u64; 4];
                f.read_at(c, 0, &mut all).unwrap();
                assert_eq!(all, vec![0, 1, 2, 3]);
                f.close(c);
            }
        });
    }

    #[test]
    fn view_write_scatters_into_file() {
        let pfs = pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "v.bin", true).unwrap();
                // View: elements 1 and 3 of a 4-f64 record, tiled.
                let t = Datatype::resized(
                    32,
                    Datatype::indexed_block(1, vec![1, 3], Datatype::double()),
                );
                f.set_view(c, 0, t.flatten().unwrap()).unwrap();
                f.write_view(c, 0, &[10.0f64, 30.0, 11.0, 31.0]).unwrap();
                // Raw file: [_, 10, _, 30, _, 11, _, 31]
                f.set_contiguous_view(c, 0);
                let mut raw = vec![0.0f64; 8];
                f.read_at(c, 0, &mut raw).unwrap();
                assert_eq!(raw, vec![0.0, 10.0, 0.0, 30.0, 0.0, 11.0, 0.0, 31.0]);
                // And read back through the view.
                let t = Datatype::resized(
                    32,
                    Datatype::indexed_block(1, vec![1, 3], Datatype::double()),
                );
                f.set_view(c, 0, t.flatten().unwrap()).unwrap();
                let mut back = vec![0.0f64; 4];
                f.read_view(c, 0, &mut back).unwrap();
                assert_eq!(back, vec![10.0, 30.0, 11.0, 31.0]);
                f.close(c);
            }
        });
    }

    #[test]
    fn view_with_displacement_offsets_file_data() {
        let pfs = pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "d.bin", true).unwrap();
                f.set_contiguous_view(c, 16);
                f.write_view(c, 0, &[7u64]).unwrap();
                f.set_contiguous_view(c, 0);
                let mut raw = vec![0u64; 3];
                f.read_at(c, 0, &mut raw).unwrap();
                assert_eq!(raw, vec![0, 0, 7]);
                f.close(c);
            }
        });
    }

    #[test]
    fn missing_file_open_fails() {
        let pfs = pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                assert!(MpiFile::open_collective(c, &pfs, "absent", false).is_err());
            }
        });
    }

    #[test]
    fn read_past_eof_errors() {
        let pfs = pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let f = MpiFile::open_collective(c, &pfs, "short.bin", true).unwrap();
                f.write_at(c, 0, &[1u8, 2]).unwrap();
                let mut buf = [0u8; 10];
                assert!(f.read_at(c, 0, &mut buf).is_err());
                f.close(c);
            }
        });
    }
}
