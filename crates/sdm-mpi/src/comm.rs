//! SPMD world launch and the per-rank communicator.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use sdm_sim::stats::Counters;
use sdm_sim::trace::{EventKind, Trace};
use sdm_sim::{MachineConfig, Seconds, VClock};

use crate::envelope::{tags, Envelope, Tag};
use crate::error::{MpiError, MpiResult};
use crate::pod::{as_bytes, vec_from_bytes, Pod};

/// Sense-reversing barrier that also computes the max of a value carried
/// by each participant (used to synchronize virtual clocks).
#[derive(Debug)]
struct MaxBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    size: usize,
    count: usize,
    generation: u64,
    acc: f64,
    /// Results of the two most recent generations (gen % 2 indexes).
    results: [f64; 2],
}

impl MaxBarrier {
    fn new(size: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState {
                size,
                count: 0,
                generation: 0,
                acc: f64::NEG_INFINITY,
                results: [0.0; 2],
            }),
            cv: Condvar::new(),
        }
    }

    /// Enter with value `x`; returns the max over all participants of
    /// this generation.
    fn rendezvous_max(&self, x: f64) -> f64 {
        let mut s = self.state.lock();
        let gen = s.generation;
        s.acc = s.acc.max(x);
        s.count += 1;
        if s.count == s.size {
            let result = s.acc;
            s.results[(gen % 2) as usize] = result;
            s.count = 0;
            s.acc = f64::NEG_INFINITY;
            s.generation += 1;
            self.cv.notify_all();
            result
        } else {
            while s.generation == gen {
                self.cv.wait(&mut s);
            }
            s.results[(gen % 2) as usize]
        }
    }
}

/// State shared by every rank of a world.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) config: Arc<MachineConfig>,
    barrier: MaxBarrier,
    counters: Counters,
    trace: Trace,
}

/// SPMD launcher.
///
/// ```
/// use sdm_mpi::World;
/// use sdm_sim::MachineConfig;
///
/// let sums = World::run(4, MachineConfig::test_tiny(), |comm| {
///     let me = comm.rank() as u64;
///     comm.allreduce_sum(&[me])[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
pub struct World;

impl World {
    /// Run `f` on `n` ranks and return each rank's result, indexed by rank.
    ///
    /// Panics in any rank propagate after all threads join.
    pub fn run<T, F>(n: usize, config: MachineConfig, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_traced(n, config, Trace::disabled(), f)
    }

    /// Like [`World::run`] with an externally supplied event trace.
    pub fn run_traced<T, F>(n: usize, config: MachineConfig, trace: Trace, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(n > 0, "world needs at least one rank");
        let shared = Arc::new(Shared {
            config: Arc::new(config),
            barrier: MaxBarrier::new(n),
            counters: Counters::new(),
            trace,
        });
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }
        let f = &f;
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let txs = txs.clone();
                let shared = Arc::clone(&shared);
                handles.push(scope.spawn(move || {
                    let mut comm = Comm {
                        rank,
                        size: n,
                        clock: VClock::new(),
                        rx,
                        txs,
                        pending: Vec::new(),
                        finished: vec![false; n],
                        shared,
                    };
                    f(&mut comm)
                }));
            }
            // Drop our copies of the senders so rank recv() can observe
            // disconnection once all peers are done.
            drop(txs);
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }
}

/// The per-rank communicator: identity, virtual clock, mailbox, and the
/// point-to-point layer. Collectives live in [`crate::collective`], file
/// I/O in [`crate::io`].
pub struct Comm {
    rank: usize,
    size: usize,
    clock: VClock,
    rx: Receiver<Envelope>,
    txs: Vec<Sender<Envelope>>,
    /// Arrived-but-unmatched messages, in arrival order.
    pending: Vec<Envelope>,
    /// Peers whose communicator has been dropped (FIN received).
    finished: Vec<bool>,
    shared: Arc<Shared>,
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Tell every peer this rank is gone, so their blocking receives
        // from us error out instead of waiting forever. Failures are
        // fine: the peer may already be gone itself.
        for dst in 0..self.size {
            if dst != self.rank {
                let _ = self.txs[dst].send(Envelope {
                    src: self.rank,
                    tag: tags::FIN,
                    depart: self.clock.now(),
                    payload: Vec::new(),
                });
            }
        }
    }
}

impl Comm {
    /// This rank's id in `[0, size)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    /// Charge local computation time.
    #[inline]
    pub fn compute(&mut self, dt: Seconds) {
        self.clock.advance(dt);
    }

    /// Move the clock forward to `t` (e.g. after a PFS operation).
    #[inline]
    pub fn sync_to(&mut self, t: Seconds) {
        self.clock.sync_to(t);
    }

    /// Machine configuration in force.
    pub fn config(&self) -> &MachineConfig {
        &self.shared.config
    }

    /// World-shared counters.
    pub fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    /// World-shared trace.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    fn check_rank(&self, r: usize) -> MpiResult<()> {
        if r >= self.size {
            return Err(MpiError::InvalidRank {
                rank: r,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Eager byte send. The sender is busy for the injection cost; the
    /// message's wire time is charged on the receive side.
    pub fn send_bytes(&mut self, dst: usize, tag: Tag, payload: &[u8]) -> MpiResult<()> {
        self.check_rank(dst)?;
        let depart = self.clock.now();
        self.clock
            .advance(self.shared.config.network.send_busy(payload.len()));
        self.shared
            .counters
            .add("mpi.send_bytes", payload.len() as u64);
        self.shared.counters.incr("mpi.sends");
        if self.shared.trace.is_enabled() {
            self.shared.trace.record(
                depart,
                self.rank,
                EventKind::Send,
                format!("to={dst} tag={tag}"),
            );
        }
        self.txs[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                depart,
                payload: payload.to_vec(),
            })
            .map_err(|_| MpiError::Disconnected)
    }

    /// Typed send of a Pod slice.
    pub fn send<T: Pod>(&mut self, dst: usize, tag: Tag, data: &[T]) -> MpiResult<()> {
        self.send_bytes(dst, tag, as_bytes(data))
    }

    /// Take the first pending or incoming envelope matching `(src, tag)`.
    fn take_matching(&mut self, src: usize, tag: Tag) -> MpiResult<Envelope> {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            return Ok(self.pending.remove(pos));
        }
        loop {
            // A peer that has dropped its communicator can never send the
            // message we are waiting for.
            if self.finished[src] {
                return Err(MpiError::Disconnected);
            }
            let env = self.rx.recv().map_err(|_| MpiError::Disconnected)?;
            if env.tag == tags::FIN {
                self.finished[env.src] = true;
                continue;
            }
            if env.src == src && env.tag == tag {
                return Ok(env);
            }
            self.pending.push(env);
        }
    }

    /// Blocking byte receive from a specific source and tag. Advances the
    /// clock to the message completion time.
    pub fn recv_bytes(&mut self, src: usize, tag: Tag) -> MpiResult<Vec<u8>> {
        self.check_rank(src)?;
        let env = self.take_matching(src, tag)?;
        let net = &self.shared.config.network;
        let arrival = env.depart + net.wire_time(env.payload.len());
        self.clock.sync_to(arrival);
        self.clock.advance(net.recv_overhead());
        self.shared
            .counters
            .add("mpi.recv_bytes", env.payload.len() as u64);
        self.shared.counters.incr("mpi.recvs");
        if self.shared.trace.is_enabled() {
            self.shared.trace.record(
                self.clock.now(),
                self.rank,
                EventKind::Recv,
                format!("from={src} tag={tag}"),
            );
        }
        Ok(env.payload)
    }

    /// Typed receive into a fresh vector.
    pub fn recv_vec<T: Pod>(&mut self, src: usize, tag: Tag) -> MpiResult<Vec<T>> {
        let bytes = self.recv_bytes(src, tag)?;
        if bytes.len() % std::mem::size_of::<T>() != 0 {
            return Err(MpiError::LengthMismatch {
                expected: bytes.len() / std::mem::size_of::<T>() * std::mem::size_of::<T>(),
                got: bytes.len(),
            });
        }
        Ok(vec_from_bytes(&bytes))
    }

    /// Typed receive into an existing buffer; the payload must match the
    /// buffer length exactly.
    pub fn recv_into<T: Pod>(&mut self, src: usize, tag: Tag, dst: &mut [T]) -> MpiResult<()> {
        let bytes = self.recv_bytes(src, tag)?;
        let want = std::mem::size_of_val(dst);
        if bytes.len() != want {
            return Err(MpiError::LengthMismatch {
                expected: want,
                got: bytes.len(),
            });
        }
        crate::pod::copy_into(&bytes, dst);
        Ok(())
    }

    /// Combined send+receive (deadlock-free because sends are eager).
    pub fn sendrecv<T: Pod>(
        &mut self,
        dst: usize,
        send_data: &[T],
        src: usize,
        tag: Tag,
    ) -> MpiResult<Vec<T>> {
        self.send(dst, tag, send_data)?;
        self.recv_vec(src, tag)
    }

    /// Barrier: all ranks wait; every clock jumps to the max entry time
    /// plus one synchronization latency.
    pub fn barrier(&mut self) {
        let t_max = self.shared.barrier.rendezvous_max(self.clock.now());
        self.clock
            .sync_to(t_max + self.shared.config.network.latency);
        self.shared.counters.incr("mpi.barriers");
    }

    /// Rendezvous on the max of an arbitrary value (also acts as a
    /// barrier, but does NOT touch the clock). Used by harnesses to agree
    /// on wall-clock-style maxima outside the virtual-time model.
    pub fn rendezvous_max(&self, x: f64) -> f64 {
        self.shared.barrier.rendezvous_max(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::tags;

    fn tiny() -> MachineConfig {
        MachineConfig::test_tiny()
    }

    #[test]
    fn world_returns_results_by_rank() {
        let out = World::run(5, tiny(), |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn ping_pong_round_trips_data() {
        let out = World::run(2, tiny(), |c| {
            if c.rank() == 0 {
                c.send(1, 7, &[1.5f64, 2.5]).unwrap();
                c.recv_vec::<f64>(1, 8).unwrap()
            } else {
                let v = c.recv_vec::<f64>(0, 7).unwrap();
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                c.send(0, 8, &doubled).unwrap();
                doubled
            }
        });
        assert_eq!(out[0], vec![3.0, 5.0]);
    }

    #[test]
    fn out_of_order_tags_match_correctly() {
        let out = World::run(2, tiny(), |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[1u32]).unwrap();
                c.send(1, 2, &[2u32]).unwrap();
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = c.recv_vec::<u32>(0, 2).unwrap();
                let a = c.recv_vec::<u32>(0, 1).unwrap();
                (b[0] * 10 + a[0]) as usize
            }
        });
        assert_eq!(out[1], 21);
    }

    #[test]
    fn clock_advances_with_message_size() {
        let cfg = MachineConfig::origin2000();
        let out = World::run(2, cfg, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &vec![0u8; 1 << 20]).unwrap();
                c.now()
            } else {
                c.recv_bytes(0, 1).unwrap();
                c.now()
            }
        });
        assert!(
            out[1] > out[0],
            "receiver {}'s clock should trail sender {}",
            out[1],
            out[0]
        );
        assert!(out[1] > 1e-4, "1MB transfer should cost real virtual time");
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = World::run(4, tiny(), |c| {
            c.compute(c.rank() as f64); // rank r is r seconds ahead
            c.barrier();
            c.now()
        });
        let expected = out[3];
        for t in &out {
            assert!(
                (t - expected).abs() < 1e-9,
                "all clocks equal after barrier: {out:?}"
            );
        }
        assert!(expected >= 3.0);
    }

    #[test]
    fn sendrecv_shifts_along_ring() {
        let out = World::run(3, tiny(), |c| {
            let right = (c.rank() + 1) % 3;
            let left = (c.rank() + 2) % 3;
            let got = c
                .sendrecv(right, &[c.rank() as u64], left, tags::SDM_RING)
                .unwrap();
            got[0]
        });
        assert_eq!(out, vec![2, 0, 1]);
    }

    #[test]
    fn invalid_rank_is_error() {
        World::run(2, tiny(), |c| {
            let err = c.send(5, 0, &[0u8]).unwrap_err();
            assert!(matches!(err, MpiError::InvalidRank { rank: 5, size: 2 }));
        });
    }

    #[test]
    fn disconnection_surfaces_as_error() {
        let out = World::run(2, tiny(), |c| {
            if c.rank() == 0 {
                // Rank 1 exits immediately; this recv must error, not hang.
                matches!(c.recv_bytes(1, 9), Err(MpiError::Disconnected))
            } else {
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn typed_length_mismatch_detected() {
        World::run(2, tiny(), |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 3, &[1, 2, 3]).unwrap();
            } else {
                let err = c.recv_vec::<u32>(0, 3).unwrap_err();
                assert!(matches!(err, MpiError::LengthMismatch { .. }));
            }
        });
    }

    #[test]
    fn recv_into_checks_exact_length() {
        World::run(2, tiny(), |c| {
            if c.rank() == 0 {
                c.send(1, 4, &[1u32, 2]).unwrap();
                c.send(1, 5, &[1u32, 2]).unwrap();
            } else {
                let mut buf = [0u32; 2];
                c.recv_into(0, 4, &mut buf).unwrap();
                assert_eq!(buf, [1, 2]);
                let mut small = [0u32; 1];
                assert!(c.recv_into(0, 5, &mut small).is_err());
            }
        });
    }

    #[test]
    fn self_send_recv_works() {
        let out = World::run(1, tiny(), |c| {
            c.send(0, 1, &[42u64]).unwrap();
            c.recv_vec::<u64>(0, 1).unwrap()[0]
        });
        assert_eq!(out[0], 42);
    }

    #[test]
    fn counters_accumulate_world_traffic() {
        let cfg = tiny();
        World::run(2, cfg, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0u8; 100]).unwrap();
            } else {
                c.recv_bytes(0, 1).unwrap();
            }
            c.barrier();
            if c.rank() == 0 {
                assert_eq!(c.counters().get("mpi.send_bytes"), 100);
                assert_eq!(c.counters().get("mpi.recv_bytes"), 100);
            }
        });
    }

    #[test]
    fn repeated_barriers_do_not_deadlock_or_cross_talk() {
        let out = World::run(3, tiny(), |c| {
            let mut acc = 0.0;
            for i in 0..50 {
                if c.rank() == i % 3 {
                    c.compute(0.001);
                }
                c.barrier();
                acc = c.now();
            }
            acc
        });
        assert!((out[0] - out[1]).abs() < 1e-9 && (out[1] - out[2]).abs() < 1e-9);
    }
}
