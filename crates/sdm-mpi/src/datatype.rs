//! MPI derived datatypes and flattening.
//!
//! SDM's central trick (after [Thakur, Gropp, Lusk SC'98]) is describing
//! noncontiguous data — the irregular file regions named by a map array —
//! as derived datatypes, so one collective I/O call moves everything.
//! This module is the datatype algebra: constructors mirroring
//! `MPI_Type_contiguous` / `vector` / `indexed` / `create_hindexed`, and
//! [`Datatype::flatten`] which lowers any type to a sorted-by-construction
//! list of `(byte offset, byte length)` segments with adjacent runs
//! coalesced — the representation the I/O layer consumes.

use crate::error::{MpiError, MpiResult};

/// A derived datatype: a tree of layout combinators over an elementary
/// byte size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// An elementary type of the given byte size (e.g. 8 for f64).
    Elementary(usize),
    /// `count` repetitions laid out back to back.
    Contiguous {
        /// Repetition count.
        count: usize,
        /// Inner type.
        inner: Box<Datatype>,
    },
    /// `count` blocks of `blocklen` inner elements, successive blocks
    /// separated by `stride` inner extents (like `MPI_Type_vector`).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Distance between block starts, in inner extents.
        stride: usize,
        /// Inner type.
        inner: Box<Datatype>,
    },
    /// Blocks at explicit displacements (in inner extents), each with its
    /// own length (like `MPI_Type_indexed`).
    Indexed {
        /// Per-block element counts.
        blocklens: Vec<usize>,
        /// Per-block displacements in inner extents (must be >= 0).
        displs: Vec<u64>,
        /// Inner type.
        inner: Box<Datatype>,
    },
    /// Blocks at explicit *byte* displacements (like `MPI_Type_create_hindexed`).
    Hindexed {
        /// (byte displacement, inner-element count) per block.
        blocks: Vec<(u64, usize)>,
        /// Inner type.
        inner: Box<Datatype>,
    },
    /// An inner type with its extent overridden (like `MPI_Type_create_resized`
    /// with lb = 0), controlling the tiling period in file views.
    Resized {
        /// The overridden extent in bytes.
        extent: u64,
        /// Inner type.
        inner: Box<Datatype>,
    },
}

impl Datatype {
    /// 8-byte float (C `double`), the paper's dominant element type.
    pub fn double() -> Self {
        Datatype::Elementary(8)
    }

    /// 4-byte integer (C `int`), used for edge/index arrays.
    pub fn int32() -> Self {
        Datatype::Elementary(4)
    }

    /// 8-byte integer.
    pub fn int64() -> Self {
        Datatype::Elementary(8)
    }

    /// Single byte.
    pub fn byte() -> Self {
        Datatype::Elementary(1)
    }

    /// `count` copies of `inner`, contiguous.
    pub fn contiguous(count: usize, inner: Datatype) -> Self {
        Datatype::Contiguous {
            count,
            inner: Box::new(inner),
        }
    }

    /// Strided blocks (see [`Datatype::Vector`]).
    pub fn vector(count: usize, blocklen: usize, stride: usize, inner: Datatype) -> Self {
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner: Box::new(inner),
        }
    }

    /// Indexed blocks with per-block lengths.
    pub fn indexed(blocklens: Vec<usize>, displs: Vec<u64>, inner: Datatype) -> Self {
        Datatype::Indexed {
            blocklens,
            displs,
            inner: Box::new(inner),
        }
    }

    /// Indexed blocks of uniform length `blocklen` (like
    /// `MPI_Type_create_indexed_block`).
    pub fn indexed_block(blocklen: usize, displs: Vec<u64>, inner: Datatype) -> Self {
        Datatype::Indexed {
            blocklens: vec![blocklen; displs.len()],
            displs,
            inner: Box::new(inner),
        }
    }

    /// Byte-displacement blocks.
    pub fn hindexed(blocks: Vec<(u64, usize)>, inner: Datatype) -> Self {
        Datatype::Hindexed {
            blocks,
            inner: Box::new(inner),
        }
    }

    /// Override the extent (tiling period).
    pub fn resized(extent: u64, inner: Datatype) -> Self {
        Datatype::Resized {
            extent,
            inner: Box::new(inner),
        }
    }

    /// Total payload bytes one instance of this type describes.
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Elementary(s) => *s as u64,
            Datatype::Contiguous { count, inner } => *count as u64 * inner.size(),
            Datatype::Vector {
                count,
                blocklen,
                inner,
                ..
            } => *count as u64 * *blocklen as u64 * inner.size(),
            Datatype::Indexed {
                blocklens, inner, ..
            } => blocklens.iter().map(|&b| b as u64).sum::<u64>() * inner.size(),
            Datatype::Hindexed { blocks, inner } => {
                blocks.iter().map(|&(_, c)| c as u64).sum::<u64>() * inner.size()
            }
            Datatype::Resized { inner, .. } => inner.size(),
        }
    }

    /// Extent in bytes: the span from byte 0 to the end of the last block
    /// (lower bound is always 0 here), used as the tiling period.
    pub fn extent(&self) -> u64 {
        match self {
            Datatype::Elementary(s) => *s as u64,
            Datatype::Contiguous { count, inner } => *count as u64 * inner.extent(),
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                if *count == 0 {
                    0
                } else {
                    ((*count as u64 - 1) * *stride as u64 + *blocklen as u64) * inner.extent()
                }
            }
            Datatype::Indexed {
                blocklens,
                displs,
                inner,
            } => {
                let ie = inner.extent();
                displs
                    .iter()
                    .zip(blocklens)
                    .map(|(&d, &b)| (d + b as u64) * ie)
                    .max()
                    .unwrap_or(0)
            }
            Datatype::Hindexed { blocks, inner } => {
                let ie = inner.extent();
                blocks
                    .iter()
                    .map(|&(d, c)| d + c as u64 * ie)
                    .max()
                    .unwrap_or(0)
            }
            Datatype::Resized { extent, .. } => *extent,
        }
    }

    /// Lower to a flat segment list. Fails if the layout is not monotone
    /// (file views require monotonically nondecreasing offsets) or if
    /// blocks overlap.
    pub fn flatten(&self) -> MpiResult<Flattened> {
        let mut segs: Vec<(u64, u64)> = Vec::new();
        self.emit(0, &mut segs)?;
        // Verify monotonicity & coalesce.
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(segs.len());
        for (off, len) in segs {
            if len == 0 {
                continue;
            }
            match out.last_mut() {
                Some((loff, llen)) if *loff + *llen == off => *llen += len,
                Some((loff, llen)) if off < *loff + *llen => {
                    return Err(MpiError::InvalidDatatype(format!(
                        "non-monotone or overlapping segment at byte {off} (previous block ends at {})",
                        *loff + *llen
                    )));
                }
                _ => out.push((off, len)),
            }
        }
        Ok(Flattened {
            segments: out,
            extent: self.extent(),
            size: self.size(),
        })
    }

    fn emit(&self, base: u64, segs: &mut Vec<(u64, u64)>) -> MpiResult<()> {
        match self {
            Datatype::Elementary(s) => {
                segs.push((base, *s as u64));
                Ok(())
            }
            Datatype::Contiguous { count, inner } => {
                let ie = inner.extent();
                // Fast path: contiguous over elementary is one segment.
                if let Datatype::Elementary(s) = **inner {
                    segs.push((base, *count as u64 * s as u64));
                    return Ok(());
                }
                for i in 0..*count {
                    inner.emit(base + i as u64 * ie, segs)?;
                }
                Ok(())
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let ie = inner.extent();
                for i in 0..*count {
                    let bstart = base + i as u64 * *stride as u64 * ie;
                    if let Datatype::Elementary(s) = **inner {
                        segs.push((bstart, *blocklen as u64 * s as u64));
                    } else {
                        for j in 0..*blocklen {
                            inner.emit(bstart + j as u64 * ie, segs)?;
                        }
                    }
                }
                Ok(())
            }
            Datatype::Indexed {
                blocklens,
                displs,
                inner,
            } => {
                if blocklens.len() != displs.len() {
                    return Err(MpiError::InvalidDatatype(format!(
                        "indexed: {} blocklens vs {} displs",
                        blocklens.len(),
                        displs.len()
                    )));
                }
                let ie = inner.extent();
                for (&d, &b) in displs.iter().zip(blocklens) {
                    let bstart = base + d * ie;
                    if let Datatype::Elementary(s) = **inner {
                        segs.push((bstart, b as u64 * s as u64));
                    } else {
                        for j in 0..b {
                            inner.emit(bstart + j as u64 * ie, segs)?;
                        }
                    }
                }
                Ok(())
            }
            Datatype::Hindexed { blocks, inner } => {
                let ie = inner.extent();
                for &(d, c) in blocks {
                    let bstart = base + d;
                    if let Datatype::Elementary(s) = **inner {
                        segs.push((bstart, c as u64 * s as u64));
                    } else {
                        for j in 0..c {
                            inner.emit(bstart + j as u64 * ie, segs)?;
                        }
                    }
                }
                Ok(())
            }
            Datatype::Resized { inner, .. } => inner.emit(base, segs),
        }
    }
}

/// A flattened datatype: sorted, coalesced, non-overlapping byte segments
/// plus the tiling extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flattened {
    /// `(byte offset, byte length)` runs in increasing offset order.
    pub segments: Vec<(u64, u64)>,
    /// Tiling period in bytes.
    pub extent: u64,
    /// Total payload bytes (sum of segment lengths).
    pub size: u64,
}

impl Flattened {
    /// A fully contiguous flattened type of `len` bytes.
    pub fn contiguous(len: u64) -> Self {
        Self {
            segments: if len == 0 { vec![] } else { vec![(0, len)] },
            extent: len,
            size: len,
        }
    }

    /// Whether the layout is a single gap-free run starting at 0.
    pub fn is_contiguous(&self) -> bool {
        match self.segments.as_slice() {
            [] => true,
            [(0, len)] => *len == self.size,
            _ => false,
        }
    }

    /// Number of holes (gaps between consecutive segments).
    pub fn hole_count(&self) -> usize {
        let mut holes = 0;
        let mut end = 0;
        for &(off, len) in &self.segments {
            if off > end {
                holes += 1;
            }
            end = off + len;
        }
        holes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementary_sizes() {
        assert_eq!(Datatype::double().size(), 8);
        assert_eq!(Datatype::int32().size(), 4);
        assert_eq!(Datatype::byte().extent(), 1);
    }

    #[test]
    fn contiguous_flattens_to_one_segment() {
        let t = Datatype::contiguous(100, Datatype::double());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(0, 800)]);
        assert_eq!(f.size, 800);
        assert_eq!(f.extent, 800);
        assert!(f.is_contiguous());
    }

    #[test]
    fn vector_layout() {
        // 3 blocks of 2 doubles every 4 doubles: |XX..|XX..|XX|
        let t = Datatype::vector(3, 2, 4, Datatype::double());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(0, 16), (32, 16), (64, 16)]);
        assert_eq!(f.size, 48);
        assert_eq!(f.extent, (2 * 4 + 2) * 8);
        assert_eq!(f.hole_count(), 2);
    }

    #[test]
    fn vector_with_stride_equal_blocklen_coalesces() {
        let t = Datatype::vector(4, 2, 2, Datatype::int32());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(0, 32)]);
        assert!(f.is_contiguous());
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(vec![2, 1], vec![1, 5], Datatype::double());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(8, 16), (40, 8)]);
        assert_eq!(f.size, 24);
        assert_eq!(f.extent, 48);
    }

    #[test]
    fn indexed_block_adjacent_coalesce() {
        // Global indices {3,4,5, 9} of an f64 array.
        let t = Datatype::indexed_block(1, vec![3, 4, 5, 9], Datatype::double());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(24, 24), (72, 8)]);
    }

    #[test]
    fn unsorted_indexed_rejected() {
        let t = Datatype::indexed_block(1, vec![5, 3], Datatype::double());
        assert!(matches!(t.flatten(), Err(MpiError::InvalidDatatype(_))));
    }

    #[test]
    fn overlapping_indexed_rejected() {
        let t = Datatype::indexed(vec![3, 1], vec![0, 1], Datatype::double());
        assert!(t.flatten().is_err());
    }

    #[test]
    fn mismatched_indexed_lengths_rejected() {
        let t = Datatype::indexed(vec![1], vec![0, 8], Datatype::byte());
        assert!(t.flatten().is_err());
    }

    #[test]
    fn hindexed_byte_displacements() {
        let t = Datatype::hindexed(vec![(4, 2), (20, 1)], Datatype::int32());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(4, 8), (20, 4)]);
        assert_eq!(f.extent, 24);
    }

    #[test]
    fn nested_contiguous_of_vector() {
        // 2 x (vector of 2 blocks of 1 int every 2): |X.X|X.X|
        let v = Datatype::vector(2, 1, 2, Datatype::int32());
        // The vector's extent is ((2-1)*2+1)*4 = 12 bytes, so the second
        // instance starts at byte 12: segments at 0, 8, 12, 20 — and the
        // adjacent pair (8,4)+(12,4) coalesces into (8,8).
        let t = Datatype::contiguous(2, v);
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(0, 4), (8, 8), (20, 4)]);
        assert_eq!(f.size, 16);
    }

    #[test]
    fn resized_controls_extent_only() {
        let t = Datatype::resized(64, Datatype::contiguous(2, Datatype::double()));
        let f = t.flatten().unwrap();
        assert_eq!(f.segments, vec![(0, 16)]);
        assert_eq!(f.extent, 64);
        assert_eq!(f.size, 16);
    }

    #[test]
    fn zero_count_types_are_empty() {
        let t = Datatype::contiguous(0, Datatype::double());
        let f = t.flatten().unwrap();
        assert!(f.segments.is_empty());
        assert_eq!(f.size, 0);
        assert!(f.is_contiguous());
    }

    #[test]
    fn flattened_contiguous_constructor() {
        let f = Flattened::contiguous(100);
        assert!(f.is_contiguous());
        assert_eq!(f.hole_count(), 0);
        assert!(Flattened::contiguous(0).segments.is_empty());
    }

    #[test]
    fn map_array_style_large() {
        // Every other element of a 1000-element f64 array.
        let displs: Vec<u64> = (0..500).map(|i| i * 2).collect();
        let t = Datatype::indexed_block(1, displs, Datatype::double());
        let f = t.flatten().unwrap();
        assert_eq!(f.segments.len(), 500);
        assert_eq!(f.size, 4000);
        assert_eq!(f.extent, (998 + 1) * 8);
    }
}
