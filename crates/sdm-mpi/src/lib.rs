//! Thread-backed MPI-like runtime with MPI-IO.
//!
//! Substitute for MPI + ROMIO on the paper's Origin2000. Each simulated
//! process ("rank") is an OS thread; data really moves between ranks over
//! channels, while *time* follows the [`sdm_sim`] cost models (message
//! timestamps, LogGP-style transfer costs, barrier max-synchronization).
//!
//! Implemented surface (what SDM actually needs, faithfully):
//!
//! * [`World::run`] — SPMD launch of `n` ranks.
//! * [`Comm`] — point-to-point `send`/`recv` (typed, eager, FIFO per
//!   source), nonblocking handles, and the collectives SDM uses:
//!   barrier, bcast, reduce, allreduce, gather(v), allgather(v),
//!   scatter(v), alltoall(v), exclusive scan.
//! * [`datatype::Datatype`] — derived datatypes (contiguous, vector,
//!   indexed, hindexed) with flattening + segment coalescing, exactly the
//!   machinery SDM builds from map arrays for noncontiguous file views.
//! * [`io::MpiFile`] — file views over a [`sdm_pfs::Pfs`] file,
//!   independent I/O with **data sieving**, and collective
//!   **two-phase I/O** (file-domain partitioning, aggregator exchange),
//!   the ROMIO optimizations the paper's Section 2 credits for SDM's
//!   performance.
//!
//! Everything is deterministic given a fixed rank program: message
//! matching is by `(source, tag)` and collectives never use wildcard
//! sources, so virtual clocks evolve identically across runs.

pub mod collective;
pub mod comm;
pub mod datatype;
pub mod envelope;
pub mod error;
pub mod io;
pub mod pod;
pub mod request;

pub use comm::{Comm, World};
pub use datatype::{Datatype, Flattened};
pub use error::{MpiError, MpiResult};
pub use pod::Pod;
