//! Collective operations over [`crate::Comm`].
//!
//! All collectives are built from point-to-point messages with the
//! algorithms MPICH uses at these scales (binomial trees, ring
//! allgather, pairwise alltoall), so their *virtual cost* scales the way
//! the paper's MPI did (log p trees, p-step rings). None of them use
//! wildcard receives, which keeps virtual time deterministic.

pub mod allgather;
pub mod alltoall;
pub mod bcast;
pub mod gather;
pub mod reduce;
pub mod scan;
pub mod scatter;

use crate::pod::Pod;

/// Numeric Pod types usable with the built-in reduction operators.
pub trait NumPod: Pod + PartialOrd {
    /// Additive identity.
    fn zero() -> Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_numpod {
    ($($t:ty),*) => {$(
        impl NumPod for $t {
            #[inline]
            fn zero() -> Self { 0 as $t }
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
        }
    )*};
}

impl_numpod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Elementwise combine of `src` into `acc` with `f`.
pub(crate) fn combine<T: Copy>(acc: &mut [T], src: &[T], f: impl Fn(T, T) -> T) {
    assert_eq!(
        acc.len(),
        src.len(),
        "reduction buffers must agree in length"
    );
    for (a, &s) in acc.iter_mut().zip(src) {
        *a = f(*a, s);
    }
}
