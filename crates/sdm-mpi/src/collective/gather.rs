//! Gather (variable-length) to a root.

use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::MpiResult;
use crate::pod::{as_bytes, vec_from_bytes, Pod};

impl Comm {
    /// Gather each rank's bytes at `root`. Returns `Some(blocks)` (indexed
    /// by source rank) at the root, `None` elsewhere. Blocks may have
    /// different lengths (gatherv semantics).
    pub fn gather_bytes(&mut self, root: usize, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
            out[root] = data.to_vec();
            for src in (0..self.size()).filter(|&s| s != root) {
                let block = self.recv_bytes(src, tags::GATHER)?;
                out[src] = block;
            }
            self.counters().incr("mpi.gathers");
            Ok(Some(out))
        } else {
            self.send_bytes(root, tags::GATHER, data)?;
            self.counters().incr("mpi.gathers");
            Ok(None)
        }
    }

    /// Typed gather: root receives every rank's slice, indexed by rank.
    pub fn gather<T: Pod>(&mut self, root: usize, data: &[T]) -> MpiResult<Option<Vec<Vec<T>>>> {
        Ok(self
            .gather_bytes(root, as_bytes(data))?
            .map(|blocks| blocks.iter().map(|b| vec_from_bytes(b)).collect()))
    }

    /// Typed gather that concatenates all ranks' contributions in rank
    /// order (classic `MPI_Gatherv` into one buffer).
    pub fn gather_concat<T: Pod>(&mut self, root: usize, data: &[T]) -> MpiResult<Option<Vec<T>>> {
        Ok(self
            .gather(root, data)?
            .map(|blocks| blocks.into_iter().flatten().collect()))
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn gather_variable_lengths() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            // Rank r contributes r copies of its rank id.
            let mine = vec![c.rank() as u32; c.rank()];
            c.gather(2, &mine).unwrap()
        });
        let blocks = out[2].as_ref().unwrap();
        assert_eq!(blocks.len(), 4);
        for (r, b) in blocks.iter().enumerate() {
            assert_eq!(b, &vec![r as u32; r]);
        }
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
    }

    #[test]
    fn gather_concat_orders_by_rank() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            c.gather_concat(0, &[c.rank() as u64 * 10, c.rank() as u64 * 10 + 1])
                .unwrap()
        });
        assert_eq!(out[0], Some(vec![0, 1, 10, 11, 20, 21]));
    }

    #[test]
    fn gather_single_rank() {
        let out = World::run(1, MachineConfig::test_tiny(), |c| {
            c.gather(0, &[42u8]).unwrap()
        });
        assert_eq!(out[0], Some(vec![vec![42u8]]));
    }
}
