//! Exclusive prefix scan.
//!
//! SDM uses exclusive scans to turn per-rank byte counts into file
//! offsets when appending datasets under Level 2/3 organization, and to
//! place each rank's partitioned index block in the history file.

use crate::collective::NumPod;
use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::MpiResult;
use crate::pod::Pod;

impl Comm {
    /// Exclusive scan with combiner `f` and identity `id`: rank `r`
    /// returns `f(x_0, ..., x_{r-1})` elementwise (rank 0 returns `id`s).
    /// Linear chain — offsets are tiny, latency is irrelevant.
    pub fn exscan_with<T: Pod>(
        &mut self,
        local: &[T],
        id: T,
        f: impl Fn(T, T) -> T,
    ) -> MpiResult<Vec<T>> {
        let rank = self.rank();
        let size = self.size();
        let prefix: Vec<T> = if rank == 0 {
            vec![id; local.len()]
        } else {
            self.recv_vec(rank - 1, tags::SCAN)?
        };
        if rank + 1 < size {
            let mut next = prefix.clone();
            for (n, &l) in next.iter_mut().zip(local) {
                *n = f(*n, l);
            }
            self.send(rank + 1, tags::SCAN, &next)?;
        }
        self.counters().incr("mpi.scans");
        Ok(prefix)
    }

    /// Exclusive prefix sum.
    pub fn exscan_sum<T: NumPod>(&mut self, local: &[T]) -> Vec<T> {
        self.exscan_with(local, T::zero(), |a, b| a.add(b))
            .expect("exscan_sum failed")
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn exscan_sum_offsets() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            // Rank r contributes r+1 "bytes".
            c.exscan_sum(&[(c.rank() + 1) as u64])[0]
        });
        assert_eq!(out, vec![0, 1, 3, 6]);
    }

    #[test]
    fn exscan_elementwise() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            c.exscan_sum(&[c.rank() as u32, 10])
        });
        assert_eq!(out[0], vec![0, 0]);
        assert_eq!(out[1], vec![0, 10]);
        assert_eq!(out[2], vec![1, 20]);
    }

    #[test]
    fn exscan_single_rank_is_identity() {
        let out = World::run(1, MachineConfig::test_tiny(), |c| c.exscan_sum(&[9u8]));
        assert_eq!(out[0], vec![0]);
    }

    #[test]
    fn exscan_custom_op_max() {
        let vals = [3u64, 1, 4, 1, 5];
        let out = World::run(5, MachineConfig::test_tiny(), move |c| {
            c.exscan_with(&[vals[c.rank()]], 0u64, |a, b| a.max(b))
                .unwrap()[0]
        });
        assert_eq!(out, vec![0, 3, 3, 4, 4]);
    }
}
