//! Scatter (variable-length) from a root.

use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::{MpiError, MpiResult};
use crate::pod::{as_bytes, vec_from_bytes, Pod};

impl Comm {
    /// Root distributes `blocks[d]` to each rank `d`; every rank returns
    /// its own block. Only the root's `blocks` is read (scatterv).
    pub fn scatter_bytes(
        &mut self,
        root: usize,
        blocks: Option<Vec<Vec<u8>>>,
    ) -> MpiResult<Vec<u8>> {
        if self.rank() == root {
            let blocks = blocks.ok_or_else(|| {
                MpiError::CollectiveMismatch("scatter root must supply blocks".into())
            })?;
            if blocks.len() != self.size() {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter root supplied {} blocks for {} ranks",
                    blocks.len(),
                    self.size()
                )));
            }
            let mut mine = Vec::new();
            for (d, b) in blocks.into_iter().enumerate() {
                if d == root {
                    let copy = self.config().io.client_copy(b.len());
                    self.compute(copy);
                    mine = b;
                } else {
                    self.send_bytes(d, tags::SCATTER, &b)?;
                }
            }
            self.counters().incr("mpi.scatters");
            Ok(mine)
        } else {
            self.counters().incr("mpi.scatters");
            self.recv_bytes(root, tags::SCATTER)
        }
    }

    /// Typed scatterv.
    pub fn scatter<T: Pod>(
        &mut self,
        root: usize,
        blocks: Option<Vec<Vec<T>>>,
    ) -> MpiResult<Vec<T>> {
        let byte_blocks =
            blocks.map(|bs| bs.iter().map(|b| as_bytes(b).to_vec()).collect::<Vec<_>>());
        Ok(vec_from_bytes(&self.scatter_bytes(root, byte_blocks)?))
    }

    /// Scatter equal-size chunks of a root-resident array: chunk `d` of
    /// `ceil(len/size)` elements goes to rank `d` (the last chunk may be
    /// short). This is the "total domain equally divided among processes"
    /// import pattern of SDM.
    pub fn scatter_even<T: Pod>(
        &mut self,
        root: usize,
        data: Option<&[T]>,
        total_len: usize,
    ) -> MpiResult<Vec<T>> {
        let size = self.size();
        let chunk = total_len.div_ceil(size);
        let blocks = if self.rank() == root {
            let data = data.ok_or_else(|| {
                MpiError::CollectiveMismatch("scatter_even root must supply data".into())
            })?;
            if data.len() != total_len {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter_even: data length {} != declared total {}",
                    data.len(),
                    total_len
                )));
            }
            Some(
                (0..size)
                    .map(|d| {
                        let lo = (d * chunk).min(total_len);
                        let hi = ((d + 1) * chunk).min(total_len);
                        data[lo..hi].to_vec()
                    })
                    .collect(),
            )
        } else {
            None
        };
        self.scatter(root, blocks)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn scatter_variable_blocks() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            let blocks = (c.rank() == 1).then(|| vec![vec![0u32], vec![10, 11], vec![20, 21, 22]]);
            c.scatter(1, blocks).unwrap()
        });
        assert_eq!(out[0], vec![0]);
        assert_eq!(out[1], vec![10, 11]);
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    #[test]
    fn scatter_even_divides_domain() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            let data: Vec<u64> = (0..10).collect();
            let arg = (c.rank() == 0).then_some(&data[..]);
            c.scatter_even(0, arg, 10).unwrap()
        });
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[1], vec![3, 4, 5]);
        assert_eq!(out[2], vec![6, 7, 8]);
        assert_eq!(out[3], vec![9]);
    }

    #[test]
    fn scatter_even_empty_tail_ranks() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            let data: Vec<u8> = vec![1, 2];
            let arg = (c.rank() == 0).then_some(&data[..]);
            c.scatter_even(0, arg, 2).unwrap()
        });
        assert_eq!(out[0], vec![1]);
        assert_eq!(out[1], vec![2]);
        assert!(out[2].is_empty() && out[3].is_empty());
    }

    #[test]
    fn scatter_root_without_blocks_errors() {
        World::run(2, MachineConfig::test_tiny(), |c| {
            if c.rank() == 0 {
                assert!(c.scatter::<u8>(0, None).is_err());
                // Unblock rank 1, which is waiting for its block.
                c.send_bytes(1, crate::envelope::tags::SCATTER, &[])
                    .unwrap();
            } else {
                c.scatter::<u8>(0, None).unwrap();
            }
        });
    }
}
