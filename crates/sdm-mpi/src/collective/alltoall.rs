//! Pairwise-exchange alltoall with variable block lengths (alltoallv).

use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::MpiResult;
use crate::pod::{as_bytes, vec_from_bytes, Pod};

impl Comm {
    /// Personalized exchange: `blocks[d]` is sent to rank `d`; the return
    /// value's entry `s` is the block received from rank `s`. Blocks may
    /// be empty and of different lengths (alltoallv semantics).
    ///
    /// Uses the pairwise-exchange schedule (`size` phases, in phase `i`
    /// exchange with `rank±i`), the algorithm ROMIO itself uses inside
    /// two-phase collective I/O.
    pub fn alltoallv_bytes(&mut self, blocks: Vec<Vec<u8>>) -> MpiResult<Vec<Vec<u8>>> {
        let size = self.size();
        let rank = self.rank();
        assert_eq!(
            blocks.len(),
            size,
            "alltoallv needs one block per destination"
        );
        let mut outgoing = blocks;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); size];
        // Self block: local copy, charged at memory speed.
        let copy = self.config().io.client_copy(outgoing[rank].len());
        self.compute(copy);
        out[rank] = std::mem::take(&mut outgoing[rank]);
        // Phase loop: exchange with (rank+i) while receiving from (rank-i).
        // Outgoing blocks stay in their own buffer: with three or more
        // ranks a later phase's destination index coincides with an
        // earlier phase's source index, so parking them in `out` would
        // send received data onward instead.
        for i in 1..size {
            let dst = (rank + i) % size;
            let src = (rank + size - i) % size;
            let payload = std::mem::take(&mut outgoing[dst]);
            self.send_bytes(dst, tags::ALLTOALL, &payload)?;
            out[src] = self.recv_bytes(src, tags::ALLTOALL)?;
        }
        self.counters().incr("mpi.alltoalls");
        Ok(out)
    }

    /// Typed alltoallv.
    pub fn alltoallv<T: Pod>(&mut self, blocks: Vec<Vec<T>>) -> MpiResult<Vec<Vec<T>>> {
        let byte_blocks = blocks.iter().map(|b| as_bytes(b).to_vec()).collect();
        Ok(self
            .alltoallv_bytes(byte_blocks)?
            .iter()
            .map(|b| vec_from_bytes(b))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn alltoall_transposes() {
        for n in [1, 2, 4, 5] {
            let out = World::run(n, MachineConfig::test_tiny(), |c| {
                // blocks[d] = [rank*100 + d]
                let blocks: Vec<Vec<u32>> =
                    (0..n).map(|d| vec![(c.rank() * 100 + d) as u32]).collect();
                c.alltoallv(blocks).unwrap()
            });
            for (r, recv) in out.iter().enumerate() {
                for (s, b) in recv.iter().enumerate() {
                    assert_eq!(b, &vec![(s * 100 + r) as u32], "n={n} r={r} s={s}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_variable_and_empty_blocks() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            // Rank r sends d copies of r to destination d (zero to rank 0).
            let blocks: Vec<Vec<u8>> = (0..3).map(|d| vec![c.rank() as u8; d]).collect();
            c.alltoallv(blocks).unwrap()
        });
        for (r, recv) in out.iter().enumerate() {
            for (s, b) in recv.iter().enumerate() {
                assert_eq!(b, &vec![s as u8; r], "r={r} s={s}");
            }
        }
    }

    #[test]
    fn self_block_preserved() {
        let out = World::run(2, MachineConfig::test_tiny(), |c| {
            let blocks = vec![vec![c.rank() as u64; 2]; 2];
            c.alltoallv(blocks).unwrap()
        });
        assert_eq!(out[0][0], vec![0, 0]);
        assert_eq!(out[1][1], vec![1, 1]);
    }

    #[test]
    fn repeated_alltoalls_stay_ordered() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            let mut results = Vec::new();
            for round in 0..4u32 {
                let blocks: Vec<Vec<u32>> = (0..3).map(|_| vec![round]).collect();
                let r = c.alltoallv(blocks).unwrap();
                results.push(r[0][0]);
            }
            results
        });
        for v in out {
            assert_eq!(v, vec![0, 1, 2, 3]);
        }
    }
}
