//! Binomial-tree broadcast.

use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::MpiResult;
use crate::pod::{as_bytes, vec_from_bytes, Pod};

impl Comm {
    /// Broadcast bytes from `root`. Only the root's `data` is read; every
    /// rank returns the broadcast payload.
    pub fn bcast_bytes(&mut self, root: usize, data: &[u8]) -> MpiResult<Vec<u8>> {
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            return Ok(data.to_vec());
        }
        let vrank = (rank + size - root) % size;
        let mut payload: Option<Vec<u8>> = if rank == root {
            Some(data.to_vec())
        } else {
            None
        };

        // Receive phase: find the set bit that names our parent.
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let parent = ((vrank & !mask) + root) % size;
                payload = Some(self.recv_bytes(parent, tags::BCAST)?);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children under decreasing masks.
        mask >>= 1;
        let buf = payload.expect("bcast payload must be set by receive phase or root");
        while mask > 0 {
            if vrank + mask < size {
                let child = ((vrank + mask) + root) % size;
                self.send_bytes(child, tags::BCAST, &buf)?;
            }
            mask >>= 1;
        }
        self.counters().incr("mpi.bcasts");
        Ok(buf)
    }

    /// Typed broadcast: the root's slice is distributed to every rank.
    pub fn bcast<T: Pod>(&mut self, root: usize, data: &[T]) -> MpiResult<Vec<T>> {
        Ok(vec_from_bytes(&self.bcast_bytes(root, as_bytes(data))?))
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn bcast_from_rank0() {
        for n in [1, 2, 3, 4, 7, 8] {
            let out = World::run(n, MachineConfig::test_tiny(), |c| {
                let data = if c.rank() == 0 {
                    vec![3.25f64, -1.0]
                } else {
                    vec![]
                };
                c.bcast(0, &data).unwrap()
            });
            for v in out {
                assert_eq!(v, vec![3.25, -1.0], "n={n}");
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = World::run(5, MachineConfig::test_tiny(), |c| {
            let data = if c.rank() == 3 {
                vec![9u32, 8, 7]
            } else {
                vec![0u32; 3]
            };
            c.bcast(3, &data).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![9, 8, 7]);
        }
    }

    #[test]
    fn bcast_empty_payload() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            c.bcast::<u8>(0, &[]).unwrap().len()
        });
        assert_eq!(out, vec![0, 0, 0, 0]);
    }

    #[test]
    fn bcast_cost_scales_logarithmically() {
        // With p ranks a binomial bcast of a large buffer should cost
        // about ceil(log2 p) transfer times, far less than (p-1).
        let cfg = MachineConfig::origin2000();
        let one_transfer = cfg.network.wire_time(1 << 20);
        let out = World::run(8, cfg, |c| {
            let data = if c.rank() == 0 {
                vec![0u8; 1 << 20]
            } else {
                vec![]
            };
            c.bcast_bytes(0, &data).unwrap();
            c.barrier();
            c.now()
        });
        let t = out[0];
        assert!(
            t < one_transfer * 5.0,
            "8-rank bcast {t}s should be ~3 transfers, not 7"
        );
        assert!(
            t > one_transfer * 1.5,
            "tree depth must show up: {t}s vs {one_transfer}s"
        );
    }

    #[test]
    fn consecutive_bcasts_do_not_cross_match() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            let a = c
                .bcast(0, &(if c.rank() == 0 { vec![1u8] } else { vec![] }))
                .unwrap();
            let b = c
                .bcast(0, &(if c.rank() == 0 { vec![2u8] } else { vec![] }))
                .unwrap();
            (a[0], b[0])
        });
        for (a, b) in out {
            assert_eq!((a, b), (1, 2));
        }
    }
}
