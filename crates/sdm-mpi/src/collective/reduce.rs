//! Binomial-tree reduce and allreduce.

use crate::collective::{combine, NumPod};
use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::MpiResult;
use crate::pod::Pod;

impl Comm {
    /// Reduce `local` to `root` with the elementwise combiner `f`.
    /// Returns `Some(result)` at the root, `None` elsewhere.
    pub fn reduce_with<T: Pod>(
        &mut self,
        root: usize,
        local: &[T],
        f: impl Fn(T, T) -> T,
    ) -> MpiResult<Option<Vec<T>>> {
        let size = self.size();
        let rank = self.rank();
        let mut acc = local.to_vec();
        if size == 1 {
            return Ok(Some(acc));
        }
        let vrank = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let child_v = vrank | mask;
                if child_v < size {
                    let child = (child_v + root) % size;
                    let theirs: Vec<T> = self.recv_vec(child, tags::REDUCE)?;
                    combine(&mut acc, &theirs, &f);
                }
            } else {
                let parent = ((vrank & !mask) + root) % size;
                self.send(parent, tags::REDUCE, &acc)?;
                break;
            }
            mask <<= 1;
        }
        self.counters().incr("mpi.reduces");
        Ok(if rank == root { Some(acc) } else { None })
    }

    /// Allreduce with an arbitrary combiner: reduce to rank 0, broadcast.
    pub fn allreduce_with<T: Pod>(
        &mut self,
        local: &[T],
        f: impl Fn(T, T) -> T,
    ) -> MpiResult<Vec<T>> {
        let reduced = self.reduce_with(0, local, f)?;
        let root_buf = reduced.unwrap_or_default();
        self.bcast(0, &root_buf)
    }

    /// Elementwise sum across all ranks.
    pub fn allreduce_sum<T: NumPod>(&mut self, local: &[T]) -> Vec<T> {
        self.allreduce_with(local, |a, b| a.add(b))
            .expect("allreduce_sum failed")
    }

    /// Elementwise max across all ranks.
    pub fn allreduce_max<T: NumPod>(&mut self, local: &[T]) -> Vec<T> {
        self.allreduce_with(local, |a, b| if b > a { b } else { a })
            .expect("allreduce_max failed")
    }

    /// Elementwise min across all ranks.
    pub fn allreduce_min<T: NumPod>(&mut self, local: &[T]) -> Vec<T> {
        self.allreduce_with(local, |a, b| if b < a { b } else { a })
            .expect("allreduce_min failed")
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn reduce_sum_to_root() {
        for n in [1, 2, 5, 8] {
            let out = World::run(n, MachineConfig::test_tiny(), |c| {
                c.reduce_with(0, &[c.rank() as u64, 1u64], |a, b| a + b)
                    .unwrap()
            });
            let expect: u64 = (0..n as u64).sum();
            assert_eq!(out[0], Some(vec![expect, n as u64]), "n={n}");
            for o in &out[1..] {
                assert_eq!(*o, None);
            }
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let out = World::run(6, MachineConfig::test_tiny(), |c| {
            c.reduce_with(4, &[c.rank() as i64], |a, b| a.max(b))
                .unwrap()
        });
        assert_eq!(out[4], Some(vec![5]));
        assert!(out.iter().enumerate().all(|(r, v)| (r == 4) == v.is_some()));
    }

    #[test]
    fn allreduce_sum_everywhere() {
        let out = World::run(7, MachineConfig::test_tiny(), |c| {
            c.allreduce_sum(&[1u32, c.rank() as u32])
        });
        for v in out {
            assert_eq!(v, vec![7, 21]);
        }
    }

    #[test]
    fn allreduce_min_max_f64() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            let x = c.rank() as f64 * 1.5 - 2.0;
            (c.allreduce_min(&[x])[0], c.allreduce_max(&[x])[0])
        });
        for (lo, hi) in out {
            assert_eq!(lo, -2.0);
            assert_eq!(hi, 2.5);
        }
    }

    #[test]
    fn single_rank_identity() {
        let out = World::run(1, MachineConfig::test_tiny(), |c| c.allreduce_sum(&[5u8]));
        assert_eq!(out[0], vec![5]);
    }
}
