//! Ring allgather (variable block lengths).

use crate::comm::Comm;
use crate::envelope::tags;
use crate::error::MpiResult;
use crate::pod::{as_bytes, vec_from_bytes, Pod};

impl Comm {
    /// Every rank contributes a byte block; every rank returns all blocks
    /// indexed by source rank. Bandwidth-optimal ring: at step `s` a rank
    /// forwards the block it received at step `s-1`.
    pub fn allgather_bytes(&mut self, data: &[u8]) -> MpiResult<Vec<Vec<u8>>> {
        let size = self.size();
        let rank = self.rank();
        let mut blocks: Vec<Vec<u8>> = vec![Vec::new(); size];
        blocks[rank] = data.to_vec();
        if size == 1 {
            return Ok(blocks);
        }
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        for s in 0..size - 1 {
            // Send the block that originated at (rank - s); receive the one
            // that originated at (rank - s - 1).
            let send_origin = (rank + size - s) % size;
            let recv_origin = (rank + size - s - 1) % size;
            let payload = std::mem::take(&mut blocks[send_origin]);
            self.send_bytes(right, tags::ALLGATHER, &payload)?;
            blocks[send_origin] = payload;
            blocks[recv_origin] = self.recv_bytes(left, tags::ALLGATHER)?;
        }
        self.counters().incr("mpi.allgathers");
        Ok(blocks)
    }

    /// Typed allgather: returns every rank's slice, indexed by rank.
    pub fn allgather<T: Pod>(&mut self, data: &[T]) -> MpiResult<Vec<Vec<T>>> {
        Ok(self
            .allgather_bytes(as_bytes(data))?
            .iter()
            .map(|b| vec_from_bytes(b))
            .collect())
    }

    /// Allgather of a single value per rank.
    pub fn allgather_one<T: Pod>(&mut self, value: T) -> MpiResult<Vec<T>> {
        Ok(self
            .allgather(&[value])?
            .into_iter()
            .map(|v| v[0])
            .collect())
    }

    /// Typed allgather concatenated in rank order.
    pub fn allgather_concat<T: Pod>(&mut self, data: &[T]) -> MpiResult<Vec<T>> {
        Ok(self.allgather(data)?.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn allgather_uniform() {
        for n in [1, 2, 3, 6] {
            let out = World::run(n, MachineConfig::test_tiny(), |c| {
                c.allgather(&[c.rank() as u32]).unwrap()
            });
            for v in out {
                assert_eq!(
                    v,
                    (0..n as u32).map(|r| vec![r]).collect::<Vec<_>>(),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let out = World::run(4, MachineConfig::test_tiny(), |c| {
            let mine = vec![c.rank() as u8; c.rank() + 1];
            c.allgather(&mine).unwrap()
        });
        for v in out {
            for (r, b) in v.iter().enumerate() {
                assert_eq!(b, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn allgather_one_collects_scalars() {
        let out = World::run(5, MachineConfig::test_tiny(), |c| {
            c.allgather_one((c.rank() * c.rank()) as u64).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![0, 1, 4, 9, 16]);
        }
    }

    #[test]
    fn allgather_concat_in_rank_order() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            c.allgather_concat(&[c.rank() as i32 * 2, c.rank() as i32 * 2 + 1])
                .unwrap()
        });
        for v in out {
            assert_eq!(v, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn allgather_with_empty_contribution() {
        let out = World::run(3, MachineConfig::test_tiny(), |c| {
            let mine: Vec<u8> = if c.rank() == 1 {
                vec![]
            } else {
                vec![c.rank() as u8]
            };
            c.allgather(&mine).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![vec![0u8], vec![], vec![2]]);
        }
    }
}
