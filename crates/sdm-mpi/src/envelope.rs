//! Message envelopes and tag space.

use sdm_sim::Seconds;

/// Message tag. User tags are small non-negative values; the runtime
/// reserves the high range for collectives and MPI-IO internals.
pub type Tag = u32;

/// Base of the tag range reserved for runtime-internal traffic.
pub const INTERNAL_TAG_BASE: Tag = 0x4000_0000;

/// Tags used by the collective implementations. Each collective call site
/// uses a distinct tag so overlapping phases can't cross-match; sequence
/// safety comes from per-(source, tag) FIFO ordering.
pub mod tags {
    use super::{Tag, INTERNAL_TAG_BASE};

    /// Broadcast tree traffic.
    pub const BCAST: Tag = INTERNAL_TAG_BASE + 1;
    /// Reduce tree traffic.
    pub const REDUCE: Tag = INTERNAL_TAG_BASE + 2;
    /// Gather to root.
    pub const GATHER: Tag = INTERNAL_TAG_BASE + 3;
    /// Scatter from root.
    pub const SCATTER: Tag = INTERNAL_TAG_BASE + 4;
    /// Ring allgather steps.
    pub const ALLGATHER: Tag = INTERNAL_TAG_BASE + 5;
    /// Pairwise alltoall exchange.
    pub const ALLTOALL: Tag = INTERNAL_TAG_BASE + 6;
    /// Scan chain.
    pub const SCAN: Tag = INTERNAL_TAG_BASE + 7;
    /// Two-phase I/O: rank -> aggregator requests/data.
    pub const TWOPHASE_FWD: Tag = INTERNAL_TAG_BASE + 8;
    /// Two-phase I/O: aggregator -> rank data.
    pub const TWOPHASE_BWD: Tag = INTERNAL_TAG_BASE + 9;
    /// Barrier fan-in/fan-out (used by the message-based fallback).
    pub const BARRIER: Tag = INTERNAL_TAG_BASE + 10;
    /// SDM ring-pipelined index distribution.
    pub const SDM_RING: Tag = INTERNAL_TAG_BASE + 11;
    /// Rank-finished notification, sent to every peer when a rank's
    /// communicator is dropped. Lets a blocking receive from an exited
    /// peer surface `MpiError::Disconnected` instead of hanging.
    pub const FIN: Tag = INTERNAL_TAG_BASE + 12;
}

/// A message in flight. `depart` is the sender's virtual time when
/// transmission began; the receiver computes arrival from it.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Sender virtual time at transmission start.
    pub depart: Seconds,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_tags_are_distinct_and_reserved() {
        let all = [
            tags::FIN,
            tags::BCAST,
            tags::REDUCE,
            tags::GATHER,
            tags::SCATTER,
            tags::ALLGATHER,
            tags::ALLTOALL,
            tags::SCAN,
            tags::TWOPHASE_FWD,
            tags::TWOPHASE_BWD,
            tags::BARRIER,
            tags::SDM_RING,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(*a >= INTERNAL_TAG_BASE);
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
