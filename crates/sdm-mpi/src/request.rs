//! Nonblocking operation handles.
//!
//! Sends are eager (buffered by the channel), so an `isend` completes
//! locally at post time — exactly the semantics of a buffered MPI send.
//! An `irecv` records the match criteria; `wait` performs the actual
//! matching. SDM uses these for the asynchronous history-file write path
//! and for overlapping the ring exchange with local partitioning work.

use crate::comm::Comm;
use crate::envelope::Tag;
use crate::error::MpiResult;
use crate::pod::Pod;

/// Handle for a posted send. Completion is immediate (eager protocol);
/// `wait` exists for API symmetry.
#[derive(Debug)]
#[must_use = "wait on the request to observe errors"]
pub struct SendRequest {
    result: MpiResult<()>,
}

impl SendRequest {
    /// Complete the send, surfacing any error from post time.
    pub fn wait(self) -> MpiResult<()> {
        self.result
    }
}

/// Handle for a posted receive. The message is matched at `wait` time.
#[derive(Debug)]
#[must_use = "an irecv does nothing until waited on"]
pub struct RecvRequest {
    src: usize,
    tag: Tag,
}

impl Comm {
    /// Nonblocking typed send (eager: the payload is buffered immediately).
    pub fn isend<T: Pod>(&mut self, dst: usize, tag: Tag, data: &[T]) -> SendRequest {
        SendRequest {
            result: self.send(dst, tag, data),
        }
    }

    /// Post a receive for `(src, tag)`; match it later with
    /// [`RecvRequest::wait`].
    pub fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        RecvRequest { src, tag }
    }
}

impl RecvRequest {
    /// Block until the matching message arrives and return its payload.
    pub fn wait<T: Pod>(self, comm: &mut Comm) -> MpiResult<Vec<T>> {
        comm.recv_vec(self.src, self.tag)
    }

    /// Block until the matching message arrives, as raw bytes.
    pub fn wait_bytes(self, comm: &mut Comm) -> MpiResult<Vec<u8>> {
        comm.recv_bytes(self.src, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn isend_irecv_round_trip() {
        let out = World::run(2, MachineConfig::test_tiny(), |c| {
            if c.rank() == 0 {
                let rq = c.isend(1, 3, &[10u32, 20]);
                rq.wait().unwrap();
                0
            } else {
                let rq = c.irecv(0, 3);
                let v = rq.wait::<u32>(c).unwrap();
                v[0] + v[1]
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn irecv_can_be_posted_before_send_arrives() {
        let out = World::run(2, MachineConfig::test_tiny(), |c| {
            if c.rank() == 0 {
                let rq = c.irecv(1, 9);
                // Do "work" before waiting.
                c.compute(0.5);
                rq.wait::<u8>(c).unwrap().len()
            } else {
                c.send(0, 9, &[1u8, 2, 3]).unwrap();
                0
            }
        });
        assert_eq!(out[0], 3);
    }
}
