//! MPI runtime errors.

use std::fmt;

use sdm_pfs::PfsError;

/// Errors from the message-passing and I/O layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank out of range.
    InvalidRank {
        /// Offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A peer disconnected (its thread panicked or returned early).
    Disconnected,
    /// Payload length didn't match the expected typed length.
    LengthMismatch {
        /// Expected byte length.
        expected: usize,
        /// Received byte length.
        got: usize,
    },
    /// Underlying file-system error.
    Pfs(PfsError),
    /// Datatype/view construction error.
    InvalidDatatype(String),
    /// Collective called with inconsistent arguments across ranks.
    CollectiveMismatch(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::Disconnected => write!(f, "peer disconnected"),
            MpiError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "message length mismatch: expected {expected} bytes, got {got}"
                )
            }
            MpiError::Pfs(e) => write!(f, "file system: {e}"),
            MpiError::InvalidDatatype(s) => write!(f, "invalid datatype: {s}"),
            MpiError::CollectiveMismatch(s) => write!(f, "collective mismatch: {s}"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Pfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PfsError> for MpiError {
    fn from(e: PfsError) -> Self {
        MpiError::Pfs(e)
    }
}

/// Convenience alias.
pub type MpiResult<T> = Result<T, MpiError>;
