//! Plain-old-data marker trait and byte-view helpers.
//!
//! Message payloads and file buffers move as raw bytes. The [`Pod`] trait
//! marks the fixed-layout numeric types that can be viewed as bytes and
//! reconstructed from them. Implementations are restricted to primitives
//! with no padding and no invalid bit patterns, which is what makes the
//! two `unsafe` blocks below sound.

use std::mem::size_of;

/// Marker for types that are valid under any bit pattern and contain no
/// padding, so `&[T] -> &[u8]` reinterpretation and byte-copy
/// reconstruction are both sound.
///
/// # Safety
/// Implementors must be `Copy`, have no padding bytes, no niches, and no
/// invalid bit patterns. Only numeric primitives implement this here.
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// View a slice of Pod values as raw little-endian-native bytes.
pub fn as_bytes<T: Pod>(xs: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding), lifetime and length are preserved.
    unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), std::mem::size_of_val(xs)) }
}

/// Mutable byte view of a slice of Pod values.
pub fn as_bytes_mut<T: Pod>(xs: &mut [T]) -> &mut [u8] {
    // SAFETY: T is Pod: any byte pattern written is a valid T.
    unsafe {
        std::slice::from_raw_parts_mut(xs.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(xs))
    }
}

/// Copy bytes into a freshly allocated, properly aligned `Vec<T>`.
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn vec_from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let sz = size_of::<T>();
    assert!(
        bytes.len().is_multiple_of(sz),
        "byte length {} not a multiple of element size {}",
        bytes.len(),
        sz
    );
    let n = bytes.len() / sz;
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: destination has capacity for n*sz bytes; T is Pod so any
    // byte pattern is valid; set_len after full initialization.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

/// Copy bytes over an existing slice of Pod values. Panics if lengths
/// disagree.
pub fn copy_into<T: Pod>(bytes: &[u8], dst: &mut [T]) {
    assert_eq!(
        bytes.len(),
        std::mem::size_of_val(dst),
        "length mismatch in copy_into"
    );
    as_bytes_mut(dst).copy_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f64() {
        let xs = vec![1.5f64, -2.25, 0.0, f64::MAX];
        let bytes = as_bytes(&xs);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = vec_from_bytes(bytes);
        assert_eq!(back, xs);
    }

    #[test]
    fn round_trip_i32() {
        let xs = vec![i32::MIN, -1, 0, 1, i32::MAX];
        let back: Vec<i32> = vec_from_bytes(as_bytes(&xs));
        assert_eq!(back, xs);
    }

    #[test]
    fn round_trip_u8_identity() {
        let xs = vec![0u8, 255, 7];
        assert_eq!(as_bytes(&xs), &xs[..]);
    }

    #[test]
    fn empty_slices() {
        let xs: Vec<u64> = vec![];
        assert!(as_bytes(&xs).is_empty());
        let back: Vec<u64> = vec_from_bytes(&[]);
        assert!(back.is_empty());
    }

    #[test]
    fn copy_into_overwrites() {
        let src = vec![42u32, 43];
        let mut dst = vec![0u32; 2];
        copy_into(as_bytes(&src), &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let _: Vec<u32> = vec_from_bytes(&[1, 2, 3]);
    }

    #[test]
    fn mutation_through_byte_view() {
        let mut xs = vec![0u16; 2];
        as_bytes_mut(&mut xs).copy_from_slice(&[1, 0, 2, 0]);
        assert_eq!(xs, vec![1u16, 2]);
    }
}
