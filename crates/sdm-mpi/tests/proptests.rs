//! Property tests: collectives equal their sequential references for
//! arbitrary inputs; datatype flattening conserves bytes; the view
//! mapper agrees with a brute-force reference.

use proptest::prelude::*;
use sdm_mpi::datatype::Datatype;
use sdm_mpi::io::view::FileView;
use sdm_mpi::World;
use sdm_sim::MachineConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_sum_equals_sequential(values in proptest::collection::vec(-1000i64..1000, 1..6)) {
        let n = values.len();
        let expect: i64 = values.iter().sum();
        let out = World::run(n, MachineConfig::test_tiny(), {
            let values = values.clone();
            move |c| c.allreduce_sum(&[values[c.rank()]])[0]
        });
        for v in out {
            prop_assert_eq!(v, expect);
        }
    }

    #[test]
    fn exscan_equals_prefix_sums(values in proptest::collection::vec(0u64..1000, 1..6)) {
        let n = values.len();
        let out = World::run(n, MachineConfig::test_tiny(), {
            let values = values.clone();
            move |c| c.exscan_sum(&[values[c.rank()]])[0]
        });
        let mut acc = 0;
        for (r, v) in out.into_iter().enumerate() {
            prop_assert_eq!(v, acc, "rank {}", r);
            acc += values[r];
        }
    }

    #[test]
    fn allgather_preserves_blocks(blocks in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..20), 1..5)) {
        let n = blocks.len();
        let out = World::run(n, MachineConfig::test_tiny(), {
            let blocks = blocks.clone();
            move |c| c.allgather(&blocks[c.rank()]).unwrap()
        });
        for got in out {
            prop_assert_eq!(&got, &blocks);
        }
    }

    #[test]
    fn alltoallv_is_transpose(n in 1usize..5, seed in any::<u64>()) {
        // blocks[s][d] = f(s, d); after exchange rank d holds f(s, d) from s.
        let out = World::run(n, MachineConfig::test_tiny(), move |c| {
            let blocks: Vec<Vec<u64>> = (0..n)
                .map(|d| vec![seed ^ (c.rank() as u64) << 16 ^ d as u64; (c.rank() + d) % 3])
                .collect();
            c.alltoallv(blocks).unwrap()
        });
        for (d, recv) in out.iter().enumerate() {
            for (s, b) in recv.iter().enumerate() {
                let want = vec![seed ^ (s as u64) << 16 ^ d as u64; (s + d) % 3];
                prop_assert_eq!(b, &want, "s={} d={}", s, d);
            }
        }
    }

    #[test]
    fn flatten_conserves_size(displs in proptest::collection::btree_set(0u64..2000, 1..100), blocklen in 1usize..4) {
        // btree_set gives sorted unique displacements; scale them apart so
        // blocks of `blocklen` cannot overlap.
        let displs: Vec<u64> = displs.into_iter().map(|d| d * blocklen as u64).collect();
        let nblocks = displs.len();
        let t = Datatype::indexed_block(blocklen, displs, Datatype::double());
        let f = t.flatten().unwrap();
        prop_assert_eq!(f.size, (nblocks * blocklen * 8) as u64);
        // Segments sorted, non-overlapping, lengths sum to size.
        let mut sum = 0;
        let mut prev_end = 0;
        for &(off, len) in &f.segments {
            prop_assert!(off >= prev_end);
            prev_end = off + len;
            sum += len;
        }
        prop_assert_eq!(sum, f.size);
    }

    #[test]
    fn view_segments_match_bruteforce(
        displs in proptest::collection::btree_set(0u64..64, 1..16),
        start in 0u64..64,
        len in 0u64..128,
    ) {
        let displs: Vec<u64> = displs.into_iter().collect();
        let nvis = displs.len() as u64 * 8;
        let t = Datatype::resized(64 * 8, Datatype::indexed_block(1, displs.clone(), Datatype::double()));
        let view = FileView::new(0, t.flatten().unwrap()).unwrap();
        let start = start % nvis.max(1);
        let len = len.min(3 * nvis);
        // Brute force: visible byte v lives at file byte F(v).
        let file_byte = |v: u64| -> u64 {
            let tile = v / nvis;
            let within = v % nvis;
            let elem = within / 8;
            let byte = within % 8;
            tile * 64 * 8 + displs[elem as usize] * 8 + byte
        };
        let segs = view.segments(start, len);
        let mut covered = 0u64;
        let mut v = start;
        for (off, slen) in segs {
            for k in 0..slen {
                prop_assert_eq!(off + k, file_byte(v), "visible byte {}", v);
                v += 1;
            }
            covered += slen;
        }
        prop_assert_eq!(covered, len);
    }
}
