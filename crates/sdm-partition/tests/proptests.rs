//! Property tests: every partitioner yields valid, total assignments;
//! multilevel respects its balance bound; refinement never worsens cut.

use proptest::prelude::*;
use sdm_mesh::gen::tet_box;
use sdm_mesh::CsrGraph;
use sdm_partition::multilevel::wgraph::WGraph;
use sdm_partition::{edge_cut, imbalance, partition, Method};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn all_methods_produce_valid_total_assignments(
        dims in (3usize..6, 3usize..6, 2usize..5),
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mesh = tet_box(dims.0, dims.1, dims.2, 0.2, seed);
        let g = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
        for method in [Method::Multilevel, Method::Rcb, Method::Block, Method::Random] {
            let pv = partition(&g, Some(&mesh.coords), k, method, seed);
            prop_assert_eq!(pv.len(), mesh.num_nodes());
            prop_assert!(pv.iter().all(|&p| (p as usize) < k), "{:?}", method);
        }
    }

    #[test]
    fn multilevel_balance_bound(
        side in 5usize..9,
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mesh = tet_box(side, side, side, 0.15, seed);
        let g = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
        let pv = partition(&g, None, k, Method::Multilevel, seed);
        let imb = imbalance(&pv, k);
        prop_assert!(imb <= 1.35, "k={} imbalance {} too high", k, imb);
    }

    #[test]
    fn multilevel_beats_random_cut(seed in any::<u64>()) {
        let mesh = tet_box(7, 7, 7, 0.2, seed);
        let g = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
        let ml = partition(&g, None, 4, Method::Multilevel, seed);
        let rnd = partition(&g, None, 4, Method::Random, seed);
        prop_assert!(edge_cut(&g, &ml) < edge_cut(&g, &rnd));
    }

    #[test]
    fn refinement_never_worsens(
        side in 4usize..8,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        use sdm_partition::multilevel::refine::{refine, RefineParams};
        let mesh = tet_box(side, side, 3, 0.1, seed);
        let g = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
        let wg = WGraph::from_csr(&g);
        let mut part = partition(&g, None, k, Method::Random, seed);
        let before = wg.cut(&part);
        refine(&wg, &mut part, k, RefineParams::default());
        prop_assert!(wg.cut(&part) <= before);
        prop_assert!(part.iter().all(|&p| (p as usize) < k));
    }
}
