//! Graph partitioning: the MeTis substitute.
//!
//! The paper assumes "a partitioning vector generated from a partitioning
//! tool, such as MeTis" — each entry names the rank that owns a node.
//! This crate produces such vectors:
//!
//! * [`multilevel`] — multilevel k-way partitioning in the MeTis style:
//!   heavy-edge matching coarsening, greedy graph-growing initial
//!   partition, and boundary FM refinement during uncoarsening.
//! * [`rcb`] — recursive coordinate bisection (geometric baseline).
//! * [`block`] / [`random`] — degenerate baselines for tests and lower
//!   bounds.
//! * [`metrics`] — edge cut and load imbalance, the two quantities any
//!   partitioning claim is judged by.

pub mod block;
pub mod metrics;
pub mod multilevel;
pub mod random;
pub mod rcb;
pub mod vector;

pub use block::partition_block;
pub use metrics::{edge_cut, imbalance};
pub use multilevel::partition_kway;
pub use random::partition_random;
pub use rcb::partition_rcb;
pub use vector::PartitionVector;

use sdm_mesh::CsrGraph;

/// Partitioning algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Multilevel k-way (MeTis-style) — the default.
    Multilevel,
    /// Recursive coordinate bisection (needs coordinates).
    Rcb,
    /// Contiguous blocks of node ids.
    Block,
    /// Uniform random assignment (worst-case baseline).
    Random,
}

/// Produce a partitioning vector for `graph` into `nparts` parts.
/// `coords` is required by [`Method::Rcb`] and ignored otherwise.
/// Deterministic in `seed`.
pub fn partition(
    graph: &CsrGraph,
    coords: Option<&[[f64; 3]]>,
    nparts: usize,
    method: Method,
    seed: u64,
) -> PartitionVector {
    assert!(nparts > 0, "need at least one part");
    match method {
        Method::Multilevel => multilevel::kway::partition_kway(graph, nparts, seed),
        Method::Rcb => {
            let coords = coords.expect("RCB requires coordinates");
            rcb::partition_rcb(coords, nparts)
        }
        Method::Block => block::partition_block(graph.num_nodes(), nparts),
        Method::Random => random::partition_random(graph.num_nodes(), nparts, seed),
    }
}
