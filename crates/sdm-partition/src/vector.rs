//! The partitioning vector.

/// `vector[node] = owning part` — the paper's replicated partitioning
/// vector, as produced by MeTis.
pub type PartitionVector = Vec<u32>;

/// Per-part node counts.
pub fn part_sizes(vector: &PartitionVector, nparts: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; nparts];
    for &p in vector {
        sizes[p as usize] += 1;
    }
    sizes
}

/// Check that every entry is a valid part id and (if `require_all`) that
/// no part is empty.
pub fn validate(vector: &PartitionVector, nparts: usize, require_all: bool) -> Result<(), String> {
    for (i, &p) in vector.iter().enumerate() {
        if p as usize >= nparts {
            return Err(format!("node {i} assigned to part {p} >= nparts {nparts}"));
        }
    }
    if require_all {
        let sizes = part_sizes(vector, nparts);
        if let Some(empty) = sizes.iter().position(|&s| s == 0) {
            return Err(format!("part {empty} is empty"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_counted() {
        let v = vec![0, 1, 1, 2, 0];
        assert_eq!(part_sizes(&v, 3), vec![2, 2, 1]);
    }

    #[test]
    fn validate_range() {
        assert!(validate(&vec![0, 3], 3, false).is_err());
        assert!(validate(&vec![0, 2], 3, false).is_ok());
    }

    #[test]
    fn validate_empty_part() {
        assert!(validate(&vec![0, 0, 2], 3, true).is_err());
        assert!(validate(&vec![0, 1, 2], 3, true).is_ok());
    }
}
