//! Contiguous block partitioning.

use crate::vector::PartitionVector;

/// Assign node ids in contiguous blocks of `ceil(n / nparts)`. Matches
/// SDM's "total domain equally divided" import split, so it's the natural
/// baseline for the ring-distribution experiments.
pub fn partition_block(n: usize, nparts: usize) -> PartitionVector {
    assert!(nparts > 0);
    let chunk = n.div_ceil(nparts).max(1);
    (0..n)
        .map(|i| ((i / chunk) as u32).min(nparts as u32 - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::part_sizes;

    #[test]
    fn even_split() {
        let v = partition_block(8, 4);
        assert_eq!(part_sizes(&v, 4), vec![2, 2, 2, 2]);
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn ragged_split() {
        let v = partition_block(10, 4);
        assert_eq!(part_sizes(&v, 4), vec![3, 3, 3, 1]);
    }

    #[test]
    fn more_parts_than_nodes() {
        let v = partition_block(2, 5);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|&p| (p as usize) < 5));
    }

    #[test]
    fn empty_graph() {
        assert!(partition_block(0, 3).is_empty());
    }
}
