//! Boundary FM refinement (k-way, with move sequences and rollback).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::multilevel::wgraph::WGraph;

/// One refinement configuration.
#[derive(Debug, Clone, Copy)]
pub struct RefineParams {
    /// Maximum allowed imbalance (e.g. 1.05 = 5%).
    pub max_imbalance: f64,
    /// Number of improvement passes.
    pub passes: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        Self {
            max_imbalance: 1.05,
            passes: 4,
        }
    }
}

/// Fiduccia–Mattheyses-style refinement. Each pass builds a *sequence*
/// of single-vertex moves (every vertex moves at most once per pass):
/// the best-gain legal move is applied even when its gain is zero or
/// negative, letting the pass climb out of local minima, and the pass
/// then rolls back to the best prefix it saw. During the sequence a
/// part may exceed the balance cap by one vertex of slack; prefixes are
/// ranked feasible-first, so the kept state respects the cap whenever
/// the initial state did.
pub fn refine(g: &WGraph, part: &mut [u32], nparts: usize, params: RefineParams) {
    let n = g.n();
    if n == 0 || nparts < 2 {
        return;
    }
    let total = g.total_weight();
    // Cap per part: the average weight scaled by the allowed imbalance,
    // never below the ceiling average (which must always be feasible).
    let target = total.div_ceil(nparts as u64);
    let max_weight = (((total as f64 / nparts as f64) * params.max_imbalance) as u64).max(target);
    let slack = g.vwgt.iter().copied().max().unwrap_or(0);

    let mut part_weight = vec![0u64; nparts];
    for v in 0..n {
        part_weight[part[v] as usize] += g.vwgt[v];
    }
    let mut cut = g.cut(part) as i64;

    // Per-vertex entry versions for lazy heap invalidation.
    let mut version = vec![0u64; n];
    let mut conn = vec![0i64; nparts];

    for _ in 0..params.passes {
        let mut moved = vec![false; n];
        // Heap of candidate moves: (gain, vertex, entry version).
        let mut heap: BinaryHeap<(i64, Reverse<usize>, u64)> = BinaryHeap::new();

        // Best available gain of v over adjacent foreign parts, ignoring
        // weight limits (rechecked at pop time).
        fn best_gain(g: &WGraph, part: &[u32], conn: &mut [i64], v: usize) -> Option<i64> {
            let home = part[v] as usize;
            let mut touched: Vec<usize> = Vec::with_capacity(8);
            for e in g.nbr_range(v) {
                let p = part[g.adjncy[e] as usize] as usize;
                if conn[p] == 0 {
                    touched.push(p);
                }
                conn[p] += g.adjwgt[e] as i64;
            }
            let internal = conn[home];
            let mut best: Option<i64> = None;
            for &p in &touched {
                if p != home {
                    let gain = conn[p] - internal;
                    if best.is_none_or(|b| gain > b) {
                        best = Some(gain);
                    }
                }
            }
            for &p in &touched {
                conn[p] = 0;
            }
            best
        }

        for (v, &ver) in version.iter().enumerate().take(n) {
            if let Some(gain) = best_gain(g, part, &mut conn, v) {
                heap.push((gain, Reverse(v), ver));
            }
        }

        // Build the move sequence.
        let feasible = |pw: &[u64]| pw.iter().all(|&w| w <= max_weight);
        let initial_feasible = feasible(&part_weight);
        let mut history: Vec<(usize, u32)> = Vec::new(); // (vertex, old part)
                                                         // Best prefix key: feasibility (or the input was already
                                                         // infeasible), then lower cut. Ties keep the earlier prefix.
        let mut best_prefix = 0usize;
        let mut best_key = (initial_feasible, -cut);

        while let Some((_, Reverse(v), stamp)) = heap.pop() {
            if stamp != version[v] || moved[v] {
                continue;
            }
            // Recompute the best target for v under current weights.
            let home = part[v] as usize;
            let mut touched: Vec<usize> = Vec::with_capacity(8);
            for e in g.nbr_range(v) {
                let p = part[g.adjncy[e] as usize] as usize;
                if conn[p] == 0 {
                    touched.push(p);
                }
                conn[p] += g.adjwgt[e] as i64;
            }
            let internal = conn[home];
            let mut best: Option<(i64, u64, usize)> = None; // (gain, lighter-first, part)
            for &p in &touched {
                if p == home || part_weight[p] + g.vwgt[v] > max_weight + slack {
                    continue;
                }
                let gain = conn[p] - internal;
                let cand = (gain, u64::MAX - part_weight[p], p);
                if best.is_none_or(|b| (cand.0, cand.1) > (b.0, b.1)) {
                    best = Some(cand);
                }
            }
            for &p in &touched {
                conn[p] = 0;
            }
            let Some((gain, _, to)) = best else { continue };
            // Apply the move.
            moved[v] = true;
            history.push((v, part[v]));
            part[v] = to as u32;
            part_weight[home] -= g.vwgt[v];
            part_weight[to] += g.vwgt[v];
            cut -= gain;
            let key = (feasible(&part_weight) || !initial_feasible, -cut);
            if key > best_key {
                best_key = key;
                best_prefix = history.len();
            }
            // Refresh candidates around v.
            version[v] += 1;
            for e in g.nbr_range(v) {
                let u = g.adjncy[e] as usize;
                if !moved[u] {
                    version[u] += 1;
                    if let Some(gain) = best_gain(g, part, &mut conn, u) {
                        heap.push((gain, Reverse(u), version[u]));
                    }
                }
            }
        }

        // Roll back past the best prefix.
        for &(v, old) in history[best_prefix..].iter().rev() {
            let cur = part[v] as usize;
            part_weight[cur] -= g.vwgt[v];
            part_weight[old as usize] += g.vwgt[v];
            part[v] = old;
        }
        cut = g.cut(part) as i64;
        if best_prefix == 0 {
            break; // the pass kept nothing: converged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance;
    use sdm_mesh::CsrGraph;

    fn wg(n: usize, edges: &[(u32, u32)]) -> WGraph {
        WGraph::from_csr(&CsrGraph::from_edges(n, edges))
    }

    #[test]
    fn fixes_obviously_bad_path_split() {
        // Path of 8 split alternately: cut 7. Refinement should reach the
        // optimal contiguous split (cut 1) — this *requires* zero/negative
        // gain moves inside a pass, i.e. real FM, because every single
        // move from a perfectly balanced state violates strict balance.
        let edges: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g = wg(8, &edges);
        let mut part = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        refine(
            &g,
            &mut part,
            2,
            RefineParams {
                max_imbalance: 1.0,
                passes: 8,
            },
        );
        let cut = g.cut(&part);
        assert!(cut <= 2, "refined cut {cut} should approach optimal 1");
        assert!(imbalance(&part, 2) <= 1.01);
    }

    #[test]
    fn respects_balance_constraint() {
        // Star: center 0 with 6 leaves; all-to-one would be cut 0 but
        // violates balance.
        let edges: Vec<(u32, u32)> = (1..7).map(|l| (0, l)).collect();
        let g = wg(7, &edges);
        let mut part = vec![0, 0, 0, 0, 1, 1, 1];
        refine(
            &g,
            &mut part,
            2,
            RefineParams {
                max_imbalance: 1.15,
                passes: 4,
            },
        );
        let sizes = crate::vector::part_sizes(&part, 2);
        assert!(
            sizes.iter().all(|&s| s >= 3),
            "balance must hold: {sizes:?}"
        );
    }

    #[test]
    fn never_worsens_cut() {
        let edges: Vec<(u32, u32)> = (0..20u32)
            .flat_map(|i| [(i, (i + 1) % 21), (i, (i + 3) % 21)])
            .collect();
        let g = wg(21, &edges);
        let mut part: Vec<u32> = (0..21).map(|i| (i % 3) as u32).collect();
        let before = g.cut(&part);
        refine(&g, &mut part, 3, RefineParams::default());
        assert!(g.cut(&part) <= before);
    }

    #[test]
    fn single_part_noop() {
        let g = wg(4, &[(0, 1), (2, 3)]);
        let mut part = vec![0u32; 4];
        refine(&g, &mut part, 1, RefineParams::default());
        assert_eq!(part, vec![0; 4]);
    }

    #[test]
    fn infeasible_start_still_improves() {
        // Everything on one side: refinement must shed weight toward the
        // nearly-empty part even though intermediate states stay
        // infeasible for a while.
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = wg(10, &edges);
        let mut part = vec![0u32; 10];
        part[9] = 1; // seed the other side
        refine(
            &g,
            &mut part,
            2,
            RefineParams {
                max_imbalance: 1.1,
                passes: 10,
            },
        );
        let sizes = crate::vector::part_sizes(&part, 2);
        assert!(
            sizes.iter().all(|&s| s >= 3),
            "weight must flow to the light part: {sizes:?}"
        );
        assert!(
            g.cut(&part) <= 2,
            "path split should stay contiguous: cut {}",
            g.cut(&part)
        );
    }

    #[test]
    fn preserves_feasibility_of_input() {
        // A feasible input must never be returned infeasible.
        let edges: Vec<(u32, u32)> = (0..15).map(|i| (i, (i + 1) % 16)).collect();
        let g = wg(16, &edges);
        let mut part: Vec<u32> = (0..16).map(|i| (i / 4) as u32).collect();
        refine(
            &g,
            &mut part,
            4,
            RefineParams {
                max_imbalance: 1.05,
                passes: 6,
            },
        );
        let total = g.total_weight();
        let cap = (((total as f64 / 4.0) * 1.05) as u64).max(total.div_ceil(4));
        let mut w = vec![0u64; 4];
        for v in 0..16 {
            w[part[v] as usize] += g.vwgt[v];
        }
        assert!(
            w.iter().all(|&x| x <= cap),
            "weights {w:?} exceed cap {cap}"
        );
    }
}
