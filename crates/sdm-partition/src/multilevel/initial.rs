//! Greedy graph-growing initial partition (GGGP).

use sdm_sim::rng::SplitMix64;

use crate::multilevel::wgraph::WGraph;

/// Partition the (coarsest) graph into `nparts` by growing regions:
/// each of the first `nparts - 1` parts starts from an unassigned seed
/// and absorbs the unassigned neighbour with the strongest connection
/// to the growing region until it reaches its weight target; the last
/// part takes everything still unassigned. Stragglers from regions that
/// ran out of frontier (disconnected enclaves) join their most-connected
/// part *that still has room*, else the lightest part — without the
/// has-room rule a single enclave cascades the whole remainder into an
/// already-full neighbour.
pub fn greedy_growing(g: &WGraph, nparts: usize, seed: u64) -> Vec<u32> {
    let n = g.n();
    let mut part = vec![u32::MAX; n];
    if n == 0 {
        return part;
    }
    let total = g.total_weight();
    let target = total.div_ceil(nparts as u64);
    let mut rng = SplitMix64::new(seed);
    let mut part_weight = vec![0u64; nparts];

    for p in 0..(nparts as u32).saturating_sub(1) {
        // Seed: a random unassigned node (fall back to scan).
        let seed_node = {
            let unassigned: Vec<usize> = (0..n).filter(|&v| part[v] == u32::MAX).collect();
            if unassigned.is_empty() {
                break;
            }
            unassigned[rng.next_below(unassigned.len() as u64) as usize]
        };
        part[seed_node] = p;
        part_weight[p as usize] += g.vwgt[seed_node];
        // Gain of each unassigned node = total edge weight into part p.
        let mut gain = vec![0u64; n];
        let mut frontier: Vec<usize> = Vec::new();
        let push_nbrs = |v: usize, gain: &mut Vec<u64>, frontier: &mut Vec<usize>, part: &[u32]| {
            for e in g.nbr_range(v) {
                let u = g.adjncy[e] as usize;
                if part[u] == u32::MAX {
                    if gain[u] == 0 {
                        frontier.push(u);
                    }
                    gain[u] += g.adjwgt[e];
                }
            }
        };
        push_nbrs(seed_node, &mut gain, &mut frontier, &part);
        while part_weight[p as usize] < target {
            // Best frontier node (max gain, lowest id).
            frontier.retain(|&u| part[u] == u32::MAX);
            let Some(&best) = frontier
                .iter()
                .max_by_key(|&&u| (gain[u], std::cmp::Reverse(u)))
            else {
                break; // region exhausted (disconnected)
            };
            part[best] = p;
            part_weight[p as usize] += g.vwgt[best];
            push_nbrs(best, &mut gain, &mut frontier, &part);
        }
    }

    // The last part is the remainder. If earlier regions exhausted their
    // component and broke early, the remainder may be heavy; refinement
    // rebalances later. Enclave stragglers are redirected to connected
    // parts with room first so the last part is not a dumping ground for
    // everything.
    let last = (nparts - 1) as u32;
    for v in 0..n {
        if part[v] != u32::MAX {
            continue;
        }
        if part_weight[last as usize] < target {
            part[v] = last;
            part_weight[last as usize] += g.vwgt[v];
            continue;
        }
        let mut conn = vec![0u64; nparts];
        for e in g.nbr_range(v) {
            let u = g.adjncy[e] as usize;
            if part[u] != u32::MAX {
                conn[part[u] as usize] += g.adjwgt[e];
            }
        }
        let best = (0..nparts)
            .filter(|&p| conn[p] > 0 && part_weight[p] < target)
            .max_by_key(|&p| (conn[p], std::cmp::Reverse(p)))
            .unwrap_or_else(|| (0..nparts).min_by_key(|&p| part_weight[p]).unwrap());
        part[v] = best as u32;
        part_weight[best] += g.vwgt[v];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance;
    use crate::vector::validate;
    use sdm_mesh::CsrGraph;

    fn wg(n: usize, edges: &[(u32, u32)]) -> WGraph {
        WGraph::from_csr(&CsrGraph::from_edges(n, edges))
    }

    #[test]
    fn covers_all_nodes() {
        let g = wg(
            10,
            &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (7, 8), (8, 9)],
        );
        let p = greedy_growing(&g, 3, 1);
        assert!(p.iter().all(|&x| x != u32::MAX));
        validate(&p, 3, false).unwrap();
    }

    #[test]
    fn path_bisection_is_contiguous_and_balanced() {
        let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = wg(20, &edges);
        let p = greedy_growing(&g, 2, 5);
        assert!(imbalance(&p, 2) <= 1.2, "imbalance {}", imbalance(&p, 2));
        // A grown region on a path is an interval: cut must be small.
        assert!(g.cut(&p) <= 2, "cut {} too high for a path", g.cut(&p));
    }

    #[test]
    fn enclave_seed_does_not_collapse_balance() {
        // Many seeds: whatever unlucky enclave the second seed lands in,
        // the bisection must stay roughly balanced because the remainder
        // flows to the part with room.
        let edges: Vec<(u32, u32)> = (0..39).map(|i| (i, i + 1)).collect();
        let g = wg(40, &edges);
        for seed in 0..10 {
            let p = greedy_growing(&g, 2, seed);
            let imb = imbalance(&p, 2);
            assert!(imb <= 1.3, "seed {seed}: imbalance {imb}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let edges: Vec<(u32, u32)> = (0..29).map(|i| (i, i + 1)).collect();
        let g = wg(30, &edges);
        assert_eq!(greedy_growing(&g, 4, 9), greedy_growing(&g, 4, 9));
    }

    #[test]
    fn single_part() {
        let g = wg(5, &[(0, 1), (2, 3)]);
        assert_eq!(greedy_growing(&g, 1, 0), vec![0; 5]);
    }
}
