//! Weighted graphs for the multilevel hierarchy.

use sdm_mesh::CsrGraph;

/// CSR graph with node and edge weights. Coarse levels carry the
/// accumulated weights of the fine nodes/edges they represent.
#[derive(Debug, Clone)]
pub struct WGraph {
    /// Row pointers.
    pub xadj: Vec<usize>,
    /// Neighbour lists.
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u64>,
    /// Node weights.
    pub vwgt: Vec<u64>,
}

impl WGraph {
    /// Lift an unweighted graph (all weights 1).
    pub fn from_csr(g: &CsrGraph) -> Self {
        Self {
            xadj: g.xadj.clone(),
            adjncy: g.adjncy.clone(),
            adjwgt: vec![1; g.adjncy.len()],
            vwgt: vec![1; g.num_nodes()],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Total node weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Neighbour index range of `v`.
    pub fn nbr_range(&self, v: usize) -> std::ops::Range<usize> {
        self.xadj[v]..self.xadj[v + 1]
    }

    /// Weighted edge cut under `part`.
    pub fn cut(&self, part: &[u32]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.n() {
            for e in self.nbr_range(v) {
                let u = self.adjncy[e] as usize;
                if u > v && part[u] != part[v] {
                    cut += self.adjwgt[e];
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_csr_unit_weights() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let w = WGraph::from_csr(&g);
        assert_eq!(w.n(), 3);
        assert_eq!(w.total_weight(), 3);
        assert_eq!(w.adjwgt, vec![1; 4]);
        assert_eq!(w.cut(&[0, 0, 1]), 1);
        assert_eq!(w.cut(&[0, 1, 0]), 2);
    }
}
