//! The multilevel driver.

use sdm_mesh::CsrGraph;

use crate::multilevel::coarsen::contract;
use crate::multilevel::initial::greedy_growing;
use crate::multilevel::matching::heavy_edge_matching;
use crate::multilevel::refine::{refine, RefineParams};
use crate::multilevel::wgraph::WGraph;
use crate::vector::PartitionVector;

/// Multilevel k-way partition of `graph` into `nparts`.
pub fn partition_kway(graph: &CsrGraph, nparts: usize, seed: u64) -> PartitionVector {
    assert!(nparts > 0);
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    if nparts == 1 {
        return vec![0; n];
    }
    if nparts >= n {
        // Degenerate: one node per part (extra parts empty).
        return (0..n as u32).collect();
    }

    // Coarsening phase.
    let coarsest_target = (30 * nparts).max(120);
    let mut levels: Vec<(WGraph, Vec<u32>)> = Vec::new(); // (fine graph, cmap fine->coarse)
    let mut g = WGraph::from_csr(graph);
    let mut level_seed = seed;
    while g.n() > coarsest_target {
        let mate = heavy_edge_matching(&g, level_seed);
        let (cg, cmap) = contract(&g, &mate);
        // Matching stalled (e.g. star graphs): stop coarsening.
        if cg.n() as f64 > g.n() as f64 * 0.95 {
            break;
        }
        levels.push((g, cmap));
        g = cg;
        level_seed = level_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    }

    // Initial partition on the coarsest graph.
    let mut part = greedy_growing(&g, nparts, seed ^ 0x00C0_FFEE);
    refine(
        &g,
        &mut part,
        nparts,
        RefineParams {
            max_imbalance: 1.03,
            passes: 8,
        },
    );

    // Uncoarsening with refinement.
    while let Some((fine, cmap)) = levels.pop() {
        let mut fine_part = vec![0u32; fine.n()];
        for v in 0..fine.n() {
            fine_part[v] = part[cmap[v] as usize];
        }
        refine(
            &fine,
            &mut fine_part,
            nparts,
            RefineParams {
                max_imbalance: 1.05,
                passes: 4,
            },
        );
        part = fine_part;
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance};
    use crate::vector::validate;
    use sdm_mesh::gen::{tet_box, tri_rect};

    #[test]
    fn partitions_mesh_with_quality() {
        let m = tet_box(10, 10, 10, 0.1, 3);
        let g = CsrGraph::from_edges(m.num_nodes(), &m.edges);
        for k in [2, 4, 8] {
            let p = partition_kway(&g, k, 42);
            validate(&p, k, true).unwrap();
            let imb = imbalance(&p, k);
            assert!(imb <= 1.1, "k={k}: imbalance {imb}");
            let cut = edge_cut(&g, &p);
            let rnd = crate::random::partition_random(g.num_nodes(), k, 1);
            let rnd_cut = edge_cut(&g, &rnd);
            assert!(
                cut * 3 < rnd_cut,
                "k={k}: multilevel cut {cut} should be far below random {rnd_cut}"
            );
        }
    }

    #[test]
    fn comparable_to_rcb_on_geometric_mesh() {
        // On a jittered lattice, multilevel should be in RCB's league
        // (usually better) for edge cut.
        let m = tet_box(9, 9, 9, 0.2, 7);
        let g = CsrGraph::from_edges(m.num_nodes(), &m.edges);
        let ml = partition_kway(&g, 8, 5);
        let rcb = crate::rcb::partition_rcb(&m.coords, 8);
        let cut_ml = edge_cut(&g, &ml);
        let cut_rcb = edge_cut(&g, &rcb);
        assert!(
            (cut_ml as f64) < cut_rcb as f64 * 1.5,
            "multilevel {cut_ml} should be within 1.5x of RCB {cut_rcb}"
        );
    }

    #[test]
    fn two_d_mesh() {
        let m = tri_rect(30, 30);
        let g = CsrGraph::from_edges(m.num_nodes(), &m.edges);
        let p = partition_kway(&g, 6, 11);
        validate(&p, 6, true).unwrap();
        assert!(imbalance(&p, 6) <= 1.1);
    }

    #[test]
    fn deterministic() {
        let m = tet_box(6, 6, 6, 0.1, 1);
        let g = CsrGraph::from_edges(m.num_nodes(), &m.edges);
        assert_eq!(partition_kway(&g, 4, 9), partition_kway(&g, 4, 9));
    }

    #[test]
    fn degenerate_cases() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(partition_kway(&g, 1, 0), vec![0; 3]);
        let p = partition_kway(&g, 5, 0);
        assert_eq!(p, vec![0, 1, 2], "nparts >= n: one node per part");
        assert!(partition_kway(&CsrGraph::from_edges(0, &[]), 2, 0).is_empty());
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = CsrGraph::from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = partition_kway(&g, 2, 3);
        validate(&p, 2, true).unwrap();
        assert!(edge_cut(&g, &p) <= 2);
    }
}
