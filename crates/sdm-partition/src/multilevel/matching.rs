//! Heavy-edge matching.

use sdm_sim::rng::SplitMix64;

use crate::multilevel::wgraph::WGraph;

/// Heaviest unmatched neighbour of `v` (ties to the lower id), if any.
fn heaviest_neighbor(g: &WGraph, matched: &[bool], v: usize) -> Option<u32> {
    let mut best: Option<(u64, u32)> = None;
    for e in g.nbr_range(v) {
        let u = g.adjncy[e];
        if matched[u as usize] || u as usize == v {
            continue;
        }
        let w = g.adjwgt[e];
        match best {
            Some((bw, bu)) if (w, std::cmp::Reverse(u)) <= (bw, std::cmp::Reverse(bu)) => {}
            _ => best = Some((w, u)),
        }
    }
    best.map(|(_, u)| u)
}

/// Compute a matching: `mate[v]` is `v`'s partner, or `v` itself if
/// unmatched.
///
/// Two phases, both deterministic:
/// 1. **Mutual-heaviest pass** — an edge whose endpoints each consider
///    it their heaviest incident edge is always matched, independent of
///    visit order. This guarantees locally dominant heavy edges (the
///    ones coarsening most wants to contract) are never missed.
/// 2. **Greedy pass** — remaining nodes, in a seeded random order, grab
///    their heaviest unmatched neighbour (ties to the lower id).
pub fn heavy_edge_matching(g: &WGraph, seed: u64) -> Vec<u32> {
    let n = g.n();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];

    // Phase 1: mutual heaviest edges.
    for v in 0..n {
        if matched[v] {
            continue;
        }
        if let Some(u) = heaviest_neighbor(g, &matched, v) {
            let u = u as usize;
            if !matched[u] && heaviest_neighbor(g, &matched, u) == Some(v as u32) {
                mate[v] = u as u32;
                mate[u] = v as u32;
                matched[v] = true;
                matched[u] = true;
            }
        }
    }

    // Phase 2: greedy over the rest.
    let mut order: Vec<u32> = (0..n as u32).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    for &v in &order {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        if let Some(u) = heaviest_neighbor(g, &matched, v) {
            mate[v] = u;
            mate[u as usize] = v as u32;
            matched[v] = true;
            matched[u as usize] = true;
        }
    }
    mate
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_mesh::CsrGraph;

    fn wg(n: usize, edges: &[(u32, u32)]) -> WGraph {
        WGraph::from_csr(&CsrGraph::from_edges(n, edges))
    }

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = wg(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mate = heavy_edge_matching(&g, 7);
        for v in 0..6 {
            let m = mate[v] as usize;
            assert_eq!(mate[m] as usize, v, "matching must be an involution");
        }
    }

    #[test]
    fn heavy_edges_preferred() {
        // Triangle 0-1-2 with a heavy edge (1,2).
        let csr = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut g = WGraph::from_csr(&csr);
        // Find both directions of edge (1,2) and weight them 10.
        for v in 0..3 {
            for e in g.xadj[v]..g.xadj[v + 1] {
                let u = g.adjncy[e] as usize;
                if (v == 1 && u == 2) || (v == 2 && u == 1) {
                    g.adjwgt[e] = 10;
                }
            }
        }
        // Whatever the visit order, (1,2) is mutually heaviest and must
        // be matched.
        for seed in 0..5 {
            let mate = heavy_edge_matching(&g, seed);
            assert!(
                mate[1] == 2 && mate[2] == 1,
                "heavy edge must be matched (seed {seed}): {mate:?}"
            );
        }
    }

    #[test]
    fn path_matches_many() {
        let g = wg(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let mate = heavy_edge_matching(&g, 1);
        let matched = (0..8).filter(|&v| mate[v] as usize != v).count();
        assert!(
            matched >= 6,
            "a path of 8 should match at least 3 pairs, matched {matched}"
        );
    }

    #[test]
    fn isolated_nodes_stay_unmatched() {
        let g = wg(3, &[(0, 1)]);
        let mate = heavy_edge_matching(&g, 0);
        assert_eq!(mate[2], 2);
    }

    #[test]
    fn uniform_weights_still_match_well() {
        // On unit weights the mutual-heaviest pass picks lowest-id
        // neighbours; combined with the greedy pass, a cycle matches
        // almost perfectly.
        let edges: Vec<(u32, u32)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let g = wg(10, &edges);
        let mate = heavy_edge_matching(&g, 3);
        let matched = (0..10).filter(|&v| mate[v] as usize != v).count();
        assert!(
            matched >= 8,
            "cycle of 10 should match >= 4 pairs, got {matched}"
        );
    }
}
