//! Multilevel k-way partitioning (MeTis-style).
//!
//! Three phases, as in Karypis & Kumar: (1) *coarsening* by heavy-edge
//! matching until the graph is small, (2) an *initial partition* of the
//! coarsest graph by greedy graph growing, (3) *uncoarsening* that
//! projects the partition back level by level, running boundary FM
//! refinement at each step.

pub mod coarsen;
pub mod initial;
pub mod kway;
pub mod matching;
pub mod refine;
pub mod wgraph;

pub use kway::partition_kway;
pub use wgraph::WGraph;
