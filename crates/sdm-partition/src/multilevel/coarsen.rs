//! Graph contraction.

use std::collections::HashMap;

use crate::multilevel::wgraph::WGraph;

/// Contract matched pairs into coarse nodes. Returns the coarse graph and
/// the projection map `cmap[fine] = coarse`.
pub fn contract(g: &WGraph, mate: &[u32]) -> (WGraph, Vec<u32>) {
    let n = g.n();
    let mut cmap = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n {
        if cmap[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        cmap[v] = nc;
        cmap[m] = nc; // m == v for unmatched nodes
        nc += 1;
    }
    let ncn = nc as usize;

    let mut vwgt = vec![0u64; ncn];
    for v in 0..n {
        vwgt[cmap[v] as usize] += g.vwgt[v];
        // Matched partners share a coarse id; add each fine node once.
        if mate[v] as usize != v && (mate[v] as usize) < v {
            // already counted when we visited the partner — undo double add
            // (handled by the guard below instead)
        }
    }
    // The loop above double-counts nothing: each fine v adds its own
    // weight exactly once.

    // Accumulate coarse edges.
    let mut edges: HashMap<(u32, u32), u64> = HashMap::new();
    for v in 0..n {
        let cv = cmap[v];
        for e in g.nbr_range(v) {
            let u = g.adjncy[e] as usize;
            let cu = cmap[u];
            if cu == cv {
                continue; // interior (contracted) edge
            }
            if cv < cu {
                *edges.entry((cv, cu)).or_insert(0) += g.adjwgt[e];
            }
        }
    }
    // edges counted once per direction of the fine edge with cv < cu;
    // each undirected fine edge appears in adjncy twice (v->u and u->v),
    // but only the direction with cv < cu accumulates, so each fine edge
    // contributes its weight exactly once.

    let mut sorted: Vec<((u32, u32), u64)> = edges.into_iter().collect();
    sorted.sort_unstable_by_key(|&(k, _)| k);

    let mut deg = vec![0usize; ncn];
    for &((a, b), _) in &sorted {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    let mut xadj = vec![0usize; ncn + 1];
    for v in 0..ncn {
        xadj[v + 1] = xadj[v] + deg[v];
    }
    let mut adjncy = vec![0u32; xadj[ncn]];
    let mut adjwgt = vec![0u64; xadj[ncn]];
    let mut fill = xadj.clone();
    for &((a, b), w) in &sorted {
        adjncy[fill[a as usize]] = b;
        adjwgt[fill[a as usize]] = w;
        fill[a as usize] += 1;
        adjncy[fill[b as usize]] = a;
        adjwgt[fill[b as usize]] = w;
        fill[b as usize] += 1;
    }
    (
        WGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        },
        cmap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_mesh::CsrGraph;

    fn wg(n: usize, edges: &[(u32, u32)]) -> WGraph {
        WGraph::from_csr(&CsrGraph::from_edges(n, edges))
    }

    #[test]
    fn contract_square_pairwise() {
        // Square 0-1-3-2-0, match (0,1) and (2,3).
        let g = wg(4, &[(0, 1), (1, 3), (2, 3), (0, 2)]);
        let mate = vec![1, 0, 3, 2];
        let (cg, cmap) = contract(&g, &mate);
        assert_eq!(cg.n(), 2);
        assert_eq!(cmap[0], cmap[1]);
        assert_eq!(cmap[2], cmap[3]);
        assert_eq!(cg.vwgt, vec![2, 2]);
        // Two fine edges (1,3) and (0,2) between the coarse nodes.
        assert_eq!(cg.adjwgt, vec![2, 2]);
        assert_eq!(cg.cut(&[0, 1]), 2);
    }

    #[test]
    fn unmatched_nodes_survive() {
        let g = wg(3, &[(0, 1), (1, 2)]);
        let mate = vec![1, 0, 2]; // 2 unmatched
        let (cg, cmap) = contract(&g, &mate);
        assert_eq!(cg.n(), 2);
        assert_eq!(cg.vwgt.iter().sum::<u64>(), 3);
        assert_ne!(cmap[2], cmap[0]);
    }

    #[test]
    fn weight_conserved_across_levels() {
        let g = wg(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mate = crate::multilevel::matching::heavy_edge_matching(&g, 3);
        let (cg, _) = contract(&g, &mate);
        assert_eq!(cg.total_weight(), g.total_weight());
    }

    #[test]
    fn triangle_contraction_merges_parallel_edges() {
        // Triangle: match (0,1); coarse graph has one node pair with the
        // two fine edges (0,2) and (1,2) merged into weight 2.
        let g = wg(3, &[(0, 1), (0, 2), (1, 2)]);
        let (cg, _) = contract(&g, &[1, 0, 2]);
        assert_eq!(cg.n(), 2);
        assert_eq!(cg.adjwgt, vec![2, 2]);
    }
}
