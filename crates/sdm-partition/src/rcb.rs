//! Recursive coordinate bisection.
//!
//! Geometric partitioner: recursively split the node set at the weighted
//! median along the widest coordinate axis, allocating parts
//! proportionally (handles non-power-of-two part counts).

use crate::vector::PartitionVector;

/// Partition by recursive coordinate bisection over `coords`.
pub fn partition_rcb(coords: &[[f64; 3]], nparts: usize) -> PartitionVector {
    assert!(nparts > 0);
    let mut vector = vec![0u32; coords.len()];
    let mut ids: Vec<u32> = (0..coords.len() as u32).collect();
    bisect(coords, &mut ids, 0, nparts, &mut vector);
    vector
}

fn bisect(
    coords: &[[f64; 3]],
    ids: &mut [u32],
    first_part: usize,
    nparts: usize,
    out: &mut Vec<u32>,
) {
    if nparts == 1 || ids.len() <= 1 {
        for &i in ids.iter() {
            out[i as usize] = first_part as u32;
        }
        // If several parts were requested but only <=1 node remains, the
        // extra parts stay empty; callers requesting nparts <= n avoid this.
        return;
    }
    // Widest axis.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in ids.iter() {
        for a in 0..3 {
            lo[a] = lo[a].min(coords[i as usize][a]);
            hi[a] = hi[a].max(coords[i as usize][a]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();

    // Split proportionally: left gets floor(nparts/2) parts' worth.
    let left_parts = nparts / 2;
    let split = ids.len() * left_parts / nparts;
    // Order-statistics split by the chosen axis (ties broken by node id
    // for determinism).
    ids.sort_unstable_by(|&a, &b| {
        coords[a as usize][axis]
            .partial_cmp(&coords[b as usize][axis])
            .unwrap()
            .then(a.cmp(&b))
    });
    let (left, right) = ids.split_at_mut(split);
    bisect(coords, left, first_part, left_parts, out);
    bisect(
        coords,
        right,
        first_part + left_parts,
        nparts - left_parts,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance};
    use crate::vector::validate;
    use sdm_mesh::gen::tet_box;
    use sdm_mesh::CsrGraph;

    #[test]
    fn splits_line_in_half() {
        let coords: Vec<[f64; 3]> = (0..10).map(|i| [i as f64, 0.0, 0.0]).collect();
        let v = partition_rcb(&coords, 2);
        assert_eq!(&v[..5], &[0; 5]);
        assert_eq!(&v[5..], &[1; 5]);
    }

    #[test]
    fn three_parts_proportional() {
        let coords: Vec<[f64; 3]> = (0..9).map(|i| [i as f64, 0.0, 0.0]).collect();
        let v = partition_rcb(&coords, 3);
        validate(&v, 3, true).unwrap();
        assert!(imbalance(&v, 3) <= 1.34, "imbalance {}", imbalance(&v, 3));
    }

    #[test]
    fn rcb_beats_random_cut_on_mesh() {
        let m = tet_box(8, 8, 8, 0.1, 5);
        let g = CsrGraph::from_edges(m.num_nodes(), &m.edges);
        let rcb = partition_rcb(&m.coords, 8);
        let rnd = crate::random::partition_random(m.num_nodes(), 8, 1);
        let cut_rcb = edge_cut(&g, &rcb);
        let cut_rnd = edge_cut(&g, &rnd);
        assert!(
            cut_rcb < cut_rnd / 2,
            "RCB cut {cut_rcb} should be far below random cut {cut_rnd}"
        );
        validate(&rcb, 8, true).unwrap();
        assert!(imbalance(&rcb, 8) <= 1.1);
    }

    #[test]
    fn single_part_is_all_zero() {
        let coords: Vec<[f64; 3]> = (0..5).map(|i| [i as f64, 0.0, 0.0]).collect();
        assert_eq!(partition_rcb(&coords, 1), vec![0; 5]);
    }

    #[test]
    fn deterministic_under_ties() {
        let coords = vec![[1.0, 0.0, 0.0]; 8];
        let a = partition_rcb(&coords, 4);
        let b = partition_rcb(&coords, 4);
        assert_eq!(a, b);
        validate(&a, 4, true).unwrap();
    }
}
