//! Partition quality metrics.

use sdm_mesh::CsrGraph;

use crate::vector::{part_sizes, PartitionVector};

/// Number of edges whose endpoints lie in different parts. This is what
/// drives SDM's ghost-edge volume and therefore the communication cost of
/// the index distribution.
pub fn edge_cut(graph: &CsrGraph, vector: &PartitionVector) -> usize {
    let mut cut = 0usize;
    for v in 0..graph.num_nodes() {
        for &u in graph.neighbors(v) {
            if (u as usize) > v && vector[v] != vector[u as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// Load imbalance: `max part size / ideal size`. 1.0 is perfect.
pub fn imbalance(vector: &PartitionVector, nparts: usize) -> f64 {
    if vector.is_empty() {
        return 1.0;
    }
    let sizes = part_sizes(vector, nparts);
    let max = *sizes.iter().max().unwrap() as f64;
    let ideal = vector.len() as f64 / nparts as f64;
    max / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> CsrGraph {
        // 0-1
        // | |
        // 2-3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn cut_of_horizontal_split() {
        let g = square();
        // {0,1} vs {2,3}: cuts (0,2) and (1,3).
        assert_eq!(edge_cut(&g, &vec![0, 0, 1, 1]), 2);
    }

    #[test]
    fn cut_of_single_part_is_zero() {
        let g = square();
        assert_eq!(edge_cut(&g, &vec![0; 4]), 0);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        assert_eq!(imbalance(&vec![0, 0, 1, 1], 2), 1.0);
        assert_eq!(imbalance(&vec![0, 0, 0, 1], 2), 1.5);
        assert_eq!(imbalance(&vec![], 4), 1.0);
    }
}
