//! Random partitioning (worst-case baseline).

use sdm_sim::rng::SplitMix64;

use crate::vector::PartitionVector;

/// Assign each node a uniformly random part. Maximizes edge cut and
/// fragment count — the lower bound any real partitioner must beat, and
/// the stress case for the map-array coalescing in SDM's file views.
pub fn partition_random(n: usize, nparts: usize, seed: u64) -> PartitionVector {
    assert!(nparts > 0);
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| rng.next_below(nparts as u64) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{part_sizes, validate};

    #[test]
    fn deterministic_and_valid() {
        let a = partition_random(100, 7, 3);
        let b = partition_random(100, 7, 3);
        assert_eq!(a, b);
        validate(&a, 7, false).unwrap();
    }

    #[test]
    fn roughly_balanced_at_scale() {
        let v = partition_random(70_000, 7, 11);
        let sizes = part_sizes(&v, 7);
        for s in sizes {
            assert!(
                (9_000..11_000).contains(&s),
                "size {s} too skewed for uniform assignment"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(partition_random(50, 4, 1), partition_random(50, 4, 2));
    }
}
