//! Expression evaluation and statement execution.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::schema::{Column, Schema};
use crate::sql::ast::{AggFunc, BinOp, Expr, Join, OrderBy, SelExpr, SelectItem, Statement};
use crate::table::Row;
use crate::undo::{UndoLog, UndoRecord};
use crate::value::{IndexKey, Value};

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// SELECT result: projected column names + rows.
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Row>,
    },
    /// Row count affected by INSERT/UPDATE/DELETE, or 0 for DDL.
    Affected(usize),
}

/// Per-connection execution counters; exposed by `Database::stats` so
/// tests and benches can observe parse reuse, index usage, and row
/// volumes per query shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// SELECTs answered by a full table (or join) scan.
    pub full_scans: u64,
    /// SELECTs answered through a secondary-index equality probe.
    pub index_scans: u64,
    /// Statement preparations served from the parsed-plan cache.
    pub parse_hits: u64,
    /// Statement preparations that had to lex + parse the SQL text.
    pub parse_misses: u64,
    /// Source rows visited by SELECTs (index candidates for probes,
    /// whole tables for scans, both sides for joins).
    pub rows_scanned: u64,
    /// Rows returned by SELECTs after filtering/aggregation/limit.
    pub rows_returned: u64,
    /// Successfully committed `BEGIN`…`COMMIT` transactions. Batching
    /// layers (`CachedStore`) assert on this: a scoped timestep must
    /// land all its execution inserts in exactly one transaction.
    pub transactions: u64,
    /// Statements that entered the engine as SQL **text**
    /// (`Database::prepare` / `Database::exec`), whether or not the
    /// parse was served from the plan cache. Typed statements executed
    /// through `Database::exec_stmt` never move this counter — the
    /// bench asserts it stays flat on the warmed typed hot path.
    pub sql_texts: u64,
    /// Row images replayed by `ROLLBACK`s. Transactions log row-level
    /// undo records instead of snapshotting the catalog, so after a
    /// rollback this counter equals the rows the transaction *touched*
    /// — the bench asserts it is independent of table size.
    pub tx_rows_undone: u64,
}

impl DbStats {
    /// Accumulate `other` into `self` field-wise. Statement execution
    /// records into a local `DbStats` and merges once at the end, so
    /// concurrent readers never serialize on the shared stats mutex
    /// mid-query.
    pub fn merge(&mut self, other: &DbStats) {
        let DbStats {
            full_scans,
            index_scans,
            parse_hits,
            parse_misses,
            rows_scanned,
            rows_returned,
            transactions,
            sql_texts,
            tx_rows_undone,
        } = other;
        self.full_scans += full_scans;
        self.index_scans += index_scans;
        self.parse_hits += parse_hits;
        self.parse_misses += parse_misses;
        self.rows_scanned += rows_scanned;
        self.rows_returned += rows_returned;
        self.transactions += transactions;
        self.sql_texts += sql_texts;
        self.tx_rows_undone += tx_rows_undone;
    }
}

/// Column-name resolution context for expression evaluation.
///
/// `Schema` resolves plain names; relations built for joins resolve
/// qualified `table.column` names too.
pub trait Resolve {
    /// Index of `name` in a row, or an error naming the problem.
    fn col_index(&self, name: &str) -> DbResult<usize>;
}

impl Resolve for Schema {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
    }
}

/// A single table with its name: resolves both `col` and `table.col`.
struct TableRel<'a> {
    table: &'a str,
    schema: &'a Schema,
}

impl Resolve for TableRel<'_> {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        match name.split_once('.') {
            None => self.schema.index_of(name),
            Some((t, c)) if t.eq_ignore_ascii_case(self.table) => self.schema.index_of(c),
            Some(_) => Err(DbError::NoSuchColumn(name.to_string())),
        }
    }
}

/// The concatenated schema of an equi-join: qualified names plus
/// unambiguous plain names.
struct JoinRel {
    /// `(qualified, plain)` per combined column.
    cols: Vec<(String, String)>,
}

impl Resolve for JoinRel {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        if name.contains('.') {
            return self
                .cols
                .iter()
                .position(|(q, _)| q.eq_ignore_ascii_case(name))
                .ok_or_else(|| DbError::NoSuchColumn(name.to_string()));
        }
        let mut hits = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (_, p))| p.eq_ignore_ascii_case(name));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(DbError::NoSuchColumn(format!(
                "ambiguous column {name} (qualify it)"
            ))),
            _ => Err(DbError::NoSuchColumn(name.to_string())),
        }
    }
}

/// Output rows of an aggregate query: resolves projected output names.
struct NamedRel {
    names: Vec<String>,
}

impl Resolve for NamedRel {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        self.names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::NoSuchColumn(format!("{name} (not an output column)")))
    }
}

/// Evaluate `expr` against a row (with `res` resolving column names)
/// and positional `params`.
pub fn eval(expr: &Expr, res: &impl Resolve, row: &Row, params: &[Value]) -> DbResult<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Col(name) => Ok(row[res.col_index(name)?].clone()),
        Expr::Param(i) => params.get(*i).cloned().ok_or_else(|| {
            DbError::Arity(format!(
                "missing parameter {} (got {})",
                i + 1,
                params.len()
            ))
        }),
        Expr::Neg(e) => match eval(e, res, row, params)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            Value::Null => Ok(Value::Null),
            other => Err(DbError::Type(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        Expr::Not(e) => match truthy(&eval(e, res, row, params)?) {
            Some(b) => Ok(Value::Int(!b as i64)),
            None => Ok(Value::Null),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, res, row, params)?;
            Ok(Value::Int((v.is_null() != *negated) as i64))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, res, row, params)?;
            // Short-circuit logic ops (SQL three-valued).
            match op {
                BinOp::And => {
                    if truthy(&l) == Some(false) {
                        return Ok(Value::Int(0));
                    }
                    let r = eval(rhs, res, row, params)?;
                    return Ok(match (truthy(&l), truthy(&r)) {
                        (Some(a), Some(b)) => Value::Int((a && b) as i64),
                        (_, Some(false)) => Value::Int(0),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    if truthy(&l) == Some(true) {
                        return Ok(Value::Int(1));
                    }
                    let r = eval(rhs, res, row, params)?;
                    return Ok(match (truthy(&l), truthy(&r)) {
                        (Some(a), Some(b)) => Value::Int((a || b) as i64),
                        (_, Some(true)) => Value::Int(1),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let r = eval(rhs, res, row, params)?;
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let cmp = l.sql_cmp(&r);
                    Ok(match cmp {
                        None => Value::Null,
                        Some(o) => {
                            let b = match op {
                                BinOp::Eq => o == Ordering::Equal,
                                BinOp::Ne => o != Ordering::Equal,
                                BinOp::Lt => o == Ordering::Less,
                                BinOp::Le => o != Ordering::Greater,
                                BinOp::Gt => o == Ordering::Greater,
                                BinOp::Ge => o != Ordering::Less,
                                _ => unreachable!(),
                            };
                            Value::Int(b as i64)
                        }
                    })
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &l, &r),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Double(d) => Some(*d != 0.0),
        Value::Text(s) => Some(!s.is_empty()),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> DbResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null // SQL: division by zero yields NULL
                } else {
                    Value::Int(a / b)
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("arithmetic on {}", l.type_name())))?;
            let b = r
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("arithmetic on {}", r.type_name())))?;
            Ok(match op {
                BinOp::Add => Value::Double(a + b),
                BinOp::Sub => Value::Double(a - b),
                BinOp::Mul => Value::Double(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

/// Compute one aggregate over the given column values.
fn aggregate(func: AggFunc, vals: &[&Value]) -> Value {
    match func {
        AggFunc::Count => Value::Int(vals.iter().filter(|v| !v.is_null()).count() as i64),
        AggFunc::Sum => {
            let mut int_sum = 0i64;
            let mut dbl_sum = 0.0f64;
            let mut any = false;
            let mut all_int = true;
            for v in vals.iter().filter(|v| !v.is_null()) {
                any = true;
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        dbl_sum += *i as f64;
                    }
                    Value::Double(d) => {
                        all_int = false;
                        dbl_sum += d;
                    }
                    _ => all_int = false, // text sums to 0 contribution, MySQL-ish leniency
                }
            }
            match (any, all_int) {
                (false, _) => Value::Null,
                (true, true) => Value::Int(int_sum),
                (true, false) => Value::Double(dbl_sum),
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Double(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in vals.iter().filter(|v| !v.is_null()) {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.sql_cmp(b) {
                        Some(Ordering::Less) if func == AggFunc::Min => v,
                        Some(Ordering::Greater) if func == AggFunc::Max => v,
                        _ => b,
                    },
                });
            }
            best.cloned().unwrap_or(Value::Null)
        }
    }
}

/// Collect every top-level `col = <const>` conjunct whose value is known
/// without a row (literal or parameter), for index probing.
fn eq_probes<'a>(filter: &'a Expr, params: &[Value], out: &mut Vec<(&'a str, Value)>) {
    match filter {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            eq_probes(lhs, params, out);
            eq_probes(rhs, params, out);
        }
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let const_of = |e: &Expr| -> Option<Value> {
                match e {
                    Expr::Lit(v) => Some(v.clone()),
                    Expr::Param(i) => params.get(*i).cloned(),
                    _ => None,
                }
            };
            let probe = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(c), e) => const_of(e).map(|v| (c.as_str(), v)),
                (e, Expr::Col(c)) => const_of(e).map(|v| (c.as_str(), v)),
                _ => None,
            };
            out.extend(probe);
        }
        _ => {}
    }
}

/// Positions of rows matching a top-level `col = const` conjunct through
/// a secondary index, if one applies (`None` means scan). When several
/// conjuncts are indexed, the **smallest candidate bucket** wins — the
/// probe visits the most selective index, and the caller re-verifies
/// candidates against the full predicate. Candidates come back borrowed
/// and in ascending row order, so an index probe allocates nothing and
/// returns rows exactly as a full scan would.
fn index_candidates<'c>(
    catalog: &'c Catalog,
    table: &str,
    rel: &TableRel<'_>,
    filter: &Option<Expr>,
    params: &[Value],
) -> Option<&'c [usize]> {
    let f = filter.as_ref()?;
    let mut probes = Vec::new();
    eq_probes(f, params, &mut probes);
    let t = catalog.get(table).ok()?;
    let mut best: Option<&[usize]> = None;
    for (col, val) in &probes {
        if rel.col_index(col).is_err() {
            continue; // must resolve in this table
        }
        let plain = col.rsplit('.').next().unwrap_or(col);
        if let Some(hits) = t.index_lookup(plain, val) {
            if best.is_none_or(|b| hits.len() < b.len()) {
                best = Some(hits);
            }
        }
    }
    best
}

/// `SELECT <aggregates only> FROM t [WHERE ...]`: one streaming pass over
/// borrowed rows (index-probed when possible). This is the `next_runid`
/// fast path — `SELECT MAX(runid)` touches each candidate row once and
/// clones nothing.
fn exec_simple_aggregates(
    catalog: &Catalog,
    params: &[Value],
    stats: &mut DbStats,
    items: &[SelectItem],
    table: &str,
    filter: &Option<Expr>,
    limit: Option<usize>,
) -> DbResult<Outcome> {
    let t = catalog.get(table)?;
    let rel = TableRel {
        table,
        schema: &t.schema,
    };
    let arg_idx: Vec<Option<usize>> = items
        .iter()
        .map(|it| match &it.expr {
            SelExpr::Agg { arg: Some(c), .. } => rel.col_index(c).map(Some),
            SelExpr::Agg { arg: None, .. } => Ok(None),
            SelExpr::Col(_) => unreachable!("caller checked all items are aggregates"),
        })
        .collect::<DbResult<_>>()?;
    let candidates = index_candidates(catalog, table, &rel, filter, params);
    let rows = t.rows();
    let visited: Vec<&Row> = match candidates {
        Some(pos) => {
            stats.index_scans += 1;
            pos.iter().map(|&p| &rows[p]).collect()
        }
        None => {
            stats.full_scans += 1;
            rows.iter().collect()
        }
    };
    stats.rows_scanned += visited.len() as u64;
    let mut matching: Vec<&Row> = Vec::with_capacity(visited.len());
    for row in visited {
        if let Some(f) = filter {
            if truthy(&eval(f, &rel, row, params)?) != Some(true) {
                continue;
            }
        }
        matching.push(row);
    }
    let mut out = Vec::with_capacity(items.len());
    for (it, idx) in items.iter().zip(&arg_idx) {
        let SelExpr::Agg { func, .. } = &it.expr else {
            unreachable!()
        };
        let v = match idx {
            None => Value::Int(matching.len() as i64), // COUNT(*)
            Some(i) => {
                let vals: Vec<&Value> = matching.iter().map(|r| &r[*i]).collect();
                aggregate(*func, &vals)
            }
        };
        out.push(v);
    }
    let names = items.iter().map(SelectItem::output_name).collect();
    let mut rows_out = vec![out];
    if let Some(l) = limit {
        rows_out.truncate(l);
    }
    stats.rows_returned += rows_out.len() as u64;
    Ok(Outcome::Rows {
        columns: names,
        rows: rows_out,
    })
}

/// Execute a parsed statement against the catalog.
///
/// Convenience wrapper around [`execute_with_stats`] discarding the
/// scan counters.
pub fn execute(catalog: &mut Catalog, stmt: &Statement, params: &[Value]) -> DbResult<Outcome> {
    let mut stats = DbStats::default();
    execute_with_stats(catalog, stmt, params, &mut stats)
}

/// Execute a parsed statement, recording scan strategy in `stats`.
///
/// `BEGIN`/`COMMIT`/`ROLLBACK` are connection-level and rejected here;
/// the `Database` handle intercepts them before reaching the executor.
/// No transaction is in scope, so mutations log no undo.
pub fn execute_with_stats(
    catalog: &mut Catalog,
    stmt: &Statement,
    params: &[Value],
    stats: &mut DbStats,
) -> DbResult<Outcome> {
    if let Statement::Select { .. } = stmt {
        return execute_read(catalog, stmt, params, stats);
    }
    execute_mutation(catalog, stmt, params, stats, None)
}

/// Execute a read-only statement against a **shared** catalog borrow.
///
/// This is the path the `Database` drives under `catalog.read()`:
/// SELECTs — index probes included, since the maps are maintained
/// incrementally rather than rebuilt on first probe — never need `&mut`,
/// so concurrent readers proceed in parallel.
pub fn execute_read(
    catalog: &Catalog,
    stmt: &Statement,
    params: &[Value],
    stats: &mut DbStats,
) -> DbResult<Outcome> {
    match stmt {
        Statement::Select {
            distinct,
            items,
            table,
            join,
            filter,
            group_by,
            having,
            order_by,
            limit,
        } => exec_select(
            catalog, params, stats, *distinct, items, table, join, filter, group_by, having,
            order_by, *limit,
        ),
        _ => Err(DbError::Tx(
            "execute_read only accepts SELECT statements".into(),
        )),
    }
}

/// Execute a mutating statement, appending row-level records to `undo`
/// when the owning transaction's log is supplied. Undo images are
/// captured by move (displaced rows, dropped tables) — a transaction
/// touching k rows logs O(k) work regardless of table size.
pub(crate) fn execute_mutation(
    catalog: &mut Catalog,
    stmt: &Statement,
    params: &[Value],
    stats: &mut DbStats,
    undo: Option<&mut UndoLog>,
) -> DbResult<Outcome> {
    let _ = stats; // mutations keep the scan counters SELECT-only
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|(n, t)| Column {
                        name: n.clone(),
                        ctype: *t,
                    })
                    .collect(),
            )?;
            let created = catalog.create_table(name, schema, *if_not_exists)?;
            if created {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::CreateTable { name: name.clone() });
                }
            }
            Ok(Outcome::Affected(0))
        }
        Statement::DropTable { name } => {
            let dropped = catalog.remove_table(name)?;
            if let Some(undo) = undo {
                undo.push(UndoRecord::DropTable {
                    name: name.clone(),
                    table: Box::new(dropped),
                });
            }
            Ok(Outcome::Affected(0))
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => {
            catalog.get_mut(table)?.create_index(name, column)?;
            if let Some(undo) = undo {
                undo.push(UndoRecord::CreateIndex {
                    table: table.clone(),
                    index: name.clone(),
                });
            }
            Ok(Outcome::Affected(0))
        }
        Statement::DropIndex { name, table } => {
            let t = catalog.get_mut(table)?;
            let def = t
                .indexes()
                .iter()
                .find(|i| i.name.eq_ignore_ascii_case(name))
                .cloned();
            t.drop_index(name)?;
            if let Some(undo) = undo {
                undo.push(UndoRecord::DropIndex {
                    table: table.clone(),
                    def: def.expect("drop_index succeeded, so the def existed"),
                });
            }
            Ok(Outcome::Affected(0))
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let empty_schema = Schema::new(vec![])?;
            let empty_row: Row = vec![];
            // Evaluate expressions first (no column refs allowed in VALUES).
            let t = catalog.get(table)?;
            let schema = &t.schema;
            let mut prepared: Vec<Row> = Vec::with_capacity(rows.len());
            for row_exprs in rows {
                let vals: Vec<Value> = row_exprs
                    .iter()
                    .map(|e| eval(e, &empty_schema, &empty_row, params))
                    .collect::<DbResult<_>>()?;
                let full = match columns {
                    None => vals,
                    Some(cols) => {
                        if cols.len() != vals.len() {
                            return Err(DbError::Arity(format!(
                                "{} columns but {} values",
                                cols.len(),
                                vals.len()
                            )));
                        }
                        let mut full = vec![Value::Null; schema.arity()];
                        for (c, v) in cols.iter().zip(vals) {
                            full[schema.index_of(c)?] = v;
                        }
                        full
                    }
                };
                prepared.push(full);
            }
            let t = catalog.get_mut(table)?;
            let n = prepared.len();
            let mut appended = 0;
            let result = prepared.into_iter().try_for_each(|row| {
                t.insert(row)?;
                appended += 1;
                Ok(())
            });
            // Log however many rows landed, even on a mid-batch type
            // error, so a rollback removes exactly them.
            if appended > 0 {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::Append {
                        table: table.clone(),
                        n: appended,
                    });
                }
            }
            result.map(|()| Outcome::Affected(n))
        }
        Statement::Update {
            table,
            sets,
            filter,
        } => {
            // Phase 1 (shared borrow): pick the touched rows — through
            // an index probe when an equality conjunct allows — and
            // build the validated replacement rows.
            let t = catalog.get(table)?;
            let rel = TableRel {
                table,
                schema: &t.schema,
            };
            let schema = &t.schema;
            let set_idx: Vec<(usize, &Expr)> = sets
                .iter()
                .map(|(c, e)| Ok((schema.index_of(c)?, e)))
                .collect::<DbResult<_>>()?;
            let candidates = index_candidates(catalog, table, &rel, filter, params);
            let rows = t.rows();
            let mut updates: Vec<(usize, Row)> = Vec::new();
            let mut visit = |pos: usize, row: &Row| -> DbResult<()> {
                if let Some(f) = filter {
                    if truthy(&eval(f, schema, row, params)?) != Some(true) {
                        return Ok(());
                    }
                }
                // Evaluate against the pre-update row (snapshot
                // semantics: `SET a = b, b = a` swaps).
                let mut new_row = row.clone();
                for &(i, e) in &set_idx {
                    let v = eval(e, schema, row, params)?;
                    let col = &schema.columns[i];
                    if !col.ctype.admits(&v) {
                        return Err(DbError::Type(format!(
                            "column {} cannot store {}",
                            col.name,
                            v.type_name()
                        )));
                    }
                    new_row[i] = col.ctype.coerce(v);
                }
                updates.push((pos, new_row));
                Ok(())
            };
            match candidates {
                Some(pos) => {
                    for &p in pos {
                        visit(p, &rows[p])?;
                    }
                }
                None => {
                    for (p, row) in rows.iter().enumerate() {
                        visit(p, row)?;
                    }
                }
            }
            // Phase 2 (exclusive borrow): swap the new rows in; the
            // displaced originals are the undo images.
            let n = updates.len();
            let old = catalog.get_mut(table)?.apply_updates(updates);
            if n > 0 {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::Update {
                        table: table.clone(),
                        old,
                    });
                }
            }
            Ok(Outcome::Affected(n))
        }
        Statement::Delete { table, filter } => {
            let Some(f) = filter else {
                // No WHERE: take every row in one sweep (the undo
                // record restores them at their enumerated positions).
                let removed = catalog.get_mut(table)?.clear();
                let n = removed.len();
                if n > 0 {
                    if let Some(undo) = undo {
                        undo.push(UndoRecord::Delete {
                            table: table.clone(),
                            removed: removed.into_iter().enumerate().collect(),
                        });
                    }
                }
                return Ok(Outcome::Affected(n));
            };
            let t = catalog.get(table)?;
            let rel = TableRel {
                table,
                schema: &t.schema,
            };
            let candidates = index_candidates(catalog, table, &rel, filter, params);
            let rows = t.rows();
            let schema = &t.schema;
            let hit = |p: usize| -> DbResult<Option<usize>> {
                Ok((truthy(&eval(f, schema, &rows[p], params)?) == Some(true)).then_some(p))
            };
            let positions: Vec<usize> = match candidates {
                Some(pos) => pos
                    .iter()
                    .filter_map(|&p| hit(p).transpose())
                    .collect::<DbResult<_>>()?,
                None => (0..rows.len())
                    .filter_map(|p| hit(p).transpose())
                    .collect::<DbResult<_>>()?,
            };
            let removed = catalog.get_mut(table)?.delete_at(&positions);
            let n = removed.len();
            if n > 0 {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::Delete {
                        table: table.clone(),
                        removed: positions.into_iter().zip(removed).collect(),
                    });
                }
            }
            Ok(Outcome::Affected(n))
        }
        Statement::Select { .. } => unreachable!("dispatched to execute_read"),
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Tx(
            "transactions are managed by the Database connection, not the executor".into(),
        )),
    }
}

/// The SELECT pipeline: source (scan / index probe / join) → WHERE →
/// [GROUP BY + aggregates + HAVING] → ORDER BY → projection → DISTINCT
/// → LIMIT.
#[allow(clippy::too_many_arguments)]
fn exec_select(
    catalog: &Catalog,
    params: &[Value],
    stats: &mut DbStats,
    distinct: bool,
    items: &Option<Vec<SelectItem>>,
    table: &str,
    join: &Option<Join>,
    filter: &Option<Expr>,
    group_by: &[String],
    having: &Option<Expr>,
    order_by: &[OrderBy],
    limit: Option<usize>,
) -> DbResult<Outcome> {
    // ---- Streaming aggregate fast path ----
    // Plain aggregates over one table (`SELECT MAX(runid) FROM
    // run_table`, the COUNTs of report queries) accumulate over borrowed
    // rows in a single pass: no row clones, no sort, no group machinery.
    if join.is_none() && !distinct && group_by.is_empty() && having.is_none() && order_by.is_empty()
    {
        if let Some(items) = items {
            if !items.is_empty()
                && items
                    .iter()
                    .all(|it| matches!(it.expr, SelExpr::Agg { .. }))
            {
                return exec_simple_aggregates(catalog, params, stats, items, table, filter, limit);
            }
        }
    }

    // ---- Source relation ----
    let (rel_cols, mut rows): (Vec<(String, String)>, Vec<Row>) = match join {
        None => {
            let t = catalog.get(table)?;
            let schema = &t.schema;
            let rel = TableRel { table, schema };
            let candidates = index_candidates(catalog, table, &rel, filter, params);
            let mut out = Vec::new();
            match candidates {
                Some(pos) => {
                    stats.index_scans += 1;
                    stats.rows_scanned += pos.len() as u64;
                    for &p in pos {
                        let row = &t.rows()[p];
                        if let Some(f) = filter {
                            if truthy(&eval(f, &rel, row, params)?) != Some(true) {
                                continue;
                            }
                        }
                        out.push(row.clone());
                    }
                }
                None => {
                    stats.full_scans += 1;
                    stats.rows_scanned += t.len() as u64;
                    for row in t.rows() {
                        if let Some(f) = filter {
                            if truthy(&eval(f, &rel, row, params)?) != Some(true) {
                                continue;
                            }
                        }
                        out.push(row.clone());
                    }
                }
            }
            let cols = schema
                .columns
                .iter()
                .map(|c| (format!("{table}.{}", c.name), c.name.clone()))
                .collect();
            (cols, out)
        }
        Some(j) => {
            stats.full_scans += 1;
            let left = catalog.get(table)?;
            let right = catalog.get(&j.table)?;
            stats.rows_scanned += (left.len() + right.len()) as u64;
            let lschema = &left.schema;
            let rschema = &right.schema;
            let cols: Vec<(String, String)> = lschema
                .columns
                .iter()
                .map(|c| (format!("{table}.{}", c.name), c.name.clone()))
                .chain(
                    rschema
                        .columns
                        .iter()
                        .map(|c| (format!("{}.{}", j.table, c.name), c.name.clone())),
                )
                .collect();
            let rel = JoinRel { cols: cols.clone() };
            // Resolve the ON columns against each side.
            let lrel = TableRel {
                table,
                schema: lschema,
            };
            let rrel = TableRel {
                table: &j.table,
                schema: rschema,
            };
            let (lcol, rcol) = match (lrel.col_index(&j.on_left), rrel.col_index(&j.on_right)) {
                (Ok(a), Ok(b)) => (a, b),
                // Allow the ON sides in either order.
                _ => match (lrel.col_index(&j.on_right), rrel.col_index(&j.on_left)) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => {
                        return Err(DbError::NoSuchColumn(format!(
                            "ON {} = {} does not name one column from each side",
                            j.on_left, j.on_right
                        )))
                    }
                },
            };
            // Hash join on the right side, built over borrowed typed
            // keys — no string is formatted per row.
            let mut rmap: HashMap<IndexKey<'_>, Vec<usize>> = HashMap::new();
            for (i, r) in right.rows().iter().enumerate() {
                if !r[rcol].is_null() {
                    rmap.entry(r[rcol].index_key()).or_default().push(i);
                }
            }
            let mut out = Vec::new();
            for l in left.rows() {
                if l[lcol].is_null() {
                    continue;
                }
                if let Some(ris) = rmap.get(&l[lcol].index_key()) {
                    for &ri in ris {
                        let r = &right.rows()[ri];
                        // Re-verify under SQL equality (hash buckets may
                        // collide across numeric types after rounding).
                        if l[lcol].sql_eq(&r[rcol]) != Some(true) {
                            continue;
                        }
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if let Some(f) = filter {
                            if truthy(&eval(f, &rel, &combined, params)?) != Some(true) {
                                continue;
                            }
                        }
                        out.push(combined);
                    }
                }
            }
            (cols, out)
        }
    };
    let rel = JoinRel {
        cols: rel_cols.clone(),
    };

    // ---- Aggregate path ----
    let has_agg = items
        .as_ref()
        .map(|is| is.iter().any(|i| matches!(i.expr, SelExpr::Agg { .. })))
        .unwrap_or(false);
    if has_agg || !group_by.is_empty() {
        let items = items.as_ref().ok_or_else(|| {
            DbError::Parse("SELECT * cannot be combined with GROUP BY / aggregates".into())
        })?;
        // Validate: plain columns must be grouping columns.
        for it in items {
            if let SelExpr::Col(c) = &it.expr {
                if !group_by.iter().any(|g| g.eq_ignore_ascii_case(c)) {
                    return Err(DbError::Parse(format!(
                        "column {c} must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
        }
        let gidx: Vec<usize> = group_by
            .iter()
            .map(|g| rel.col_index(g))
            .collect::<DbResult<_>>()?;
        // Group rows by typed key vectors, preserving first-seen order.
        let mut order: Vec<Vec<IndexKey<'static>>> = Vec::new();
        let mut groups: HashMap<Vec<IndexKey<'static>>, Vec<Row>> = HashMap::new();
        if gidx.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), std::mem::take(&mut rows));
        } else {
            for row in rows.drain(..) {
                let key: Vec<IndexKey<'static>> = gidx
                    .iter()
                    .map(|&i| row[i].index_key().into_owned())
                    .collect();
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(row);
            }
        }
        let names: Vec<String> = items.iter().map(SelectItem::output_name).collect();
        let mut out_rows: Vec<Row> = Vec::with_capacity(order.len());
        for key in &order {
            let grp = &groups[key];
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match &it.expr {
                    SelExpr::Col(c) => {
                        let i = rel.col_index(c)?;
                        out.push(grp.first().map(|r| r[i].clone()).unwrap_or(Value::Null));
                    }
                    SelExpr::Agg { func, arg } => {
                        let v = match arg {
                            None => Value::Int(grp.len() as i64), // COUNT(*)
                            Some(c) => {
                                let i = rel.col_index(c)?;
                                let vals: Vec<&Value> = grp.iter().map(|r| &r[i]).collect();
                                aggregate(*func, &vals)
                            }
                        };
                        out.push(v);
                    }
                }
            }
            out_rows.push(out);
        }
        let out_rel = NamedRel {
            names: names.clone(),
        };
        if let Some(h) = having {
            let mut kept = Vec::with_capacity(out_rows.len());
            for r in out_rows {
                if truthy(&eval(h, &out_rel, &r, params)?) == Some(true) {
                    kept.push(r);
                }
            }
            out_rows = kept;
        }
        let top_k = if distinct { None } else { limit };
        sort_rows(&mut out_rows, order_by, &out_rel, top_k)?;
        finish(names, out_rows, distinct, limit, stats)
    } else {
        // ---- Plain path: sort on the source relation, then project ----
        let top_k = if distinct { None } else { limit };
        sort_rows(&mut rows, order_by, &rel, top_k)?;
        let (names, rows) = match items {
            None => {
                // `*`: plain names for single tables, qualified for joins.
                let names = if join.is_none() {
                    rel_cols.iter().map(|(_, p)| p.clone()).collect()
                } else {
                    rel_cols.iter().map(|(q, _)| q.clone()).collect()
                };
                (names, rows)
            }
            Some(items) => {
                let idx: Vec<usize> = items
                    .iter()
                    .map(|it| match &it.expr {
                        SelExpr::Col(c) => rel.col_index(c),
                        SelExpr::Agg { .. } => unreachable!("aggregate handled above"),
                    })
                    .collect::<DbResult<_>>()?;
                let names = items.iter().map(SelectItem::output_name).collect();
                let rows = rows
                    .into_iter()
                    .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                (names, rows)
            }
        };
        finish(names, rows, distinct, limit, stats)
    }
}

/// Sort rows by the ORDER BY keys. When a `top_k` row budget applies
/// (LIMIT without DISTINCT), the sort is a partial selection: pick the
/// first `k` under the ordering, then sort only those — `ORDER BY ...
/// LIMIT k` stops paying for a full sort of the table.
fn sort_rows(
    rows: &mut Vec<Row>,
    order_by: &[OrderBy],
    rel: &impl Resolve,
    top_k: Option<usize>,
) -> DbResult<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let keys: Vec<(usize, bool)> = order_by
        .iter()
        .map(|o| Ok((rel.col_index(&o.column)?, o.desc)))
        .collect::<DbResult<_>>()?;
    let cmp = |a: &Row, b: &Row| {
        for &(i, desc) in &keys {
            let o = a[i].sql_cmp(&b[i]).unwrap_or(Ordering::Equal);
            let o = if desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    };
    match top_k {
        Some(k) if k > 0 && k < rows.len() => {
            rows.select_nth_unstable_by(k - 1, cmp);
            rows.truncate(k);
            rows.sort_by(cmp);
        }
        _ => rows.sort_by(cmp),
    }
    Ok(())
}

/// DISTINCT + LIMIT + wrap-up.
fn finish(
    names: Vec<String>,
    mut rows: Vec<Row>,
    distinct: bool,
    limit: Option<usize>,
    stats: &mut DbStats,
) -> DbResult<Outcome> {
    if distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| {
            seen.insert(
                r.iter()
                    .map(|v| v.index_key().into_owned())
                    .collect::<Vec<IndexKey<'static>>>(),
            )
        });
    }
    if let Some(l) = limit {
        rows.truncate(l);
    }
    stats.rows_returned += rows.len() as u64;
    Ok(Outcome::Rows {
        columns: names,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    fn run(catalog: &mut Catalog, sql: &str, params: &[Value]) -> Outcome {
        execute(catalog, &parse(sql).unwrap(), params).unwrap()
    }

    fn rows_of(o: Outcome) -> Vec<Row> {
        match o {
            Outcome::Rows { rows, .. } => rows,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn setup() -> Catalog {
        let mut c = Catalog::new();
        run(
            &mut c,
            "CREATE TABLE t (id INT, score DOUBLE, name TEXT)",
            &[],
        );
        run(
            &mut c,
            "INSERT INTO t VALUES (1, 3.5, 'a'), (2, 1.0, 'b'), (3, 9.25, 'c')",
            &[],
        );
        c
    }

    #[test]
    fn select_all() {
        let mut c = setup();
        match run(&mut c, "SELECT * FROM t", &[]) {
            Outcome::Rows { columns, rows } => {
                assert_eq!(columns, vec!["id", "score", "name"]);
                assert_eq!(rows.len(), 3);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn select_where_params() {
        let mut c = setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT name FROM t WHERE id = ?",
            &[Value::Int(2)],
        ));
        assert_eq!(rows, vec![vec![Value::Text("b".into())]]);
    }

    #[test]
    fn select_order_desc_limit() {
        let mut c = setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT id FROM t ORDER BY score DESC LIMIT 2",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Int(3)], vec![Value::Int(1)]]);
    }

    #[test]
    fn update_with_expression() {
        let mut c = setup();
        let out = run(&mut c, "UPDATE t SET score = score + 1 WHERE id < 3", &[]);
        assert_eq!(out, Outcome::Affected(2));
        let rows = rows_of(run(&mut c, "SELECT score FROM t WHERE id = 1", &[]));
        assert_eq!(rows[0][0].as_f64(), Some(4.5));
    }

    #[test]
    fn delete_where() {
        let mut c = setup();
        let out = run(&mut c, "DELETE FROM t WHERE score > 2.0", &[]);
        assert_eq!(out, Outcome::Affected(2));
        let rows = rows_of(run(&mut c, "SELECT id FROM t", &[]));
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (4)", &[]);
        let rows = rows_of(run(&mut c, "SELECT name FROM t WHERE id = 4", &[]));
        assert!(rows[0][0].is_null());
    }

    #[test]
    fn is_null_predicates() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (9)", &[]);
        let rows = rows_of(run(&mut c, "SELECT id FROM t WHERE name IS NULL", &[]));
        assert_eq!(rows, vec![vec![Value::Int(9)]]);
        let rows = rows_of(run(
            &mut c,
            "SELECT id FROM t WHERE name IS NOT NULL ORDER BY id LIMIT 1",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn null_comparisons_filter_out() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (10)", &[]);
        // score IS NULL on the new row: comparison yields unknown -> excluded.
        let rows = rows_of(run(&mut c, "SELECT id FROM t WHERE score > 0", &[]));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn division_by_zero_is_null() {
        let mut c = setup();
        let rows = rows_of(run(&mut c, "SELECT id FROM t WHERE id / 0 IS NULL", &[]));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn missing_param_errors() {
        let mut c = setup();
        let err = execute(&mut c, &parse("SELECT * FROM t WHERE id = ?").unwrap(), &[]);
        assert!(matches!(err, Err(DbError::Arity(_))));
    }

    #[test]
    fn type_error_on_bad_insert() {
        let mut c = setup();
        let err = execute(
            &mut c,
            &parse("INSERT INTO t VALUES ('not an int', 0.0, 'x')").unwrap(),
            &[],
        );
        assert!(matches!(err, Err(DbError::Type(_))));
    }

    #[test]
    fn update_snapshot_semantics() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE s (a INT, b INT)", &[]);
        run(&mut c, "INSERT INTO s VALUES (1, 10)", &[]);
        // Both assignments read the pre-update row.
        run(&mut c, "UPDATE s SET a = b, b = a", &[]);
        let rows = rows_of(run(&mut c, "SELECT a, b FROM s", &[]));
        assert_eq!(rows[0], vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn and_or_three_valued_logic() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (11)", &[]);
        // (score > 0 OR id = 11): unknown OR true = true.
        let rows = rows_of(run(
            &mut c,
            "SELECT id FROM t WHERE score > 0 OR id = 11",
            &[],
        ));
        assert_eq!(rows.len(), 4);
    }

    // ---- aggregates / grouping ----

    #[test]
    fn count_star_and_column() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (4)", &[]); // NULL name
        let rows = rows_of(run(&mut c, "SELECT COUNT(*), COUNT(name) FROM t", &[]));
        assert_eq!(rows, vec![vec![Value::Int(4), Value::Int(3)]]);
    }

    #[test]
    fn sum_avg_min_max() {
        let mut c = setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT SUM(id), AVG(score), MIN(score), MAX(name) FROM t",
            &[],
        ));
        assert_eq!(rows[0][0], Value::Int(6));
        assert!((rows[0][1].as_f64().unwrap() - (3.5 + 1.0 + 9.25) / 3.0).abs() < 1e-12);
        assert_eq!(rows[0][2], Value::Double(1.0));
        assert_eq!(rows[0][3], Value::Text("c".into()));
    }

    #[test]
    fn aggregates_over_empty_table() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE e (x INT)", &[]);
        let rows = rows_of(run(&mut c, "SELECT COUNT(*), SUM(x), AVG(x) FROM e", &[]));
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
    }

    #[test]
    fn group_by_counts() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE g (ds TEXT, bytes INT)", &[]);
        run(
            &mut c,
            "INSERT INTO g VALUES ('p', 10), ('q', 20), ('p', 30), ('q', 40), ('p', 50)",
            &[],
        );
        match run(
            &mut c,
            "SELECT ds, COUNT(*) AS n, SUM(bytes) AS total FROM g GROUP BY ds ORDER BY ds",
            &[],
        ) {
            Outcome::Rows { columns, rows } => {
                assert_eq!(columns, vec!["ds", "n", "total"]);
                assert_eq!(
                    rows,
                    vec![
                        vec![Value::Text("p".into()), Value::Int(3), Value::Int(90)],
                        vec![Value::Text("q".into()), Value::Int(2), Value::Int(60)],
                    ]
                );
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn having_filters_groups() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE g (ds TEXT)", &[]);
        run(&mut c, "INSERT INTO g VALUES ('p'), ('q'), ('p')", &[]);
        let rows = rows_of(run(
            &mut c,
            "SELECT ds, COUNT(*) AS n FROM g GROUP BY ds HAVING n > 1",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Text("p".into()), Value::Int(2)]]);
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let mut c = setup();
        let err = execute(&mut c, &parse("SELECT name, COUNT(*) FROM t").unwrap(), &[]);
        assert!(matches!(err, Err(DbError::Parse(_))));
    }

    #[test]
    fn distinct_dedups() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE d (x INT)", &[]);
        run(&mut c, "INSERT INTO d VALUES (1), (2), (1), (3), (2)", &[]);
        let rows = rows_of(run(&mut c, "SELECT DISTINCT x FROM d ORDER BY x", &[]));
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    // ---- joins ----

    fn join_setup() -> Catalog {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE runs (runid INT, app TEXT)", &[]);
        run(
            &mut c,
            "CREATE TABLE execs (runid INT, ds TEXT, off INT)",
            &[],
        );
        run(
            &mut c,
            "INSERT INTO runs VALUES (1, 'fun3d'), (2, 'rt')",
            &[],
        );
        run(
            &mut c,
            "INSERT INTO execs VALUES (1, 'p', 0), (1, 'q', 100), (2, 'nodes', 0)",
            &[],
        );
        c
    }

    #[test]
    fn inner_join_matches() {
        let mut c = join_setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT app, ds FROM runs JOIN execs ON runs.runid = execs.runid \
             WHERE app = 'fun3d' ORDER BY ds",
            &[],
        ));
        assert_eq!(
            rows,
            vec![
                vec![Value::Text("fun3d".into()), Value::Text("p".into())],
                vec![Value::Text("fun3d".into()), Value::Text("q".into())],
            ]
        );
    }

    #[test]
    fn join_star_uses_qualified_names() {
        let mut c = join_setup();
        match run(
            &mut c,
            "SELECT * FROM runs JOIN execs ON runs.runid = execs.runid",
            &[],
        ) {
            Outcome::Rows { columns, rows } => {
                assert_eq!(columns[0], "runs.runid");
                assert_eq!(columns[2], "execs.runid");
                assert_eq!(rows.len(), 3);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let mut c = join_setup();
        let err = execute(
            &mut c,
            &parse("SELECT runid FROM runs JOIN execs ON runs.runid = execs.runid").unwrap(),
            &[],
        );
        assert!(matches!(err, Err(DbError::NoSuchColumn(m)) if m.contains("ambiguous")));
    }

    #[test]
    fn join_with_aggregates() {
        let mut c = join_setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT app, COUNT(*) AS n FROM runs JOIN execs ON runs.runid = execs.runid \
             GROUP BY app ORDER BY app",
            &[],
        ));
        assert_eq!(
            rows,
            vec![
                vec![Value::Text("fun3d".into()), Value::Int(2)],
                vec![Value::Text("rt".into()), Value::Int(1)],
            ]
        );
    }

    // ---- index usage ----

    #[test]
    fn index_probe_is_used_and_correct() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE h (k INT, v TEXT)", &[]);
        for i in 0..50 {
            run(
                &mut c,
                "INSERT INTO h VALUES (?, 'x')",
                &[Value::Int(i % 10)],
            );
        }
        run(&mut c, "CREATE INDEX hk ON h (k)", &[]);
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(*) FROM h WHERE k = ?").unwrap(),
            &[Value::Int(3)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(5)]]);
        assert_eq!((stats.full_scans, stats.index_scans), (0, 1));
        assert_eq!(
            stats.rows_scanned, 5,
            "probe visits only the candidate bucket"
        );
        // Non-equality predicates fall back to a scan.
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(*) FROM h WHERE k > 3").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(30)]]);
        assert_eq!(stats.full_scans, 1);
    }

    #[test]
    fn index_probe_respects_extra_conjuncts() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE h (k INT, v INT)", &[]);
        run(
            &mut c,
            "INSERT INTO h VALUES (1, 10), (1, 20), (2, 30)",
            &[],
        );
        run(&mut c, "CREATE INDEX hk ON h (k)", &[]);
        let rows = rows_of(run(&mut c, "SELECT v FROM h WHERE k = 1 AND v > 15", &[]));
        assert_eq!(rows, vec![vec![Value::Int(20)]]);
    }

    // ---- streaming aggregates / top-k ----

    #[test]
    fn max_fast_path_matches_generic_answer() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE r (runid INT)", &[]);
        for i in [3, 9, 1, 7, 9, 2] {
            run(&mut c, "INSERT INTO r VALUES (?)", &[Value::Int(i)]);
        }
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT MAX(runid) FROM r").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(9)]]);
        // Same answer as the ORDER BY ... LIMIT 1 spelling.
        let out = run(
            &mut c,
            "SELECT runid FROM r ORDER BY runid DESC LIMIT 1",
            &[],
        );
        assert_eq!(rows_of(out), vec![vec![Value::Int(9)]]);
        assert_eq!((stats.rows_scanned, stats.rows_returned), (6, 1));
    }

    #[test]
    fn aggregate_fast_path_honors_filter_and_index() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE t (k INT, v INT)", &[]);
        for i in 0..30 {
            run(
                &mut c,
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i % 3), Value::Int(i)],
            );
        }
        run(&mut c, "CREATE INDEX tk ON t (k)", &[]);
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(*), MIN(v), MAX(v) FROM t WHERE k = ?").unwrap(),
            &[Value::Int(1)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            rows_of(out),
            vec![vec![Value::Int(10), Value::Int(1), Value::Int(28)]]
        );
        assert_eq!(stats.index_scans, 1, "fast path still probes the index");
        assert_eq!(stats.rows_scanned, 10);
    }

    #[test]
    fn aggregate_over_empty_table_still_null() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE e (x INT)", &[]);
        let rows = rows_of(run(&mut c, "SELECT MAX(x), COUNT(*) FROM e", &[]));
        assert_eq!(rows, vec![vec![Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn order_by_limit_partial_sort_matches_full_sort() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE t (k INT)", &[]);
        for i in [5i64, 3, 8, 1, 9, 2, 7, 4, 6, 0] {
            run(&mut c, "INSERT INTO t VALUES (?)", &[Value::Int(i)]);
        }
        let top3 = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k LIMIT 3", &[]));
        assert_eq!(
            top3,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)]
            ]
        );
        let bottom2 = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k DESC LIMIT 2", &[]));
        assert_eq!(bottom2, vec![vec![Value::Int(9)], vec![Value::Int(8)]]);
        // LIMIT larger than the table falls back to a plain sort.
        let all = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k LIMIT 99", &[]));
        assert_eq!(all.len(), 10);
        let none = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k LIMIT 0", &[]));
        assert!(none.is_empty());
    }

    #[test]
    fn distinct_with_limit_dedups_before_truncating() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE d (x INT)", &[]);
        run(
            &mut c,
            "INSERT INTO d VALUES (2), (2), (2), (1), (1), (3)",
            &[],
        );
        let rows = rows_of(run(
            &mut c,
            "SELECT DISTINCT x FROM d ORDER BY x LIMIT 2",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn tx_statements_rejected_at_executor() {
        let mut c = Catalog::new();
        assert!(matches!(
            execute(&mut c, &Statement::Begin, &[]),
            Err(DbError::Tx(_))
        ));
    }
}
